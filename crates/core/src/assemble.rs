//! The "flexible approach": assemble the recommended architecture for a
//! target SIL from trained models and calibration data.
//!
//! This is the paper's headline promise made executable: hand the factory
//! a criticality level, the trained model(s), and held-out calibration
//! data, and it returns a [`SafePipeline`] running the pattern the level
//! calls for, with its monitors fitted and its provenance recorded.

use safex_nn::{Engine, Model, QEngine, QModel};
use safex_patterns::channel::{ConstantChannel, ModelChannel, QuantChannel};
use safex_patterns::pattern::{MonitorActuator, ParallelPolicy, SafetyBag, Simplex, TwoOutOfThree};
use safex_patterns::Sil;
use safex_supervision::supervisor::{Mahalanobis, Supervisor};
use safex_supervision::{observe, CalibratedMonitor};
use safex_trace::record::{RecordKind, Value};

use crate::error::CoreError;
use crate::pipeline::{PipelineBuilder, SafePipeline};

/// Assembly parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssemblySpec {
    /// Target integrity level; selects the pattern.
    pub sil: Sil,
    /// The conservative class the fallback channel commands (e.g.
    /// "obstacle" / "stop").
    pub fallback_class: usize,
    /// Target false-positive rate for supervisor calibration.
    pub target_fpr: f64,
    /// Confidence floor for the monitor-actuator pattern.
    pub confidence_floor: f32,
    /// Plausible input range for the safety-bag envelope.
    pub input_range: (f32, f32),
    /// How patterns with redundant channels (2-out-of-3) evaluate them.
    /// Defaults to [`ParallelPolicy::Sequential`], the
    /// certification-friendly baseline; single-core SIL configurations
    /// should leave it there.
    pub parallel: ParallelPolicy,
}

impl Default for AssemblySpec {
    fn default() -> Self {
        AssemblySpec {
            sil: Sil::Sil2,
            fallback_class: 0,
            target_fpr: 0.05,
            confidence_floor: 0.5,
            input_range: (-4.0, 4.0),
            parallel: ParallelPolicy::Sequential,
        }
    }
}

impl AssemblySpec {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] on out-of-range values.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.target_fpr > 0.0 && self.target_fpr < 1.0) {
            return Err(CoreError::BadAssembly(format!(
                "target FPR {} outside (0, 1)",
                self.target_fpr
            )));
        }
        if !(0.0..=1.0).contains(&self.confidence_floor) {
            return Err(CoreError::BadAssembly(format!(
                "confidence floor {} outside [0, 1]",
                self.confidence_floor
            )));
        }
        if !(self.input_range.0.is_finite()
            && self.input_range.1.is_finite()
            && self.input_range.0 < self.input_range.1)
        {
            return Err(CoreError::BadAssembly("invalid input range".into()));
        }
        Ok(())
    }
}

/// Assembles the recommended pipeline for `spec.sil`.
///
/// * SIL 1 → monitor-actuator over the first model.
/// * SIL 2 → simplex: Mahalanobis supervisor fitted on `calibration`,
///   threshold at `spec.target_fpr`, constant fallback channel.
/// * SIL 3 → safety bag: the first model proposes; an input-plausibility
///   envelope (finite, inside `spec.input_range`) can veto.
/// * SIL 4 → 2-out-of-3 diverse redundancy: float and quantised builds of
///   the first model plus a float build of the second (**requires two
///   models**).
///
/// Evidence recording is enabled under the pipeline name; model digests
/// and monitor calibration are recorded before the first decision.
///
/// # Errors
///
/// Returns [`CoreError::BadAssembly`] for an invalid spec, missing
/// models, a fallback class outside the model's label space, or empty
/// calibration data where a monitor must be fitted, and propagates
/// fitting/inference failures.
pub fn for_sil(
    name: &str,
    spec: &AssemblySpec,
    models: &[Model],
    calibration_inputs: &[Vec<f32>],
    calibration_labels: &[usize],
) -> Result<SafePipeline, CoreError> {
    spec.validate()?;
    let first = models
        .first()
        .ok_or_else(|| CoreError::BadAssembly("at least one model required".into()))?;
    let classes = first.output_shape().len();
    if spec.fallback_class >= classes {
        return Err(CoreError::BadAssembly(format!(
            "fallback class {} outside the model's {classes} classes",
            spec.fallback_class
        )));
    }

    let mut builder = PipelineBuilder::new(name, spec.sil).evidence(name);
    let mut calibration_record: Vec<(String, Value)> = Vec::new();

    let pattern: Box<dyn safex_patterns::pattern::SafetyPattern> = match spec.sil {
        Sil::Sil1 => {
            let engine = Engine::new(first.clone());
            Box::new(
                MonitorActuator::new(
                    ModelChannel::new("primary", engine),
                    spec.confidence_floor,
                    0,
                )
                .map_err(CoreError::Pattern)?,
            )
        }
        Sil::Sil2 => {
            if calibration_inputs.is_empty() || calibration_inputs.len() != calibration_labels.len()
            {
                return Err(CoreError::BadAssembly(
                    "simplex assembly needs non-empty, consistent calibration data".into(),
                ));
            }
            let mut engine = Engine::new(first.clone());
            // Fit the supervisor on calibration observations.
            let mut observations = Vec::with_capacity(calibration_inputs.len());
            for input in calibration_inputs {
                observations.push(observe(&mut engine, input)?);
            }
            let mut supervisor = Mahalanobis::new();
            supervisor.fit(&observations, calibration_labels)?;
            let scores: Result<Vec<f64>, _> =
                observations.iter().map(|o| supervisor.score(o)).collect();
            let scores = scores?;
            let monitor = CalibratedMonitor::fit(Box::new(supervisor), &scores, spec.target_fpr)?;
            calibration_record.push(("monitor_threshold".into(), Value::F64(monitor.threshold())));
            calibration_record.push((
                "monitor_supervisor".into(),
                Value::Str(monitor.supervisor_name().into()),
            ));
            Box::new(Simplex::new(
                engine,
                monitor,
                ConstantChannel::new("fallback", spec.fallback_class),
            ))
        }
        Sil::Sil3 => {
            let engine = Engine::new(first.clone());
            let (lo, hi) = spec.input_range;
            Box::new(SafetyBag::new(
                ModelChannel::new("proposer", engine),
                move |input: &[f32], _class| {
                    input.iter().all(|v| v.is_finite() && *v >= lo && *v <= hi)
                },
            ))
        }
        Sil::Sil4 => {
            let second = models.get(1).ok_or_else(|| {
                CoreError::BadAssembly(
                    "SIL4 two-out-of-three assembly requires two diverse models".into(),
                )
            })?;
            if second.output_shape() != first.output_shape() {
                return Err(CoreError::BadAssembly(
                    "diverse models must share an output shape".into(),
                ));
            }
            let qmodel = QModel::quantize(first)?;
            Box::new(
                TwoOutOfThree::new(
                    ModelChannel::new("float_a", Engine::new(first.clone())),
                    QuantChannel::new("quant_a", QEngine::new(qmodel)),
                    ModelChannel::new("float_b", Engine::new(second.clone())),
                )
                .map_err(CoreError::Pattern)?
                .with_policy(spec.parallel),
            )
        }
    };

    builder = builder.pattern_boxed(pattern);
    let mut pipeline = builder.build()?;

    // Provenance: model digests + monitor calibration.
    if let Some(chain) = pipeline.evidence_mut() {
        for (i, m) in models.iter().enumerate() {
            chain.append(
                RecordKind::ModelTrained,
                vec![
                    ("slot".into(), Value::U64(i as u64)),
                    ("digest".into(), Value::U64(m.digest())),
                    ("params".into(), Value::U64(m.param_count() as u64)),
                ],
            );
        }
        if !calibration_record.is_empty() {
            chain.append(RecordKind::MonitorCalibrated, calibration_record);
        }
    }
    Ok(pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_nn::model::ModelBuilder;
    use safex_tensor::{DetRng, Shape};

    fn model(seed: u64) -> Model {
        let mut rng = DetRng::new(seed);
        ModelBuilder::new(Shape::vector(4))
            .dense(8, &mut rng)
            .unwrap()
            .relu()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    fn calibration(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = DetRng::new(99);
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..4).map(|_| rng.next_f32()).collect())
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        (inputs, labels)
    }

    #[test]
    fn sil1_monitor_actuator() {
        let (inputs, labels) = calibration(10);
        let spec = AssemblySpec {
            sil: Sil::Sil1,
            confidence_floor: 0.0,
            ..Default::default()
        };
        let mut p = for_sil("f", &spec, &[model(1)], &inputs, &labels).unwrap();
        assert_eq!(p.pattern_name(), "monitor_actuator");
        let d = p.decide(&inputs[0]).unwrap();
        assert!(d.action.is_proceed());
        // Evidence: one ModelTrained record.
        assert_eq!(
            p.evidence()
                .unwrap()
                .records_of_kind(RecordKind::ModelTrained)
                .len(),
            1
        );
    }

    #[test]
    fn sil2_simplex_with_fitted_monitor() {
        let (inputs, labels) = calibration(40);
        let spec = AssemblySpec {
            sil: Sil::Sil2,
            ..Default::default()
        };
        let mut p = for_sil("f", &spec, &[model(2)], &inputs, &labels).unwrap();
        assert_eq!(p.pattern_name(), "simplex");
        // In-distribution input mostly accepted.
        let d = p.decide(&inputs[0]).unwrap();
        assert!(d.action.class().is_some());
        // Far-out-of-distribution input rejected to the fallback.
        let d = p.decide(&[100.0, -100.0, 50.0, -50.0]).unwrap();
        assert!(d.action.is_conservative());
        assert_eq!(d.action.class(), Some(spec.fallback_class));
        // Calibration evidence present.
        assert_eq!(
            p.evidence()
                .unwrap()
                .records_of_kind(RecordKind::MonitorCalibrated)
                .len(),
            1
        );
        p.verify_evidence().unwrap();
    }

    #[test]
    fn sil3_safety_bag_envelope() {
        let (inputs, labels) = calibration(10);
        let spec = AssemblySpec {
            sil: Sil::Sil3,
            input_range: (-1.0, 1.0),
            ..Default::default()
        };
        let mut p = for_sil("f", &spec, &[model(3)], &inputs, &labels).unwrap();
        assert_eq!(p.pattern_name(), "safety_bag");
        assert!(p.decide(&[0.1, 0.2, 0.3, 0.4]).unwrap().action.is_proceed());
        let d = p.decide(&[5.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(d.action.is_conservative(), "out-of-envelope input vetoed");
    }

    #[test]
    fn sil4_requires_two_models() {
        let (inputs, labels) = calibration(10);
        let spec = AssemblySpec {
            sil: Sil::Sil4,
            ..Default::default()
        };
        assert!(matches!(
            for_sil("f", &spec, &[model(4)], &inputs, &labels),
            Err(CoreError::BadAssembly(_))
        ));
        let mut p = for_sil("f", &spec, &[model(4), model(5)], &inputs, &labels).unwrap();
        assert_eq!(p.pattern_name(), "two_out_of_three");
        // Float and quant builds of model A agree, so a majority exists
        // even when model B dissents.
        let d = p.decide(&inputs[0]).unwrap();
        assert!(d.action.class().is_some());
        // Two ModelTrained records.
        assert_eq!(
            p.evidence()
                .unwrap()
                .records_of_kind(RecordKind::ModelTrained)
                .len(),
            2
        );
    }

    #[test]
    fn spec_validation() {
        let (inputs, labels) = calibration(4);
        let bad = AssemblySpec {
            target_fpr: 0.0,
            ..Default::default()
        };
        assert!(for_sil("f", &bad, &[model(6)], &inputs, &labels).is_err());
        let bad = AssemblySpec {
            confidence_floor: 2.0,
            ..Default::default()
        };
        assert!(for_sil("f", &bad, &[model(6)], &inputs, &labels).is_err());
        let bad = AssemblySpec {
            input_range: (1.0, -1.0),
            ..Default::default()
        };
        assert!(for_sil("f", &bad, &[model(6)], &inputs, &labels).is_err());
        let bad = AssemblySpec {
            fallback_class: 9,
            ..Default::default()
        };
        assert!(for_sil("f", &bad, &[model(6)], &inputs, &labels).is_err());
        assert!(for_sil("f", &AssemblySpec::default(), &[], &inputs, &labels).is_err());
        // SIL2 with no calibration data.
        assert!(for_sil("f", &AssemblySpec::default(), &[model(6)], &[], &[]).is_err());
    }
}
