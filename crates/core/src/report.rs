//! Certification reports: one JSON artefact binding everything together.

use safex_trace::json::Json;

use crate::pipeline::SafePipeline;

/// A certification report for one deployed pipeline.
///
/// Collects the identity and behaviour of the pipeline plus whatever
/// analysis results the campaign produced (timing bounds, supervisor
/// metrics, objective coverage). Serialises to deterministic JSON via
/// [`CertificationReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct CertificationReport {
    pipeline_name: String,
    sil: String,
    pattern: String,
    decisions: u64,
    conservative_rate: f64,
    evidence_head: Option<String>,
    evidence_len: Option<u64>,
    pwcet: Option<(f64, f64)>,
    supervisor_auroc: Option<f64>,
    objective_coverage: Option<f64>,
    notes: Vec<String>,
}

impl CertificationReport {
    /// Snapshots a pipeline's identity and statistics.
    pub fn from_pipeline(pipeline: &SafePipeline) -> Self {
        CertificationReport {
            pipeline_name: pipeline.name().to_string(),
            sil: pipeline.sil().to_string(),
            pattern: pipeline.pattern_name().to_string(),
            decisions: pipeline.decision_count(),
            conservative_rate: pipeline.conservative_rate(),
            evidence_head: pipeline
                .evidence()
                .map(|c| format!("{:016x}", c.head_hash())),
            evidence_len: pipeline.evidence().map(|c| c.len() as u64),
            pwcet: None,
            supervisor_auroc: None,
            objective_coverage: None,
            notes: Vec::new(),
        }
    }

    /// Attaches a pWCET result: `(exceedance probability, cycle bound)`.
    pub fn with_pwcet(mut self, exceedance: f64, bound: f64) -> Self {
        self.pwcet = Some((exceedance, bound));
        self
    }

    /// Attaches the supervisor's AUROC from the OOD evaluation.
    pub fn with_supervisor_auroc(mut self, auroc: f64) -> Self {
        self.supervisor_auroc = Some(auroc);
        self
    }

    /// Attaches verification-objective coverage from `safex-fusa`.
    pub fn with_objective_coverage(mut self, coverage: f64) -> Self {
        self.objective_coverage = Some(coverage);
        self
    }

    /// Appends a free-text note (assumption, caveat, waiver).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The pipeline name.
    pub fn pipeline_name(&self) -> &str {
        &self.pipeline_name
    }

    /// Serialises to deterministic JSON.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.set("pipeline", Json::from(self.pipeline_name.as_str()))
            .set("sil", Json::from(self.sil.as_str()))
            .set("pattern", Json::from(self.pattern.as_str()))
            .set("decisions", Json::from(self.decisions))
            .set("conservative_rate", Json::from(self.conservative_rate));
        if let Some(head) = &self.evidence_head {
            root.set("evidence_head", Json::from(head.as_str()));
        }
        if let Some(len) = self.evidence_len {
            root.set("evidence_records", Json::from(len));
        }
        if let Some((p, bound)) = self.pwcet {
            let mut t = Json::object();
            t.set("exceedance", Json::from(p));
            t.set("bound_cycles", Json::from(bound));
            root.set("pwcet", t);
        }
        if let Some(a) = self.supervisor_auroc {
            root.set("supervisor_auroc", Json::from(a));
        }
        if let Some(c) = self.objective_coverage {
            root.set("objective_coverage", Json::from(c));
        }
        if !self.notes.is_empty() {
            root.set(
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::from(n.as_str())).collect()),
            );
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use safex_patterns::channel::ConstantChannel;
    use safex_patterns::pattern::Bare;
    use safex_patterns::Sil;

    fn pipeline() -> SafePipeline {
        PipelineBuilder::new("demo", Sil::Sil1)
            .pattern(Bare::new(ConstantChannel::new("c", 0)))
            .allow_under_provisioned()
            .evidence("demo")
            .build()
            .unwrap()
    }

    #[test]
    fn report_snapshots_pipeline() {
        let mut p = pipeline();
        p.decide(&[0.0]).unwrap();
        let report = CertificationReport::from_pipeline(&p);
        assert_eq!(report.pipeline_name(), "demo");
        let json = report.to_json().to_string_compact();
        assert!(json.contains("\"pipeline\":\"demo\""));
        assert!(json.contains("\"sil\":\"SIL1\""));
        assert!(json.contains("\"pattern\":\"bare\""));
        assert!(json.contains("\"decisions\":1"));
        assert!(json.contains("evidence_head"));
        assert!(json.contains("\"evidence_records\":1"));
    }

    #[test]
    fn optional_sections() {
        let p = pipeline();
        let report = CertificationReport::from_pipeline(&p)
            .with_pwcet(1e-12, 123456.0)
            .with_supervisor_auroc(0.97)
            .with_objective_coverage(0.8)
            .with_note("simulated platform per DESIGN.md");
        let json = report.to_json().to_string_compact();
        assert!(json.contains("\"exceedance\":0.000000000001"));
        assert!(json.contains("\"bound_cycles\":123456"));
        assert!(json.contains("\"supervisor_auroc\":0.97"));
        assert!(json.contains("\"objective_coverage\":0.8"));
        assert!(json.contains("simulated platform"));
    }

    #[test]
    fn no_evidence_pipeline_omits_section() {
        let p = PipelineBuilder::new("quiet", Sil::Sil1)
            .pattern(Bare::new(ConstantChannel::new("c", 0)))
            .allow_under_provisioned()
            .build()
            .unwrap();
        let json = CertificationReport::from_pipeline(&p)
            .to_json()
            .to_string_compact();
        assert!(!json.contains("evidence_head"));
    }

    #[test]
    fn deterministic_output() {
        let p = pipeline();
        let a = CertificationReport::from_pipeline(&p)
            .to_json()
            .to_string_compact();
        let b = CertificationReport::from_pipeline(&p)
            .to_json()
            .to_string_compact();
        assert_eq!(a, b);
    }
}
