//! Golden snapshot: the campaign report is byte-identical for any
//! worker count, for both CRC strategies, with and without ECC repair —
//! and its canonical digest is pinned so a refactor cannot silently
//! shift the measured numbers.

use safex_core::campaign::{run, CampaignConfig, CampaignPattern, FaultClass};
use safex_core::health::HealthConfig;
use safex_core::CampaignReport;
use safex_nn::model::ModelBuilder;
use safex_nn::{CrcStrategy, EccConfig, HardenConfig, Model};
use safex_tensor::{DetRng, Shape};

fn fixture() -> (Model, Vec<Vec<f32>>) {
    let mut rng = DetRng::new(77);
    let model = ModelBuilder::new(Shape::vector(8))
        .dense(12, &mut rng)
        .unwrap()
        .relu()
        .dense(4, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let inputs: Vec<Vec<f32>> = (0..32)
        .map(|_| (0..8).map(|_| rng.next_f32() * 2.0 - 1.0).collect())
        .collect();
    (model, inputs)
}

fn config(strategy: CrcStrategy, repair: bool, workers: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 9,
        decisions: 120,
        classes: vec![FaultClass::WeightBitFlip, FaultClass::InputNoise],
        rates: vec![0.1],
        patterns: vec![CampaignPattern::MonitorActuator],
        harden: HardenConfig {
            crc_strategy: strategy,
            repair: repair.then(EccConfig::default),
            ..HardenConfig::default()
        },
        health: HealthConfig {
            resume_after: 8,
            ..HealthConfig::default()
        },
        supervision: None,
        workers,
    }
}

/// FNV-1a over a canonical little-endian encoding of every report field;
/// floats hash by bit pattern so the digest is exact, not approximate.
fn digest(report: &CampaignReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&report.seed.to_le_bytes());
    for cell in &report.cells {
        eat(cell.pattern.as_bytes());
        eat(cell.class.tag().as_bytes());
        eat(&cell.rate.to_bits().to_le_bytes());
        eat(&cell.decisions.to_le_bytes());
        eat(&cell.faulted.to_le_bytes());
        eat(&cell.detected.to_le_bytes());
        eat(&cell.corrected.to_le_bytes());
        eat(&cell.corrupted.to_le_bytes());
        eat(&cell.silent.to_le_bytes());
        eat(&cell.false_alarms.to_le_bytes());
        eat(&cell.detection_latency.unwrap_or(u64::MAX).to_le_bytes());
        eat(&(cell.transitions as u64).to_le_bytes());
        eat(&cell.time_degraded.to_le_bytes());
        eat(&cell.time_stopped.to_le_bytes());
        eat(&cell.crc_staleness_bound.unwrap_or(u64::MAX).to_le_bytes());
        eat(&cell.repair_latency.unwrap_or(u64::MAX).to_le_bytes());
        eat(&cell.sidecar_overhead_pct.to_bits().to_le_bytes());
    }
    h
}

#[test]
fn fused_campaign_report_reproduces_the_full_golden() {
    // Fused is Full with the verification sweep folded into the layer
    // kernels: verdicts, staleness bounds, repair behaviour, and hence
    // the whole campaign report must be byte-identical — pinned against
    // the *Full* golden digests, not separate ones.
    let (model, inputs) = fixture();
    for (repair, pinned) in [
        (false, 0xba02_e9c6_c661_7f2au64),
        (true, 0xc04a_974e_e1f8_eda0u64),
    ] {
        let reference = run(&config(CrcStrategy::Fused, repair, 1), &model, &inputs).unwrap();
        assert_eq!(
            digest(&reference),
            pinned,
            "Fused drifted from the Full golden (repair={repair}): got {:#018x}",
            digest(&reference)
        );
        for workers in [2usize, 8] {
            let parallel = run(
                &config(CrcStrategy::Fused, repair, workers),
                &model,
                &inputs,
            )
            .unwrap();
            assert_eq!(
                parallel, reference,
                "{workers}-worker Fused report diverged (repair={repair})"
            );
        }
    }
}

#[test]
fn campaign_report_is_byte_identical_across_workers_and_pinned() {
    let (model, inputs) = fixture();
    // Golden digests, one per (strategy, repair) corner, computed from
    // the sequential reference run. These pin the measured campaign
    // numbers: any behavioural drift in injection, detection, repair, or
    // accounting shows up as a digest mismatch here.
    let golden: [(CrcStrategy, bool, u64); 4] = [
        (CrcStrategy::Full, false, 0xba02_e9c6_c661_7f2a),
        (CrcStrategy::Full, true, 0xc04a_974e_e1f8_eda0),
        (CrcStrategy::Rotating, false, 0x666d_ae23_9d95_e7b8),
        (CrcStrategy::Rotating, true, 0xe9f4_6dc9_f307_9302),
    ];
    for (strategy, repair, pinned) in golden {
        let reference = run(&config(strategy, repair, 1), &model, &inputs).unwrap();
        assert_eq!(
            digest(&reference),
            pinned,
            "golden digest drifted for {strategy:?}, repair={repair}: \
             got {:#018x}",
            digest(&reference)
        );
        for workers in [2usize, 4, 8] {
            let parallel = run(&config(strategy, repair, workers), &model, &inputs).unwrap();
            assert_eq!(
                parallel, reference,
                "{workers}-worker report diverged from sequential \
                 ({strategy:?}, repair={repair})"
            );
            assert_eq!(digest(&parallel), pinned);
        }
    }
}
