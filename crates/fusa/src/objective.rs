//! Verification objectives: the pass/fail evidence ledger.
//!
//! FUSA practice verifies every requirement through one or more
//! *objectives*, each discharged by a method (test, analysis, simulation,
//! review) and backed by evidence. This module tracks objective status
//! and answers the coverage questions an assessor asks ("are all SIL-4
//! requirements fully verified?").

use crate::error::FusaError;
use crate::requirement::{Registry, RequirementId};

/// How an objective is discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VerificationMethod {
    /// Requirement-based testing.
    Test,
    /// Static/mathematical analysis (e.g. the MBPTA pWCET bound).
    Analysis,
    /// Simulation campaign (e.g. fault injection).
    Simulation,
    /// Manual review/inspection.
    Review,
}

/// Objective status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectiveStatus {
    /// Not yet attempted.
    Pending,
    /// Discharged; the string references the evidence (e.g. an evidence
    /// chain record index or report id).
    Passed(String),
    /// Attempted and failed; the string explains.
    Failed(String),
}

/// A stable handle to an objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectiveId(usize);

/// One verification objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// External identifier.
    pub tag: String,
    /// The requirement this objective verifies.
    pub requirement: RequirementId,
    /// Discharge method.
    pub method: VerificationMethod,
    /// Description of what must be shown.
    pub description: String,
    /// Current status.
    pub status: ObjectiveStatus,
}

/// The objective ledger for one requirement registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectiveLedger {
    objectives: Vec<Objective>,
}

impl ObjectiveLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ObjectiveLedger::default()
    }

    /// Adds a pending objective.
    ///
    /// # Errors
    ///
    /// Returns [`FusaError::DuplicateId`] for a reused tag or
    /// [`FusaError::UnknownId`] if the requirement does not exist in
    /// `registry`.
    pub fn add(
        &mut self,
        registry: &Registry,
        tag: impl Into<String>,
        requirement: RequirementId,
        method: VerificationMethod,
        description: impl Into<String>,
    ) -> Result<ObjectiveId, FusaError> {
        let tag = tag.into();
        if self.objectives.iter().any(|o| o.tag == tag) {
            return Err(FusaError::DuplicateId(tag));
        }
        if registry.get(requirement).is_none() {
            return Err(FusaError::UnknownId("requirement".into()));
        }
        self.objectives.push(Objective {
            tag,
            requirement,
            method,
            description: description.into(),
            status: ObjectiveStatus::Pending,
        });
        Ok(ObjectiveId(self.objectives.len() - 1))
    }

    /// Marks an objective passed with an evidence reference.
    ///
    /// # Errors
    ///
    /// Returns [`FusaError::UnknownId`] for a bad id.
    pub fn pass(&mut self, id: ObjectiveId, evidence: impl Into<String>) -> Result<(), FusaError> {
        let o = self
            .objectives
            .get_mut(id.0)
            .ok_or_else(|| FusaError::UnknownId(format!("objective #{}", id.0)))?;
        o.status = ObjectiveStatus::Passed(evidence.into());
        Ok(())
    }

    /// Marks an objective failed with a reason.
    ///
    /// # Errors
    ///
    /// Returns [`FusaError::UnknownId`] for a bad id.
    pub fn fail(&mut self, id: ObjectiveId, reason: impl Into<String>) -> Result<(), FusaError> {
        let o = self
            .objectives
            .get_mut(id.0)
            .ok_or_else(|| FusaError::UnknownId(format!("objective #{}", id.0)))?;
        o.status = ObjectiveStatus::Failed(reason.into());
        Ok(())
    }

    /// Looks up an objective.
    pub fn get(&self, id: ObjectiveId) -> Option<&Objective> {
        self.objectives.get(id.0)
    }

    /// All objectives.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectiveId, &Objective)> {
        self.objectives
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectiveId(i), o))
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Objectives attached to a requirement.
    pub fn for_requirement(&self, req: RequirementId) -> Vec<&Objective> {
        self.objectives
            .iter()
            .filter(|o| o.requirement == req)
            .collect()
    }

    /// Whether a requirement is fully verified: it has at least one
    /// objective and every attached objective passed.
    pub fn requirement_verified(&self, req: RequirementId) -> bool {
        let objs = self.for_requirement(req);
        !objs.is_empty()
            && objs
                .iter()
                .all(|o| matches!(o.status, ObjectiveStatus::Passed(_)))
    }

    /// Fraction of requirements in the registry that are fully verified
    /// (0 for an empty registry).
    pub fn coverage(&self, registry: &Registry) -> f64 {
        if registry.is_empty() {
            return 0.0;
        }
        let verified = registry
            .iter()
            .filter(|(id, _)| self.requirement_verified(*id))
            .count();
        verified as f64 / registry.len() as f64
    }

    /// `(pending, passed, failed)` counts.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for o in &self.objectives {
            match o.status {
                ObjectiveStatus::Pending => counts.0 += 1,
                ObjectiveStatus::Passed(_) => counts.1 += 1,
                ObjectiveStatus::Failed(_) => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirement::RequirementKind;
    use safex_patterns::Sil;

    fn setup() -> (Registry, RequirementId, RequirementId) {
        let mut reg = Registry::new();
        let a = reg
            .add("R1", "detect", Sil::Sil3, RequirementKind::Functional, None)
            .unwrap();
        let b = reg
            .add("R2", "deadline", Sil::Sil3, RequirementKind::Timing, None)
            .unwrap();
        (reg, a, b)
    }

    #[test]
    fn lifecycle_and_coverage() {
        let (reg, a, b) = setup();
        let mut ledger = ObjectiveLedger::new();
        let o1 = ledger
            .add(&reg, "O1", a, VerificationMethod::Test, "accuracy >= 90%")
            .unwrap();
        let o2 = ledger
            .add(
                &reg,
                "O2",
                a,
                VerificationMethod::Simulation,
                "fault coverage",
            )
            .unwrap();
        let o3 = ledger
            .add(
                &reg,
                "O3",
                b,
                VerificationMethod::Analysis,
                "pWCET <= budget",
            )
            .unwrap();
        assert_eq!(ledger.coverage(&reg), 0.0);
        assert!(!ledger.requirement_verified(a));

        ledger.pass(o1, "record-12").unwrap();
        assert!(!ledger.requirement_verified(a), "one of two passed");
        ledger.pass(o2, "record-13").unwrap();
        assert!(ledger.requirement_verified(a));
        assert_eq!(ledger.coverage(&reg), 0.5);

        ledger.fail(o3, "bound exceeded").unwrap();
        assert!(!ledger.requirement_verified(b));
        assert_eq!(ledger.status_counts(), (0, 2, 1));
    }

    #[test]
    fn requirement_without_objectives_not_verified() {
        let (reg, a, _) = setup();
        let ledger = ObjectiveLedger::new();
        assert!(!ledger.requirement_verified(a));
        assert_eq!(ledger.coverage(&reg), 0.0);
        assert!(ledger.is_empty());
    }

    #[test]
    fn validation() {
        let (reg, a, _) = setup();
        let mut ledger = ObjectiveLedger::new();
        ledger
            .add(&reg, "O1", a, VerificationMethod::Test, "x")
            .unwrap();
        assert!(matches!(
            ledger.add(&reg, "O1", a, VerificationMethod::Test, "y"),
            Err(FusaError::DuplicateId(_))
        ));
        assert!(ledger.pass(ObjectiveId(9), "e").is_err());
        assert!(ledger.fail(ObjectiveId(9), "e").is_err());
        // Requirement from another registry (out of range id).
        let empty = Registry::new();
        assert!(ledger
            .add(&empty, "O2", a, VerificationMethod::Review, "z")
            .is_err());
    }

    #[test]
    fn per_requirement_query() {
        let (reg, a, b) = setup();
        let mut ledger = ObjectiveLedger::new();
        ledger
            .add(&reg, "O1", a, VerificationMethod::Test, "")
            .unwrap();
        ledger
            .add(&reg, "O2", b, VerificationMethod::Test, "")
            .unwrap();
        ledger
            .add(&reg, "O3", a, VerificationMethod::Review, "")
            .unwrap();
        assert_eq!(ledger.for_requirement(a).len(), 2);
        assert_eq!(ledger.for_requirement(b).len(), 1);
        assert_eq!(ledger.len(), 3);
    }

    #[test]
    fn empty_registry_coverage_zero() {
        let ledger = ObjectiveLedger::new();
        assert_eq!(ledger.coverage(&Registry::new()), 0.0);
    }
}
