//! GSN-style safety cases: goals, strategies, solutions.
//!
//! A Goal Structuring Notation case argues from a top goal ("the DL-based
//! perception function is acceptably safe") through strategies
//! ("argument over the four SAFEXPLAIN pillars") down to solutions —
//! concrete evidence references. The completeness check every assessor
//! performs is mechanical: no undeveloped leaf goals.

use std::fmt;

use crate::error::FusaError;

/// Node type in a GSN structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A claim to be supported.
    Goal,
    /// An argument approach decomposing a goal.
    Strategy,
    /// Evidence discharging a goal (reference string).
    Solution(String),
}

/// A stable node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// One GSN node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// External identifier (e.g. "G1", "S1", "Sn3").
    pub tag: String,
    /// Statement text.
    pub statement: String,
    /// Node type.
    pub kind: NodeKind,
    /// Parent node (None for the root goal).
    pub parent: Option<NodeId>,
}

/// A GSN safety case: a tree rooted at a top-level goal.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyCase {
    nodes: Vec<Node>,
}

impl SafetyCase {
    /// Creates a case with its root goal.
    pub fn new(root_tag: impl Into<String>, root_statement: impl Into<String>) -> Self {
        SafetyCase {
            nodes: vec![Node {
                tag: root_tag.into(),
                statement: root_statement.into(),
                kind: NodeKind::Goal,
                parent: None,
            }],
        }
    }

    /// The root goal's id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Adds a sub-goal under a goal or strategy.
    ///
    /// # Errors
    ///
    /// Returns [`FusaError::UnknownId`] / [`FusaError::DuplicateId`] /
    /// [`FusaError::BadStructure`] (goals cannot hang off solutions).
    pub fn add_goal(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        statement: impl Into<String>,
    ) -> Result<NodeId, FusaError> {
        self.add_node(parent, tag, statement, NodeKind::Goal)
    }

    /// Adds a strategy under a goal.
    ///
    /// # Errors
    ///
    /// As [`SafetyCase::add_goal`], plus strategies may only attach to
    /// goals.
    pub fn add_strategy(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        statement: impl Into<String>,
    ) -> Result<NodeId, FusaError> {
        if !matches!(self.node(parent)?.kind, NodeKind::Goal) {
            return Err(FusaError::BadStructure(
                "strategies may only attach to goals".into(),
            ));
        }
        self.add_node(parent, tag, statement, NodeKind::Strategy)
    }

    /// Adds a solution (evidence) under a goal.
    ///
    /// # Errors
    ///
    /// As [`SafetyCase::add_goal`], plus solutions may only attach to
    /// goals.
    pub fn add_solution(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        statement: impl Into<String>,
        evidence: impl Into<String>,
    ) -> Result<NodeId, FusaError> {
        if !matches!(self.node(parent)?.kind, NodeKind::Goal) {
            return Err(FusaError::BadStructure(
                "solutions may only attach to goals".into(),
            ));
        }
        self.add_node(parent, tag, statement, NodeKind::Solution(evidence.into()))
    }

    fn add_node(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        statement: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId, FusaError> {
        let tag = tag.into();
        if self.nodes.iter().any(|n| n.tag == tag) {
            return Err(FusaError::DuplicateId(tag));
        }
        if parent.0 >= self.nodes.len() {
            return Err(FusaError::UnknownId(format!("node #{}", parent.0)));
        }
        if matches!(self.nodes[parent.0].kind, NodeKind::Solution(_)) {
            return Err(FusaError::BadStructure(
                "nothing may attach to a solution".into(),
            ));
        }
        self.nodes.push(Node {
            tag,
            statement: statement.into(),
            kind,
            parent: Some(parent),
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    fn node(&self, id: NodeId) -> Result<&Node, FusaError> {
        self.nodes
            .get(id.0)
            .ok_or_else(|| FusaError::UnknownId(format!("node #{}", id.0)))
    }

    /// Direct children of a node.
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == Some(id))
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the case has only its root (never fully empty).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Goals that are *undeveloped*: no children at all. A complete case
    /// has none.
    pub fn undeveloped_goals(&self) -> Vec<&Node> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| {
                matches!(n.kind, NodeKind::Goal) && self.children(NodeId(*i)).is_empty()
            })
            .map(|(_, n)| n)
            .collect()
    }

    /// Strategies with no sub-goals (also incomplete).
    pub fn dangling_strategies(&self) -> Vec<&Node> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| {
                matches!(n.kind, NodeKind::Strategy) && self.children(NodeId(*i)).is_empty()
            })
            .map(|(_, n)| n)
            .collect()
    }

    /// Whether the argument is complete: every goal is developed and
    /// every strategy has sub-goals.
    pub fn is_complete(&self) -> bool {
        self.undeveloped_goals().is_empty() && self.dangling_strategies().is_empty()
    }

    /// Renders the case as an indented text outline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(NodeId(0), 0, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, out: &mut String) {
        let n = &self.nodes[id.0];
        let prefix = match &n.kind {
            NodeKind::Goal => "G",
            NodeKind::Strategy => "S",
            NodeKind::Solution(_) => "Sn",
        };
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("[{prefix}] {}: {}", n.tag, n.statement));
        if let NodeKind::Solution(ev) = &n.kind {
            out.push_str(&format!(" (evidence: {ev})"));
        }
        out.push('\n');
        for child in self.children(id) {
            self.render_node(child, depth + 1, out);
        }
    }
}

impl fmt::Display for SafetyCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pillar_case() -> SafetyCase {
        let mut case = SafetyCase::new("G1", "DL perception is acceptably safe");
        let s1 = case
            .add_strategy(case.root(), "S1", "argue over SAFEXPLAIN pillars")
            .unwrap();
        let g_xai = case
            .add_goal(s1, "G2", "predictions carry trust evidence")
            .unwrap();
        case.add_solution(g_xai, "Sn1", "supervisor AUROC report", "E1-report")
            .unwrap();
        let g_time = case
            .add_goal(s1, "G3", "deadline met with 1e-12 bound")
            .unwrap();
        case.add_solution(g_time, "Sn2", "MBPTA pWCET analysis", "E2-report")
            .unwrap();
        case
    }

    #[test]
    fn complete_case_checks_out() {
        let case = pillar_case();
        assert!(case.is_complete());
        assert!(case.undeveloped_goals().is_empty());
        assert_eq!(case.len(), 6);
        assert!(!case.is_empty());
    }

    #[test]
    fn undeveloped_goal_detected() {
        let mut case = pillar_case();
        let s1 = NodeId(1);
        case.add_goal(s1, "G4", "explanations are faithful")
            .unwrap();
        assert!(!case.is_complete());
        let undeveloped = case.undeveloped_goals();
        assert_eq!(undeveloped.len(), 1);
        assert_eq!(undeveloped[0].tag, "G4");
    }

    #[test]
    fn dangling_strategy_detected() {
        let mut case = SafetyCase::new("G1", "top");
        case.add_strategy(case.root(), "S1", "argue somehow")
            .unwrap();
        assert!(!case.is_complete());
        assert_eq!(case.dangling_strategies().len(), 1);
    }

    #[test]
    fn structure_rules() {
        let mut case = SafetyCase::new("G1", "top");
        let sn = case
            .add_solution(case.root(), "Sn1", "evidence", "ref")
            .unwrap();
        // Nothing attaches to a solution.
        assert!(case.add_goal(sn, "G2", "x").is_err());
        // Strategy cannot attach to a solution either.
        assert!(case.add_strategy(sn, "S1", "x").is_err());
        // Solutions/strategies only under goals.
        let s = case.add_strategy(case.root(), "S1", "strategy").unwrap();
        assert!(case.add_solution(s, "Sn2", "x", "ref").is_err());
        assert!(case.add_strategy(s, "S2", "x").is_err());
        // But goals under strategies are fine.
        assert!(case.add_goal(s, "G2", "subgoal").is_ok());
    }

    #[test]
    fn duplicate_and_unknown_ids() {
        let mut case = SafetyCase::new("G1", "top");
        assert!(case.add_goal(case.root(), "G1", "dup").is_err());
        assert!(case.add_goal(NodeId(99), "G2", "x").is_err());
    }

    #[test]
    fn render_outline() {
        let case = pillar_case();
        let text = case.render();
        assert!(text.contains("[G] G1"));
        assert!(text.contains("  [S] S1"));
        assert!(text.contains("    [G] G2"));
        assert!(text.contains("(evidence: E1-report)"));
        assert_eq!(case.to_string(), text);
    }
}
