//! Error type for the FUSA framework.

use std::error::Error;
use std::fmt;

/// Errors produced by registries and safety cases.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FusaError {
    /// An id was reused.
    DuplicateId(String),
    /// A referenced id does not exist.
    UnknownId(String),
    /// A decomposition violates the integrity algebra.
    BadDecomposition(String),
    /// A structural rule was violated (cycle, wrong node type, ...).
    BadStructure(String),
}

impl fmt::Display for FusaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusaError::DuplicateId(id) => write!(f, "duplicate id {id}"),
            FusaError::UnknownId(id) => write!(f, "unknown id {id}"),
            FusaError::BadDecomposition(msg) => write!(f, "invalid decomposition: {msg}"),
            FusaError::BadStructure(msg) => write!(f, "invalid structure: {msg}"),
        }
    }
}

impl Error for FusaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(FusaError::DuplicateId("REQ-1".into())
            .to_string()
            .contains("REQ-1"));
    }
}
