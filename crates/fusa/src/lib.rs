#![forbid(unsafe_code)]
//! # safex-fusa
//!
//! Functional-safety (FUSA) process scaffolding: the certification
//! framework the SAFEXPLAIN paper keeps referring to — safety
//! requirements with integrity levels, SIL decomposition, verification
//! objectives with pass/fail evidence, and GSN-style safety-case goal
//! structures.
//!
//! The paper's core diagnosis is that *"the data-dependent and stochastic
//! nature of DL algorithms clashes with current FUSA practice, which
//! instead builds on deterministic, verifiable, and pass/fail test-based
//! software"*. This crate implements that FUSA practice so the rest of the
//! workspace can demonstrably plug into it: every experiment result can be
//! attached as evidence to a verification objective, and objective
//! coverage rolls up into a safety-case completeness check.
//!
//! * [`requirement`] — requirements registry with SIL allocation and
//!   ISO 26262-style decomposition validation.
//! * [`objective`] — verification objectives (test / analysis /
//!   simulation / review) with status tracking and coverage queries.
//! * [`case`] — GSN goal structures (goals, strategies, solutions) with
//!   completeness checking and a text renderer.
//!
//! ## Example
//!
//! ```
//! use safex_fusa::requirement::{Registry, RequirementKind};
//! use safex_patterns::Sil;
//!
//! let mut reg = Registry::new();
//! let top = reg.add("REQ-1", "Detect obstacles within 100 ms", Sil::Sil3,
//!                   RequirementKind::Functional, None).unwrap();
//! let child = reg.add("REQ-1.1", "DL channel proposes obstacle class", Sil::Sil1,
//!                     RequirementKind::Functional, Some(top)).unwrap();
//! assert_eq!(reg.children(top).len(), 1);
//! # let _ = child;
//! ```

pub mod case;
pub mod error;
pub mod objective;
pub mod requirement;

pub use error::FusaError;
