//! Safety requirements with SIL allocation and decomposition.

use safex_patterns::Sil;

use crate::error::FusaError;

/// The nature of a requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RequirementKind {
    /// What the function must do.
    Functional,
    /// Integrity/robustness constraint (fault tolerance, monitoring).
    Integrity,
    /// Timing constraint (deadline, pWCET budget).
    Timing,
    /// Runtime monitoring obligation.
    Monitoring,
}

/// A stable handle to a requirement inside a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequirementId(usize);

/// One safety requirement.
#[derive(Debug, Clone, PartialEq)]
pub struct Requirement {
    /// External identifier (e.g. "REQ-PER-012").
    pub tag: String,
    /// Requirement text.
    pub text: String,
    /// Allocated integrity level.
    pub sil: Sil,
    /// Kind.
    pub kind: RequirementKind,
    /// Parent requirement, if this one refines/decomposes another.
    pub parent: Option<RequirementId>,
}

/// A registry of requirements forming a decomposition forest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    requirements: Vec<Requirement>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds a requirement.
    ///
    /// # Errors
    ///
    /// Returns [`FusaError::DuplicateId`] for a reused tag or
    /// [`FusaError::UnknownId`] for a dangling parent.
    pub fn add(
        &mut self,
        tag: impl Into<String>,
        text: impl Into<String>,
        sil: Sil,
        kind: RequirementKind,
        parent: Option<RequirementId>,
    ) -> Result<RequirementId, FusaError> {
        let tag = tag.into();
        if self.requirements.iter().any(|r| r.tag == tag) {
            return Err(FusaError::DuplicateId(tag));
        }
        if let Some(p) = parent {
            if p.0 >= self.requirements.len() {
                return Err(FusaError::UnknownId(format!("parent #{}", p.0)));
            }
        }
        self.requirements.push(Requirement {
            tag,
            text: text.into(),
            sil,
            kind,
            parent,
        });
        Ok(RequirementId(self.requirements.len() - 1))
    }

    /// Looks up a requirement.
    pub fn get(&self, id: RequirementId) -> Option<&Requirement> {
        self.requirements.get(id.0)
    }

    /// Finds a requirement by its external tag.
    pub fn by_tag(&self, tag: &str) -> Option<(RequirementId, &Requirement)> {
        self.requirements
            .iter()
            .enumerate()
            .find(|(_, r)| r.tag == tag)
            .map(|(i, r)| (RequirementId(i), r))
    }

    /// All requirements with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (RequirementId, &Requirement)> {
        self.requirements
            .iter()
            .enumerate()
            .map(|(i, r)| (RequirementId(i), r))
    }

    /// Number of requirements.
    pub fn len(&self) -> usize {
        self.requirements.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.requirements.is_empty()
    }

    /// Direct children of a requirement.
    pub fn children(&self, id: RequirementId) -> Vec<RequirementId> {
        self.requirements
            .iter()
            .enumerate()
            .filter(|(_, r)| r.parent == Some(id))
            .map(|(i, _)| RequirementId(i))
            .collect()
    }

    /// Validates a requirement's decomposition per the integrity algebra.
    ///
    /// Rule (modelled on ISO 26262-9 ASIL decomposition): the children's
    /// levels must *sum* to at least the parent's level (SIL treated as
    /// 1-4 additive with independence assumed), and a parent with
    /// children must have at least two of them (decomposing into one
    /// part is just refinement and keeps the full SIL — flagged as an
    /// error here to force the distinction).
    ///
    /// Requirements without children validate trivially.
    ///
    /// # Errors
    ///
    /// Returns [`FusaError::UnknownId`] for a bad id or
    /// [`FusaError::BadDecomposition`] when the rule is violated.
    pub fn validate_decomposition(&self, id: RequirementId) -> Result<(), FusaError> {
        let parent = self
            .get(id)
            .ok_or_else(|| FusaError::UnknownId(format!("#{}", id.0)))?;
        let children = self.children(id);
        if children.is_empty() {
            return Ok(());
        }
        if children.len() == 1 {
            let child = self.get(children[0]).expect("child exists");
            if child.sil < parent.sil {
                return Err(FusaError::BadDecomposition(format!(
                    "single refinement {} may not lower SIL ({} -> {})",
                    child.tag, parent.sil, child.sil
                )));
            }
            return Ok(());
        }
        let sum: u8 = children
            .iter()
            .map(|&c| self.get(c).expect("child exists").sil.level())
            .sum();
        if sum < parent.sil.level() {
            return Err(FusaError::BadDecomposition(format!(
                "children of {} sum to SIL {sum} < parent {}",
                parent.tag,
                parent.sil.level()
            )));
        }
        Ok(())
    }

    /// Validates every requirement's decomposition.
    ///
    /// # Errors
    ///
    /// Returns the first violation.
    pub fn validate_all(&self) -> Result<(), FusaError> {
        for (id, _) in self.iter() {
            self.validate_decomposition(id)?;
        }
        Ok(())
    }

    /// Requirement count per SIL level, indexed `[SIL1, SIL2, SIL3, SIL4]`.
    pub fn sil_histogram(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for r in &self.requirements {
            counts[(r.sil.level() - 1) as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut reg = Registry::new();
        let id = reg
            .add(
                "R1",
                "do the thing",
                Sil::Sil2,
                RequirementKind::Functional,
                None,
            )
            .unwrap();
        assert_eq!(reg.get(id).unwrap().tag, "R1");
        assert_eq!(reg.by_tag("R1").unwrap().0, id);
        assert!(reg.by_tag("R9").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_tag_rejected() {
        let mut reg = Registry::new();
        reg.add("R1", "a", Sil::Sil1, RequirementKind::Functional, None)
            .unwrap();
        assert_eq!(
            reg.add("R1", "b", Sil::Sil1, RequirementKind::Functional, None),
            Err(FusaError::DuplicateId("R1".into()))
        );
    }

    #[test]
    fn dangling_parent_rejected() {
        let mut reg = Registry::new();
        assert!(matches!(
            reg.add(
                "R1",
                "a",
                Sil::Sil1,
                RequirementKind::Functional,
                Some(RequirementId(5))
            ),
            Err(FusaError::UnknownId(_))
        ));
    }

    #[test]
    fn valid_decomposition_passes() {
        let mut reg = Registry::new();
        let top = reg
            .add("R1", "top", Sil::Sil4, RequirementKind::Functional, None)
            .unwrap();
        reg.add(
            "R1.1",
            "dl",
            Sil::Sil2,
            RequirementKind::Functional,
            Some(top),
        )
        .unwrap();
        reg.add(
            "R1.2",
            "monitor",
            Sil::Sil2,
            RequirementKind::Monitoring,
            Some(top),
        )
        .unwrap();
        reg.validate_decomposition(top).unwrap();
        reg.validate_all().unwrap();
    }

    #[test]
    fn weak_decomposition_rejected() {
        let mut reg = Registry::new();
        let top = reg
            .add("R1", "top", Sil::Sil4, RequirementKind::Functional, None)
            .unwrap();
        reg.add(
            "R1.1",
            "a",
            Sil::Sil1,
            RequirementKind::Functional,
            Some(top),
        )
        .unwrap();
        reg.add(
            "R1.2",
            "b",
            Sil::Sil1,
            RequirementKind::Functional,
            Some(top),
        )
        .unwrap();
        assert!(matches!(
            reg.validate_decomposition(top),
            Err(FusaError::BadDecomposition(_))
        ));
    }

    #[test]
    fn single_child_refinement_keeps_sil() {
        let mut reg = Registry::new();
        let top = reg
            .add("R1", "top", Sil::Sil3, RequirementKind::Functional, None)
            .unwrap();
        reg.add(
            "R1.1",
            "refined",
            Sil::Sil3,
            RequirementKind::Functional,
            Some(top),
        )
        .unwrap();
        reg.validate_decomposition(top).unwrap();

        let mut reg2 = Registry::new();
        let top2 = reg2
            .add("R1", "top", Sil::Sil3, RequirementKind::Functional, None)
            .unwrap();
        reg2.add(
            "R1.1",
            "weak",
            Sil::Sil1,
            RequirementKind::Functional,
            Some(top2),
        )
        .unwrap();
        assert!(reg2.validate_decomposition(top2).is_err());
    }

    #[test]
    fn leaf_validates_trivially() {
        let mut reg = Registry::new();
        let id = reg
            .add("R1", "leaf", Sil::Sil4, RequirementKind::Timing, None)
            .unwrap();
        reg.validate_decomposition(id).unwrap();
        assert!(reg.validate_decomposition(RequirementId(9)).is_err());
    }

    #[test]
    fn histogram_counts() {
        let mut reg = Registry::new();
        reg.add("A", "", Sil::Sil1, RequirementKind::Functional, None)
            .unwrap();
        reg.add("B", "", Sil::Sil4, RequirementKind::Functional, None)
            .unwrap();
        reg.add("C", "", Sil::Sil4, RequirementKind::Timing, None)
            .unwrap();
        assert_eq!(reg.sil_histogram(), [1, 0, 0, 2]);
    }

    #[test]
    fn children_query() {
        let mut reg = Registry::new();
        let top = reg
            .add("R1", "", Sil::Sil2, RequirementKind::Functional, None)
            .unwrap();
        let c1 = reg
            .add(
                "R1.1",
                "",
                Sil::Sil1,
                RequirementKind::Functional,
                Some(top),
            )
            .unwrap();
        let c2 = reg
            .add(
                "R1.2",
                "",
                Sil::Sil1,
                RequirementKind::Functional,
                Some(top),
            )
            .unwrap();
        assert_eq!(reg.children(top), vec![c1, c2]);
        assert!(reg.children(c1).is_empty());
    }
}
