//! Property-based tests for the FUSA framework.

use proptest::prelude::*;
use safex_fusa::case::SafetyCase;
use safex_fusa::objective::{ObjectiveLedger, VerificationMethod};
use safex_fusa::requirement::{Registry, RequirementKind};
use safex_patterns::Sil;

fn sil_from(level: u8) -> Sil {
    Sil::from_level(level.clamp(1, 4)).expect("clamped to valid range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decomposition validation accepts exactly the child sets whose SIL
    /// levels sum to at least the parent's.
    #[test]
    fn decomposition_rule_is_the_sum_rule(
        parent_level in 1u8..=4,
        child_levels in prop::collection::vec(1u8..=4, 2..5),
    ) {
        let mut reg = Registry::new();
        let parent = reg
            .add("TOP", "top", sil_from(parent_level), RequirementKind::Functional, None)
            .expect("add");
        for (i, &lvl) in child_levels.iter().enumerate() {
            reg.add(
                format!("C{i}"),
                "child",
                sil_from(lvl),
                RequirementKind::Functional,
                Some(parent),
            )
            .expect("add");
        }
        let sum: u8 = child_levels.iter().map(|&l| l.clamp(1, 4)).sum();
        let valid = reg.validate_decomposition(parent).is_ok();
        prop_assert_eq!(valid, sum >= parent_level.clamp(1, 4));
    }

    /// Coverage is always in [0, 1], equals 1 exactly when every
    /// requirement has at least one objective and all are passed.
    #[test]
    fn coverage_bounded_and_exact(
        statuses in prop::collection::vec(0u8..3, 1..10),
    ) {
        let mut reg = Registry::new();
        let mut ledger = ObjectiveLedger::new();
        for (i, &status) in statuses.iter().enumerate() {
            let req = reg
                .add(format!("R{i}"), "req", Sil::Sil2, RequirementKind::Functional, None)
                .expect("add");
            // status 0 = no objective; 1 = passed; 2 = failed.
            if status > 0 {
                let obj = ledger
                    .add(&reg, format!("O{i}"), req, VerificationMethod::Test, "t")
                    .expect("obj");
                if status == 1 {
                    ledger.pass(obj, "ev").expect("pass");
                } else {
                    ledger.fail(obj, "why").expect("fail");
                }
            }
        }
        let coverage = ledger.coverage(&reg);
        prop_assert!((0.0..=1.0).contains(&coverage));
        let expected =
            statuses.iter().filter(|&&s| s == 1).count() as f64 / statuses.len() as f64;
        prop_assert!((coverage - expected).abs() < 1e-12);
    }

    /// Any tree built goal -> strategy -> goal -> solution is complete,
    /// and dropping the solutions makes it incomplete.
    #[test]
    fn case_completeness_tracks_solutions(branches in 1usize..6) {
        let mut complete = SafetyCase::new("G0", "top");
        let strategy = complete
            .add_strategy(complete.root(), "S0", "argue")
            .expect("strategy");
        let mut incomplete = SafetyCase::new("G0", "top");
        let strategy2 = incomplete
            .add_strategy(incomplete.root(), "S0", "argue")
            .expect("strategy");
        for i in 0..branches {
            let g = complete
                .add_goal(strategy, format!("G{}", i + 1), "claim")
                .expect("goal");
            complete
                .add_solution(g, format!("Sn{}", i + 1), "evidence", "ref")
                .expect("solution");
            incomplete
                .add_goal(strategy2, format!("G{}", i + 1), "claim")
                .expect("goal");
        }
        prop_assert!(complete.is_complete());
        prop_assert!(!incomplete.is_complete());
        prop_assert_eq!(incomplete.undeveloped_goals().len(), branches);
    }
}
