//! Extreme-value distributions: Gumbel (block maxima) and generalised
//! Pareto (peaks over threshold).

use crate::error::TimingError;

/// Euler-Mascheroni constant.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// A Gumbel (type-I extreme value) distribution fitted to block maxima.
///
/// MBPTA's standard model: under randomised hardware, per-run execution
/// times are light-tailed and the distribution of block maxima converges
/// to Gumbel. Fitting uses the method of moments
/// (`β = s·√6/π`, `μ = x̄ − γ·β`), which is deterministic and robust for
/// the sample sizes MBPTA campaigns use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    /// Location parameter.
    pub mu: f64,
    /// Scale parameter (positive).
    pub beta: f64,
}

impl Gumbel {
    /// Fits by the method of moments.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadSample`] for fewer than 10 maxima,
    /// non-finite values, or zero variance.
    pub fn fit(block_maxima: &[f64]) -> Result<Self, TimingError> {
        if block_maxima.len() < 10 {
            return Err(TimingError::BadSample(format!(
                "need at least 10 block maxima, got {}",
                block_maxima.len()
            )));
        }
        if block_maxima.iter().any(|x| !x.is_finite()) {
            return Err(TimingError::BadSample("non-finite maxima".into()));
        }
        let n = block_maxima.len() as f64;
        let mean = block_maxima.iter().sum::<f64>() / n;
        let var = block_maxima.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        if var <= 0.0 {
            return Err(TimingError::BadSample(
                "block maxima have zero variance (deterministic platform?)".into(),
            ));
        }
        let beta = var.sqrt() * (6.0f64).sqrt() / std::f64::consts::PI;
        let mu = mean - EULER_GAMMA * beta;
        Ok(Gumbel { mu, beta })
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.mu) / self.beta).exp()).exp()
    }

    /// Exceedance probability `P(X > x)`.
    pub fn exceedance(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The value exceeded with probability `p` (the pWCET bound at `p`).
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadConfig`] for `p` outside `(0, 1)`.
    pub fn quantile_exceedance(&self, p: f64) -> Result<f64, TimingError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(TimingError::BadConfig(format!(
                "exceedance probability {p} outside (0, 1)"
            )));
        }
        // F(x) = 1 - p  =>  x = mu - beta * ln(-ln(1 - p)).
        Ok(self.mu - self.beta * (-(1.0 - p).ln()).ln())
    }
}

/// A generalised Pareto distribution fitted to threshold exceedances
/// (peaks over threshold).
///
/// The GPD alternative lets the tail index speak for itself: a fitted
/// shape `xi` near 0 corroborates the light-tail (Gumbel-domain)
/// assumption; `xi > 0` flags a heavy tail where Gumbel bounds would be
/// optimistic. Fitting uses the method of moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gpd {
    /// The threshold `u` exceedances were measured above.
    pub threshold: f64,
    /// Shape parameter ξ.
    pub shape: f64,
    /// Scale parameter σ (positive).
    pub scale: f64,
    /// Fraction of the original sample above the threshold.
    pub exceed_fraction: f64,
}

impl Gpd {
    /// Fits a GPD to the sample's exceedances over the `quantile`-level
    /// threshold (e.g. 0.9 = top 10 % of the sample).
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadSample`] for too-small samples or too
    /// few exceedances (needs at least 10), [`TimingError::BadConfig`]
    /// for a quantile outside `(0.5, 1)`.
    pub fn fit(samples: &[f64], quantile: f64) -> Result<Self, TimingError> {
        if !(quantile > 0.5 && quantile < 1.0) {
            return Err(TimingError::BadConfig(format!(
                "POT quantile {quantile} outside (0.5, 1)"
            )));
        }
        if samples.len() < 50 {
            return Err(TimingError::BadSample(format!(
                "need at least 50 samples for POT, got {}",
                samples.len()
            )));
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(TimingError::BadSample("non-finite samples".into()));
        }
        let threshold = safex_tensor::stats::quantile(samples, quantile)
            .map_err(|e| TimingError::BadSample(e.to_string()))?;
        let excesses: Vec<f64> = samples
            .iter()
            .filter(|&&x| x > threshold)
            .map(|&x| x - threshold)
            .collect();
        if excesses.len() < 10 {
            return Err(TimingError::BadSample(format!(
                "only {} exceedances above threshold",
                excesses.len()
            )));
        }
        let n = excesses.len() as f64;
        let mean = excesses.iter().sum::<f64>() / n;
        let var = excesses.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        if var <= 0.0 || mean <= 0.0 {
            return Err(TimingError::BadSample("degenerate exceedances".into()));
        }
        // Method of moments: xi = (1 - mean^2/var)/2, sigma = mean(1+xi)... no:
        // standard MOM: xi = 0.5 * (1 - mean^2 / var), sigma = 0.5 * mean * (mean^2/var + 1).
        let ratio = mean * mean / var;
        let shape = 0.5 * (1.0 - ratio);
        let scale = 0.5 * mean * (ratio + 1.0);
        Ok(Gpd {
            threshold,
            shape,
            scale,
            exceed_fraction: excesses.len() as f64 / samples.len() as f64,
        })
    }

    /// Tail exceedance probability `P(X > x)` for `x` above the
    /// threshold, including the threshold-exceedance factor.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::OutOfSupport`] for `x` below the threshold.
    pub fn exceedance(&self, x: f64) -> Result<f64, TimingError> {
        if x < self.threshold {
            return Err(TimingError::OutOfSupport(format!(
                "x {x} below threshold {}",
                self.threshold
            )));
        }
        let z = (x - self.threshold) / self.scale;
        let tail = if self.shape.abs() < 1e-9 {
            (-z).exp()
        } else {
            let base = 1.0 + self.shape * z;
            if base <= 0.0 {
                // Finite upper endpoint exceeded: probability zero.
                return Ok(0.0);
            }
            base.powf(-1.0 / self.shape)
        };
        Ok(self.exceed_fraction * tail)
    }

    /// The value exceeded with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadConfig`] for `p` outside
    /// `(0, exceed_fraction)` — probabilities larger than the threshold
    /// exceedance rate are not in the modelled tail.
    pub fn quantile_exceedance(&self, p: f64) -> Result<f64, TimingError> {
        if !(p > 0.0 && p < self.exceed_fraction) {
            return Err(TimingError::BadConfig(format!(
                "exceedance {p} outside (0, {})",
                self.exceed_fraction
            )));
        }
        let ratio = p / self.exceed_fraction;
        let z = if self.shape.abs() < 1e-9 {
            -(ratio.ln())
        } else {
            (ratio.powf(-self.shape) - 1.0) / self.shape
        };
        Ok(self.threshold + self.scale * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_tensor::DetRng;

    /// Draws from a true Gumbel(mu, beta) via inverse transform.
    fn gumbel_sample(mu: f64, beta: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|_| {
                let u = rng.next_f64().clamp(1e-12, 1.0 - 1e-12);
                mu - beta * (-(u.ln())).ln()
            })
            .collect()
    }

    #[test]
    fn gumbel_fit_recovers_parameters() {
        let sample = gumbel_sample(1000.0, 50.0, 5000, 1);
        let g = Gumbel::fit(&sample).unwrap();
        assert!((g.mu - 1000.0).abs() < 10.0, "mu {}", g.mu);
        assert!((g.beta - 50.0).abs() < 5.0, "beta {}", g.beta);
    }

    #[test]
    fn gumbel_cdf_quantile_round_trip() {
        let g = Gumbel {
            mu: 100.0,
            beta: 10.0,
        };
        for p in [0.5, 0.1, 1e-3, 1e-6, 1e-9] {
            let x = g.quantile_exceedance(p).unwrap();
            let back = g.exceedance(x);
            assert!(
                (back - p).abs() / p < 1e-6 || (back - p).abs() < 1e-12,
                "p {p} -> x {x} -> {back}"
            );
        }
    }

    #[test]
    fn gumbel_quantiles_monotone_in_probability() {
        let g = Gumbel {
            mu: 100.0,
            beta: 10.0,
        };
        let x9 = g.quantile_exceedance(1e-9).unwrap();
        let x6 = g.quantile_exceedance(1e-6).unwrap();
        let x3 = g.quantile_exceedance(1e-3).unwrap();
        assert!(x9 > x6 && x6 > x3);
    }

    #[test]
    fn gumbel_fit_validation() {
        assert!(Gumbel::fit(&[1.0; 5]).is_err());
        assert!(Gumbel::fit(&[5.0; 20]).is_err()); // zero variance
        let mut s = gumbel_sample(0.0, 1.0, 20, 2);
        s[0] = f64::INFINITY;
        assert!(Gumbel::fit(&s).is_err());
        let g = Gumbel { mu: 0.0, beta: 1.0 };
        assert!(g.quantile_exceedance(0.0).is_err());
        assert!(g.quantile_exceedance(1.0).is_err());
    }

    #[test]
    fn gpd_fit_exponential_tail_gives_small_shape() {
        // Exponential data is GPD with xi = 0.
        let mut rng = DetRng::new(3);
        let sample: Vec<f64> = (0..5000).map(|_| 100.0 + rng.exponential(0.1)).collect();
        let g = Gpd::fit(&sample, 0.9).unwrap();
        assert!(g.shape.abs() < 0.15, "shape {}", g.shape);
        assert!((g.scale - 10.0).abs() < 2.0, "scale {}", g.scale);
        assert!((g.exceed_fraction - 0.1).abs() < 0.02);
    }

    #[test]
    fn gpd_exceedance_continuous_at_threshold() {
        let mut rng = DetRng::new(4);
        let sample: Vec<f64> = (0..2000).map(|_| rng.exponential(1.0)).collect();
        let g = Gpd::fit(&sample, 0.9).unwrap();
        let at = g.exceedance(g.threshold).unwrap();
        assert!((at - g.exceed_fraction).abs() < 1e-9);
        // Far above threshold: tiny.
        let far = g.exceedance(g.threshold + 20.0 * g.scale).unwrap();
        assert!(far < g.exceed_fraction * 1e-3);
    }

    #[test]
    fn gpd_quantile_round_trip() {
        let mut rng = DetRng::new(5);
        let sample: Vec<f64> = (0..3000).map(|_| rng.exponential(0.5)).collect();
        let g = Gpd::fit(&sample, 0.9).unwrap();
        for p in [0.05, 0.01, 1e-4, 1e-8] {
            let x = g.quantile_exceedance(p).unwrap();
            let back = g.exceedance(x).unwrap();
            assert!((back - p).abs() / p < 1e-6, "p {p} -> {back}");
        }
    }

    #[test]
    fn gpd_validation() {
        let mut rng = DetRng::new(6);
        let sample: Vec<f64> = (0..100).map(|_| rng.exponential(1.0)).collect();
        assert!(Gpd::fit(&sample, 0.4).is_err());
        assert!(Gpd::fit(&sample[..20], 0.9).is_err());
        let g = Gpd::fit(&sample, 0.8).unwrap();
        assert!(g.exceedance(g.threshold - 1.0).is_err());
        assert!(g.quantile_exceedance(0.5).is_err()); // above exceed_fraction
    }

    #[test]
    fn gpd_bounded_tail_detected() {
        // Uniform data has a finite endpoint: xi < 0.
        let mut rng = DetRng::new(7);
        let sample: Vec<f64> = (0..5000).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let g = Gpd::fit(&sample, 0.9).unwrap();
        assert!(g.shape < 0.0, "shape {}", g.shape);
        // Beyond the endpoint the exceedance is exactly zero.
        let endpoint = g.threshold - g.scale / g.shape;
        assert_eq!(g.exceedance(endpoint + 1.0).unwrap(), 0.0);
    }
}
