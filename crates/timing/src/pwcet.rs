//! pWCET curves: exceedance probability as a function of execution time.

use crate::error::TimingError;
use crate::evt::Gumbel;

/// A probabilistic worst-case execution-time curve derived from a Gumbel
/// fit on block maxima.
///
/// Semantics: the fitted distribution models the maximum of `block_size`
/// runs; [`PwcetCurve::bound_at`] converts a *per-run* exceedance target
/// into the corresponding bound via
/// `P_run(X > x) = 1 − (1 − P_block(X > x))^{1/b}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PwcetCurve {
    gumbel: Gumbel,
    block_size: usize,
}

impl PwcetCurve {
    /// Wraps a fitted Gumbel with its block size.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadConfig`] for a zero block size or a
    /// non-positive scale.
    pub fn new(gumbel: Gumbel, block_size: usize) -> Result<Self, TimingError> {
        if block_size == 0 {
            return Err(TimingError::BadConfig("block size must be non-zero".into()));
        }
        if !(gumbel.beta > 0.0 && gumbel.beta.is_finite() && gumbel.mu.is_finite()) {
            return Err(TimingError::BadConfig(
                "gumbel parameters must be finite with positive scale".into(),
            ));
        }
        Ok(PwcetCurve { gumbel, block_size })
    }

    /// The underlying Gumbel fit.
    pub fn gumbel(&self) -> &Gumbel {
        &self.gumbel
    }

    /// The block size the fit was made at.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Per-run exceedance probability at execution time `x`.
    pub fn exceedance(&self, x: f64) -> f64 {
        let block_exceed = self.gumbel.exceedance(x);
        // P_run = 1 - (1 - p_block)^(1/b); for tiny p this is p/b.
        if block_exceed < 1e-12 {
            block_exceed / self.block_size as f64
        } else {
            1.0 - (1.0 - block_exceed).powf(1.0 / self.block_size as f64)
        }
    }

    /// The pWCET bound: the execution time whose per-run exceedance
    /// probability is `p` (e.g. `1e-12`).
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadConfig`] for `p` outside `(0, 1)`.
    pub fn bound_at(&self, p: f64) -> Result<f64, TimingError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(TimingError::BadConfig(format!(
                "exceedance probability {p} outside (0, 1)"
            )));
        }
        // Convert the per-run target to the block-level target.
        let block_p = 1.0 - (1.0 - p).powf(self.block_size as f64);
        // Guard against underflow for extreme p.
        let block_p = if block_p <= 0.0 {
            p * self.block_size as f64
        } else {
            block_p
        };
        self.gumbel.quantile_exceedance(block_p.min(1.0 - 1e-12))
    }

    /// Samples the curve at log-spaced exceedance probabilities from
    /// `10^-1` down to `10^-max_exponent`, returning `(probability,
    /// bound)` pairs — the series a pWCET figure plots.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadConfig`] for a zero exponent range.
    pub fn curve_points(&self, max_exponent: u32) -> Result<Vec<(f64, f64)>, TimingError> {
        if max_exponent == 0 {
            return Err(TimingError::BadConfig("max exponent must be >= 1".into()));
        }
        let mut points = Vec::with_capacity(max_exponent as usize);
        for e in 1..=max_exponent {
            let p = 10f64.powi(-(e as i32));
            points.push((p, self.bound_at(p)?));
        }
        Ok(points)
    }

    /// Checks that the analytical curve upper-bounds the empirical sample
    /// tail from the `check_from` quantile upward (the standard MBPTA
    /// sanity check that the fit is conservative where it matters).
    ///
    /// Order statistics whose empirical exceedance is below
    /// `min_exceedance` are skipped: at depths of a handful of draws the
    /// empirical CCDF is a single-sample estimate with huge variance, so
    /// comparing the curve against it is noise, not validation. A typical
    /// choice is `10 / n`.
    ///
    /// Returns the worst (most negative) margin `bound − empirical` in
    /// time units; a non-negative value means the curve never dips below
    /// the (statistically meaningful) empirical tail.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadSample`] on an empty sample or
    /// [`TimingError::BadConfig`] on a bad quantile.
    pub fn tail_margin(
        &self,
        samples: &[f64],
        check_from: f64,
        min_exceedance: f64,
    ) -> Result<f64, TimingError> {
        if samples.is_empty() {
            return Err(TimingError::BadSample("empty sample".into()));
        }
        if !(0.0..1.0).contains(&check_from) {
            return Err(TimingError::BadConfig(format!(
                "check_from {check_from} outside [0, 1)"
            )));
        }
        if !(0.0..1.0).contains(&min_exceedance) {
            return Err(TimingError::BadConfig(format!(
                "min_exceedance {min_exceedance} outside [0, 1)"
            )));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        let start = ((n as f64) * check_from) as usize;
        let mut worst = f64::INFINITY;
        for (i, &x) in sorted.iter().enumerate().skip(start) {
            // Empirical per-run exceedance of this order statistic.
            let p_emp = (n - i) as f64 / n as f64;
            if p_emp <= 0.0 || p_emp < min_exceedance {
                continue;
            }
            let bound = self.bound_at(p_emp.min(1.0 - 1e-9))?;
            worst = worst.min(bound - x);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_tensor::DetRng;

    fn curve() -> PwcetCurve {
        PwcetCurve::new(
            Gumbel {
                mu: 10_000.0,
                beta: 100.0,
            },
            50,
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        let g = Gumbel { mu: 0.0, beta: 1.0 };
        assert!(PwcetCurve::new(g, 0).is_err());
        let bad = Gumbel {
            mu: 0.0,
            beta: -1.0,
        };
        assert!(PwcetCurve::new(bad, 10).is_err());
    }

    #[test]
    fn bounds_grow_as_probability_shrinks() {
        let c = curve();
        let b3 = c.bound_at(1e-3).unwrap();
        let b6 = c.bound_at(1e-6).unwrap();
        let b12 = c.bound_at(1e-12).unwrap();
        assert!(b3 < b6 && b6 < b12);
        // Gumbel tail: each 10x in probability adds ~beta*ln(10) cycles.
        let slope = (b12 - b6) / 6.0;
        assert!((slope - 100.0 * 10f64.ln()).abs() < 20.0, "slope {slope}");
    }

    #[test]
    fn exceedance_inverts_bound() {
        let c = curve();
        for p in [1e-3, 1e-6, 1e-9] {
            let x = c.bound_at(p).unwrap();
            let back = c.exceedance(x);
            assert!((back - p).abs() / p < 1e-3, "p {p} -> {back}");
        }
    }

    #[test]
    fn curve_points_log_spaced() {
        let c = curve();
        let pts = c.curve_points(12).unwrap();
        assert_eq!(pts.len(), 12);
        assert_eq!(pts[0].0, 0.1);
        assert_eq!(pts[11].0, 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].1 > w[0].1, "bounds must grow down the curve");
        }
        assert!(c.curve_points(0).is_err());
    }

    #[test]
    fn tail_margin_nonnegative_for_true_model() {
        // Sample truly Gumbel-distributed block maxima, fit, and check
        // the fitted curve covers the empirical tail.
        let mut rng = DetRng::new(8);
        let block = 50usize;
        let mut maxima = Vec::new();
        for _ in 0..1000 {
            let m = (0..block)
                .map(|_| 10_000.0 + rng.exponential(0.01))
                .fold(f64::NEG_INFINITY, f64::max);
            maxima.push(m);
        }
        let g = Gumbel::fit(&maxima).unwrap();
        let c = PwcetCurve::new(g, block).unwrap();
        // Per-run samples for the empirical comparison. The extreme order
        // statistics of 2000 draws have std ~ beta (= 100 cycles), so the
        // coverage tolerance is a few beta.
        let runs: Vec<f64> = (0..2000)
            .map(|_| 10_000.0 + rng.exponential(0.01))
            .collect();
        // Skip depths below 10 draws (single-sample noise).
        let margin = c.tail_margin(&runs, 0.9, 10.0 / 2000.0).unwrap();
        assert!(
            margin > -100.0,
            "fitted curve should approximately cover the tail: margin {margin}"
        );
    }

    #[test]
    fn tail_margin_validation() {
        let c = curve();
        assert!(c.tail_margin(&[], 0.9, 0.0).is_err());
        assert!(c.tail_margin(&[1.0], 1.0, 0.0).is_err());
        assert!(c.tail_margin(&[1.0], 0.5, 1.5).is_err());
    }

    #[test]
    fn accessors() {
        let c = curve();
        assert_eq!(c.block_size(), 50);
        assert_eq!(c.gumbel().mu, 10_000.0);
    }

    #[test]
    fn bound_at_validation() {
        let c = curve();
        assert!(c.bound_at(0.0).is_err());
        assert!(c.bound_at(1.0).is_err());
    }
}
