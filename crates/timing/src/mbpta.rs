//! The end-to-end MBPTA protocol.

use safex_tensor::stats;

use crate::error::TimingError;
use crate::evt::{Gpd, Gumbel};
use crate::iid::{check_iid, IidReport};
use crate::pwcet::PwcetCurve;

/// Configuration for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MbptaConfig {
    /// Block size for block-maxima extraction.
    pub block_size: usize,
    /// Significance level for the i.i.d. admissibility tests.
    pub alpha: f64,
    /// Whether a failed admissibility battery aborts the analysis
    /// (`true`, the certifiable protocol) or merely flags the result
    /// (`false`, exploratory mode).
    pub strict: bool,
}

impl Default for MbptaConfig {
    fn default() -> Self {
        MbptaConfig {
            block_size: 20,
            alpha: 0.05,
            strict: false,
        }
    }
}

impl MbptaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadConfig`] for a block size below 2 or an
    /// alpha outside `(0, 0.5)`.
    pub fn validate(&self) -> Result<(), TimingError> {
        if self.block_size < 2 {
            return Err(TimingError::BadConfig(
                "block size must be at least 2".into(),
            ));
        }
        if !(self.alpha > 0.0 && self.alpha < 0.5) {
            return Err(TimingError::BadConfig(format!(
                "alpha {} outside (0, 0.5)",
                self.alpha
            )));
        }
        Ok(())
    }
}

/// The complete result of one MBPTA run.
#[derive(Debug, Clone, PartialEq)]
pub struct MbptaResult {
    /// Admissibility test outcomes.
    pub iid: IidReport,
    /// The fitted Gumbel (block maxima).
    pub gumbel: Gumbel,
    /// The corroborating GPD fit on the top decile (`None` if the POT fit
    /// was not possible, e.g. heavy ties).
    pub gpd: Option<Gpd>,
    /// The pWCET curve.
    pub pwcet: PwcetCurve,
    /// Summary statistics of the raw sample.
    pub sample_summary: stats::Summary,
    /// Number of block maxima used in the fit.
    pub blocks: usize,
}

impl MbptaResult {
    /// Whether the sample passed all admissibility tests.
    pub fn admissible(&self) -> bool {
        self.iid.admissible()
    }

    /// High-water mark observed in the measurements (HWM), the naive
    /// industry baseline the pWCET bound should exceed.
    pub fn high_water_mark(&self) -> f64 {
        self.sample_summary.max
    }
}

/// Runs the full protocol: admissibility tests, block-maxima extraction,
/// Gumbel fit, corroborating GPD fit, pWCET curve construction.
///
/// # Errors
///
/// Returns [`TimingError::BadSample`] if the sample is too small for the
/// configured block size (needs at least `10 * block_size` runs) or
/// degenerate, [`TimingError::BadConfig`] on a bad configuration, and —
/// in strict mode — [`TimingError::BadSample`] when admissibility fails.
pub fn analyze(samples: &[f64], config: &MbptaConfig) -> Result<MbptaResult, TimingError> {
    config.validate()?;
    if samples.len() < 10 * config.block_size {
        return Err(TimingError::BadSample(format!(
            "need at least {} samples for block size {}, got {}",
            10 * config.block_size,
            config.block_size,
            samples.len()
        )));
    }
    let iid = check_iid(samples, config.alpha)?;
    if config.strict && !iid.admissible() {
        return Err(TimingError::BadSample(
            "sample failed i.i.d. admissibility tests (strict mode)".into(),
        ));
    }
    let maxima: Vec<f64> = samples
        .chunks_exact(config.block_size)
        .map(|block| block.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        .collect();
    let gumbel = Gumbel::fit(&maxima)?;
    let gpd = Gpd::fit(samples, 0.9).ok();
    let pwcet = PwcetCurve::new(gumbel, config.block_size)?;
    let sample_summary =
        stats::summary(samples).map_err(|e| TimingError::BadSample(e.to_string()))?;
    Ok(MbptaResult {
        iid,
        gumbel,
        gpd,
        pwcet,
        sample_summary,
        blocks: maxima.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_tensor::DetRng;

    fn randomized_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|_| 10_000.0 + rng.exponential(0.02) + rng.gaussian(0.0, 20.0).abs())
            .collect()
    }

    #[test]
    fn full_protocol_on_good_sample() {
        let samples = randomized_sample(1000, 1);
        let result = analyze(&samples, &MbptaConfig::default()).unwrap();
        assert!(result.admissible());
        assert_eq!(result.blocks, 50);
        // The pWCET bound at 1e-9 must clear the high-water mark.
        let bound = result.pwcet.bound_at(1e-9).unwrap();
        assert!(
            bound > result.high_water_mark(),
            "bound {bound} vs HWM {}",
            result.high_water_mark()
        );
        // The GPD corroboration fit exists and is light-tailed.
        let gpd = result.gpd.expect("gpd fit");
        assert!(gpd.shape < 0.3, "shape {}", gpd.shape);
    }

    #[test]
    fn strict_mode_rejects_trending_sample() {
        let samples: Vec<f64> = (0..1000).map(|i| 10_000.0 + i as f64).collect();
        let config = MbptaConfig {
            strict: true,
            ..Default::default()
        };
        assert!(matches!(
            analyze(&samples, &config),
            Err(TimingError::BadSample(_))
        ));
        // Non-strict mode still analyses but flags inadmissibility.
        let lax = MbptaConfig::default();
        let result = analyze(&samples, &lax).unwrap();
        assert!(!result.admissible());
    }

    #[test]
    fn sample_size_guard() {
        let samples = randomized_sample(100, 2);
        assert!(analyze(&samples, &MbptaConfig::default()).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(MbptaConfig {
            block_size: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MbptaConfig {
            alpha: 0.7,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deterministic_result() {
        let samples = randomized_sample(600, 3);
        let a = analyze(&samples, &MbptaConfig::default()).unwrap();
        let b = analyze(&samples, &MbptaConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bound_tightens_with_block_size() {
        // Larger blocks push the fitted distribution toward the tail;
        // the per-run bound should stay in the same ballpark (within a
        // few scale units), demonstrating consistency of the conversion.
        let samples = randomized_sample(2000, 4);
        let small = analyze(
            &samples,
            &MbptaConfig {
                block_size: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let large = analyze(
            &samples,
            &MbptaConfig {
                block_size: 50,
                ..Default::default()
            },
        )
        .unwrap();
        let b_small = small.pwcet.bound_at(1e-9).unwrap();
        let b_large = large.pwcet.bound_at(1e-9).unwrap();
        let rel = (b_small - b_large).abs() / b_small;
        assert!(rel < 0.2, "bounds {b_small} vs {b_large} diverge ({rel})");
    }
}
