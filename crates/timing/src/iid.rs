//! Independence and identical-distribution admissibility tests.
//!
//! MBPTA is only sound on samples that behave as i.i.d. draws; the
//! industrial protocol runs exactly these checks before any EVT fit. All
//! tests are two-sided at a configurable significance level and are pure
//! functions of the sample — no randomness, identical verdicts every run.

use crate::error::TimingError;

/// The outcome of one statistical test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestOutcome {
    /// The test statistic value.
    pub statistic: f64,
    /// The critical value the statistic was compared against.
    pub critical: f64,
    /// Whether the sample passed (failed to reject the null hypothesis).
    pub passed: bool,
}

/// Wald-Wolfowitz runs test for randomness around the median.
///
/// Counts maximal runs of above/below-median values; too few runs means
/// trending, too many means oscillation. Normal approximation, two-sided.
///
/// # Errors
///
/// Returns [`TimingError::BadSample`] for fewer than 20 samples,
/// non-finite values, or a degenerate (near-constant) sample, and
/// [`TimingError::BadConfig`] for a silly alpha.
pub fn runs_test(samples: &[f64], alpha: f64) -> Result<TestOutcome, TimingError> {
    validate(samples, 20)?;
    let z_crit = z_quantile_two_sided(alpha)?;
    let median = median_of(samples);
    // Classify, dropping exact-median points (standard practice).
    let signs: Vec<bool> = samples
        .iter()
        .filter(|&&x| x != median)
        .map(|&x| x > median)
        .collect();
    let n1 = signs.iter().filter(|&&s| s).count() as f64;
    let n2 = signs.iter().filter(|&&s| !s).count() as f64;
    if n1 < 5.0 || n2 < 5.0 {
        return Err(TimingError::BadSample(
            "runs test needs at least 5 values on each side of the median".into(),
        ));
    }
    let mut runs = 1u64;
    for w in signs.windows(2) {
        if w[0] != w[1] {
            runs += 1;
        }
    }
    let n = n1 + n2;
    let expected = 2.0 * n1 * n2 / n + 1.0;
    let variance = 2.0 * n1 * n2 * (2.0 * n1 * n2 - n) / (n * n * (n - 1.0));
    let z = (runs as f64 - expected) / variance.sqrt();
    Ok(TestOutcome {
        statistic: z,
        critical: z_crit,
        passed: z.abs() <= z_crit,
    })
}

/// Ljung-Box test for autocorrelation up to the given lag.
///
/// `Q = n(n+2) Σ r_k² / (n-k)` compared to the `1-alpha` chi-square
/// quantile with `lags` degrees of freedom (Wilson-Hilferty
/// approximation).
///
/// # Errors
///
/// Returns [`TimingError::BadSample`] for samples shorter than
/// `3 * lags` or degenerate samples, [`TimingError::BadConfig`] for zero
/// lags or bad alpha.
pub fn ljung_box(samples: &[f64], lags: usize, alpha: f64) -> Result<TestOutcome, TimingError> {
    if lags == 0 {
        return Err(TimingError::BadConfig("lags must be non-zero".into()));
    }
    validate(samples, 3 * lags.max(7))?;
    check_alpha(alpha)?;
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum();
    if var <= 0.0 {
        return Err(TimingError::BadSample("constant sample".into()));
    }
    let mut q = 0.0f64;
    for k in 1..=lags {
        let mut acov = 0.0f64;
        for i in k..samples.len() {
            acov += (samples[i] - mean) * (samples[i - k] - mean);
        }
        let r = acov / var;
        q += r * r / (n - k as f64);
    }
    q *= n * (n + 2.0);
    let critical = chi_square_quantile(lags as f64, 1.0 - alpha);
    Ok(TestOutcome {
        statistic: q,
        critical,
        passed: q <= critical,
    })
}

/// Two-sample Kolmogorov-Smirnov test between the first and second half
/// of the sample — the standard "identically distributed over time"
/// check.
///
/// # Errors
///
/// Returns [`TimingError::BadSample`] for fewer than 40 samples or
/// non-finite values, [`TimingError::BadConfig`] for bad alpha.
pub fn ks_two_halves(samples: &[f64], alpha: f64) -> Result<TestOutcome, TimingError> {
    validate(samples, 40)?;
    check_alpha(alpha)?;
    let mid = samples.len() / 2;
    let mut a: Vec<f64> = samples[..mid].to_vec();
    let mut b: Vec<f64> = samples[mid..].to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    // Sweep both ECDFs.
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < a.len() && j < b.len() {
        let x = a[i].min(b[j]);
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        d = d.max((fa - fb).abs());
    }
    let n = a.len() as f64;
    let m = b.len() as f64;
    // c(alpha) = sqrt(-ln(alpha/2)/2).
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    let critical = c * ((n + m) / (n * m)).sqrt();
    Ok(TestOutcome {
        statistic: d,
        critical,
        passed: d <= critical,
    })
}

/// Combined admissibility report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IidReport {
    /// Runs test outcome.
    pub runs: TestOutcome,
    /// Ljung-Box outcome (lag 10 by default in [`check_iid`]).
    pub ljung_box: TestOutcome,
    /// Two-half KS outcome.
    pub ks: TestOutcome,
}

impl IidReport {
    /// Whether all three tests passed.
    pub fn admissible(&self) -> bool {
        self.runs.passed && self.ljung_box.passed && self.ks.passed
    }
}

/// Runs the full admissibility battery at the given significance level
/// (Ljung-Box at lag 10).
///
/// # Errors
///
/// Propagates individual test failures.
pub fn check_iid(samples: &[f64], alpha: f64) -> Result<IidReport, TimingError> {
    Ok(IidReport {
        runs: runs_test(samples, alpha)?,
        ljung_box: ljung_box(samples, 10, alpha)?,
        ks: ks_two_halves(samples, alpha)?,
    })
}

fn validate(samples: &[f64], min: usize) -> Result<(), TimingError> {
    if samples.len() < min {
        return Err(TimingError::BadSample(format!(
            "need at least {min} samples, got {}",
            samples.len()
        )));
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(TimingError::BadSample("non-finite samples".into()));
    }
    Ok(())
}

fn check_alpha(alpha: f64) -> Result<(), TimingError> {
    if !(alpha > 0.0 && alpha < 0.5) {
        return Err(TimingError::BadConfig(format!(
            "alpha {alpha} outside (0, 0.5)"
        )));
    }
    Ok(())
}

fn median_of(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn z_quantile_two_sided(alpha: f64) -> Result<f64, TimingError> {
    check_alpha(alpha)?;
    // Acklam-style rational approximation of the standard normal
    // quantile at 1 - alpha/2 (accurate to ~1e-4, ample for testing).
    Ok(normal_quantile(1.0 - alpha / 2.0))
}

/// Standard normal quantile via the Beasley-Springer-Moro approximation.
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let r = if y > 0.0 { 1.0 - p } else { p };
        let s = (-(r.ln())).ln();
        let mut x = C[0];
        let mut term = 1.0;
        for &c in &C[1..] {
            term *= s;
            x += c * term;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

/// Chi-square quantile via the Wilson-Hilferty approximation.
fn chi_square_quantile(dof: f64, p: f64) -> f64 {
    let z = normal_quantile(p);
    let a = 2.0 / (9.0 * dof);
    dof * (1.0 - a + z * a.sqrt()).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_tensor::DetRng;

    fn iid_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::new(seed);
        (0..n).map(|_| rng.gaussian(100.0, 10.0)).collect()
    }

    #[test]
    fn iid_sample_passes_all() {
        let s = iid_sample(500, 1);
        let report = check_iid(&s, 0.05).unwrap();
        assert!(report.runs.passed, "{:?}", report.runs);
        assert!(report.ljung_box.passed, "{:?}", report.ljung_box);
        assert!(report.ks.passed, "{:?}", report.ks);
        assert!(report.admissible());
    }

    #[test]
    fn trending_sample_fails_runs_or_ks() {
        // Strong upward trend: first half systematically below second.
        let s: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let report = check_iid(&s, 0.05).unwrap();
        assert!(!report.admissible());
        assert!(!report.runs.passed || !report.ks.passed);
    }

    #[test]
    fn autocorrelated_sample_fails_ljung_box() {
        // AR(1) with strong correlation.
        let mut rng = DetRng::new(2);
        let mut s = vec![0.0f64; 500];
        for i in 1..500 {
            s[i] = 0.9 * s[i - 1] + rng.gaussian(0.0, 1.0);
        }
        let out = ljung_box(&s, 10, 0.05).unwrap();
        assert!(!out.passed, "Q = {}", out.statistic);
    }

    #[test]
    fn oscillating_sample_fails_runs() {
        let s: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        let out = runs_test(&s, 0.05).unwrap();
        assert!(!out.passed, "z = {}", out.statistic);
    }

    #[test]
    fn distribution_shift_fails_ks() {
        let mut rng = DetRng::new(3);
        let mut s: Vec<f64> = (0..200).map(|_| rng.gaussian(100.0, 5.0)).collect();
        s.extend((0..200).map(|_| rng.gaussian(130.0, 5.0)));
        let out = ks_two_halves(&s, 0.05).unwrap();
        assert!(!out.passed, "D = {}", out.statistic);
    }

    #[test]
    fn validation_errors() {
        assert!(runs_test(&[1.0; 5], 0.05).is_err());
        assert!(runs_test(&iid_sample(100, 4), 0.9).is_err());
        assert!(ljung_box(&iid_sample(100, 5), 0, 0.05).is_err());
        assert!(ks_two_halves(&[1.0; 10], 0.05).is_err());
        let mut bad = iid_sample(100, 6);
        bad[3] = f64::NAN;
        assert!(runs_test(&bad, 0.05).is_err());
        // Constant sample: degenerate for runs (no values off median).
        assert!(runs_test(&[5.0; 100], 0.05).is_err());
        assert!(ljung_box(&[5.0; 100], 5, 0.05).is_err());
    }

    #[test]
    fn normal_quantile_sanity() {
        assert!((normal_quantile(0.975) - 1.9600).abs() < 0.002);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.9600).abs() < 0.002);
    }

    #[test]
    fn chi_square_quantile_sanity() {
        // chi2(10 dof, 0.95) = 18.307
        let q = chi_square_quantile(10.0, 0.95);
        assert!((q - 18.307).abs() < 0.3, "{q}");
        // chi2(1, 0.95) = 3.841
        let q = chi_square_quantile(1.0, 0.95);
        assert!((q - 3.841).abs() < 0.4, "{q}");
    }

    #[test]
    fn deterministic_verdicts() {
        let s = iid_sample(300, 7);
        assert_eq!(check_iid(&s, 0.05).unwrap(), check_iid(&s, 0.05).unwrap());
    }
}
