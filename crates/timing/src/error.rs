//! Error type for timing analysis.

use std::error::Error;
use std::fmt;

/// Errors produced by i.i.d. tests, EVT fitting, and pWCET queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimingError {
    /// The sample is unusable (too small, non-finite, degenerate).
    BadSample(String),
    /// A configuration/parameter is invalid.
    BadConfig(String),
    /// The requested quantity is outside the fitted model's support.
    OutOfSupport(String),
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::BadSample(msg) => write!(f, "bad timing sample: {msg}"),
            TimingError::BadConfig(msg) => write!(f, "bad timing config: {msg}"),
            TimingError::OutOfSupport(msg) => write!(f, "out of model support: {msg}"),
        }
    }
}

impl Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(TimingError::BadSample("n=2".into())
            .to_string()
            .contains("n=2"));
    }
}
