#![forbid(unsafe_code)]
//! # safex-timing
//!
//! Measurement-Based Probabilistic Timing Analysis (MBPTA): the analysis
//! half of pillar 4 of the SAFEXPLAIN paper — *"probabilistic timing
//! analyses, to handle the remaining non-determinism"*.
//!
//! MBPTA (Cazorla, Abella et al.) bounds the execution time of software on
//! time-randomised hardware:
//!
//! 1. Collect execution-time measurements (here: from `safex-platform`).
//! 2. Check the sample is **admissible**: independent and identically
//!    distributed ([`iid`] — runs test, Ljung-Box, two-sample
//!    Kolmogorov-Smirnov).
//! 3. Fit an **extreme-value distribution** to block maxima ([`evt`] —
//!    Gumbel, plus a peaks-over-threshold GPD alternative).
//! 4. Read the **pWCET curve** ([`pwcet`]): the execution-time bound at
//!    any target exceedance probability (e.g. 10⁻¹² per activation), and
//!    verify the fit upper-bounds the empirical tail.
//!
//! The whole protocol is packaged in [`mbpta::analyze`].
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), safex_timing::TimingError> {
//! use safex_timing::mbpta::{analyze, MbptaConfig};
//! use safex_tensor::DetRng;
//!
//! // A well-behaved synthetic measurement campaign.
//! let mut rng = DetRng::new(9);
//! let samples: Vec<f64> = (0..600).map(|_| 10_000.0 + rng.gaussian(0.0, 50.0).abs() * 10.0).collect();
//! let result = analyze(&samples, &MbptaConfig::default())?;
//! let bound = result.pwcet.bound_at(1e-9)?;
//! assert!(bound > 10_000.0);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod evt;
pub mod iid;
pub mod mbpta;
pub mod pwcet;

pub use error::TimingError;
pub use evt::{Gpd, Gumbel};
pub use pwcet::PwcetCurve;
