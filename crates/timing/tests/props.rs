//! Property-based tests for the timing analysis.

use proptest::prelude::*;
use safex_tensor::DetRng;
use safex_timing::evt::{Gpd, Gumbel};
use safex_timing::iid::check_iid;
use safex_timing::mbpta::{analyze, MbptaConfig};
use safex_timing::pwcet::PwcetCurve;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gumbel exceedance is monotone decreasing in x for any parameters.
    #[test]
    fn gumbel_exceedance_monotone(
        mu in -1000.0f64..1000.0,
        beta in 0.1f64..100.0,
        x1 in -2000.0f64..2000.0,
        dx in 0.1f64..500.0,
    ) {
        let g = Gumbel { mu, beta };
        prop_assert!(g.exceedance(x1) >= g.exceedance(x1 + dx) - 1e-15);
    }

    /// Gumbel quantile/exceedance are inverse for any parameters.
    #[test]
    fn gumbel_inverse_pair(
        mu in -1000.0f64..1000.0,
        beta in 0.1f64..100.0,
        exp in 1u32..12,
    ) {
        let g = Gumbel { mu, beta };
        let p = 10f64.powi(-(exp as i32));
        let x = g.quantile_exceedance(p).expect("quantile");
        let back = g.exceedance(x);
        prop_assert!((back - p).abs() / p < 1e-6, "p {p} -> {back}");
    }

    /// Fitting recovers Gumbel parameters within tolerance for any true
    /// parameters (inverse-transform sampling).
    #[test]
    fn gumbel_fit_consistent(
        seed in any::<u64>(),
        mu in 0.0f64..10_000.0,
        beta in 1.0f64..200.0,
    ) {
        let mut rng = DetRng::new(seed);
        let sample: Vec<f64> = (0..2000).map(|_| {
            let u = rng.next_f64().clamp(1e-12, 1.0 - 1e-12);
            mu - beta * (-(u.ln())).ln()
        }).collect();
        let g = Gumbel::fit(&sample).expect("fit");
        prop_assert!((g.mu - mu).abs() < beta * 0.5, "mu {} vs {mu}", g.mu);
        prop_assert!((g.beta - beta).abs() < beta * 0.3, "beta {} vs {beta}", g.beta);
    }

    /// GPD tail exceedance is monotone decreasing above the threshold.
    #[test]
    fn gpd_exceedance_monotone(seed in any::<u64>(), rate in 0.01f64..2.0) {
        let mut rng = DetRng::new(seed);
        let sample: Vec<f64> = (0..1000).map(|_| rng.exponential(rate)).collect();
        let g = Gpd::fit(&sample, 0.9).expect("fit");
        let mut prev = g.exceedance(g.threshold).expect("exceedance");
        for step in 1..20 {
            let x = g.threshold + step as f64 * g.scale;
            let p = g.exceedance(x).expect("exceedance");
            prop_assert!(p <= prev + 1e-15);
            prev = p;
        }
    }

    /// pWCET bounds are monotone in the exceedance target for any fitted
    /// curve.
    #[test]
    fn pwcet_bounds_monotone(
        mu in 100.0f64..100_000.0,
        beta in 0.5f64..500.0,
        block in 2usize..100,
    ) {
        let curve = PwcetCurve::new(Gumbel { mu, beta }, block).expect("curve");
        let mut prev = f64::NEG_INFINITY;
        for exp in 1..=15 {
            let bound = curve.bound_at(10f64.powi(-exp)).expect("bound");
            prop_assert!(bound > prev);
            prev = bound;
        }
    }

    /// The full protocol succeeds on any well-behaved randomised sample
    /// and its bound clears the sample maximum.
    #[test]
    fn protocol_bound_clears_hwm(seed in any::<u64>(), scale in 1.0f64..100.0) {
        let mut rng = DetRng::new(seed);
        let samples: Vec<f64> = (0..400)
            .map(|_| 1000.0 + rng.exponential(1.0 / scale))
            .collect();
        let result = analyze(&samples, &MbptaConfig::default()).expect("analyze");
        let hwm = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bound = result.pwcet.bound_at(1e-12).expect("bound");
        prop_assert!(bound > hwm, "bound {bound} vs HWM {hwm}");
    }

    /// The i.i.d. battery passes genuinely i.i.d. data for most seeds.
    /// (Statistical tests have a false-positive rate by design, so the
    /// property is checked in aggregate over a fixed ensemble of seeds.)
    #[test]
    fn iid_battery_calibrated(base_seed in 0u64..10_000) {
        let mut passes = 0usize;
        let ensemble = 10;
        for i in 0..ensemble {
            let mut rng = DetRng::new(base_seed.wrapping_mul(31).wrapping_add(i));
            let samples: Vec<f64> = (0..300).map(|_| rng.gaussian(100.0, 10.0)).collect();
            if check_iid(&samples, 0.05).expect("check").admissible() {
                passes += 1;
            }
        }
        // With three tests at alpha 0.05, per-sample pass probability is
        // ~0.86+; 10 trials passing fewer than 5 would be extreme.
        prop_assert!(passes >= 5, "only {passes}/{ensemble} passed");
    }
}
