//! The dense `f32` tensor type.

use std::fmt;

use crate::error::TensorError;
use crate::rng::DetRng;
use crate::shape::Shape;

/// A dense, row-major, heap-backed `f32` tensor.
///
/// `Tensor` is the exchange type of the SAFEXPLAIN stack: scenario
/// generators produce them, the DL engine consumes them, explainers perturb
/// them. All arithmetic is deterministic (fixed left-to-right evaluation
/// order) and all fallible operations return [`TensorError`] rather than
/// panicking.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), safex_tensor::TensorError> {
/// use safex_tensor::{Shape, Tensor};
///
/// let t = Tensor::zeros(Shape::matrix(2, 2));
/// let u = t.map(|x| x + 1.0);
/// assert_eq!(u.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and a data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// `shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a 1-D tensor from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] if `data` is empty.
    pub fn from_slice_1d(data: &[f32]) -> Result<Self, TensorError> {
        if data.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        Ok(Tensor {
            shape: Shape::vector(data.len()),
            data: data.to_vec(),
        })
    }

    /// Creates a tensor of i.i.d. uniform values in `[lo, hi)` drawn from a
    /// deterministic generator.
    ///
    /// # Panics
    ///
    /// Panics if the range bounds are invalid (see [`DetRng::range_f64`]).
    pub fn uniform(shape: Shape, lo: f32, hi: f32, rng: &mut DetRng) -> Self {
        let data = (0..shape.len())
            .map(|_| rng.range_f64(lo as f64, hi as f64) as f32)
            .collect();
        Tensor { shape, data }
    }

    /// Creates a tensor of i.i.d. normal values.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative (see [`DetRng::gaussian`]).
    pub fn gaussian(shape: Shape, mean: f32, std_dev: f32, rng: &mut DetRng) -> Self {
        let data = (0..shape.len())
            .map(|_| rng.gaussian(mean as f64, std_dev as f64) as f32)
            .collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true; shapes with zero
    /// dimensions cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on a bad index.
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        let flat = self.shape.flat_index(index)?;
        Ok(self.data[flat])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on a bad index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor, TensorError> {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Applies a function to every element, producing a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise combination with an arbitrary function.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with<F: FnMut(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        mut f: F,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
            });
        }
        Ok(Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Sum of all elements, accumulated left-to-right in `f64`.
    ///
    /// The widened accumulator plus fixed order makes the result
    /// deterministic and accurate independent of element count.
    pub fn sum(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, &x| acc + x as f64)
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.sum() / self.data.len() as f64
    }

    /// Index and value of the maximum element (first occurrence wins,
    /// making the result deterministic under ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] if the tensor is empty.
    pub fn argmax(&self) -> Result<(usize, f32), TensorError> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                None => best = Some((i, v)),
                Some((_, bv)) if v > bv => best = Some((i, v)),
                _ => {}
            }
        }
        best.ok_or(TensorError::EmptyInput)
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// Inner loops accumulate in `f64`, left-to-right, for deterministic
    /// and well-conditioned results.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulIncompatible`] unless `self` is
    /// `m x k` and `other` is `k x n`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let incompat = || TensorError::MatmulIncompatible {
            left: self.shape,
            right: other.shape,
        };
        if self.shape.rank() != 2 || other.shape.rank() != 2 {
            return Err(incompat());
        }
        let (m, k1) = (self.shape.dims()[0], self.shape.dims()[1]);
        let (k2, n) = (other.shape.dims()[0], other.shape.dims()[1]);
        if k1 != k2 {
            return Err(incompat());
        }
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for k in 0..k1 {
                    acc += self.data[i * k1 + k] as f64 * other.data[k * n + j] as f64;
                }
                out[i * n + j] = acc as f32;
            }
        }
        Tensor::from_vec(Shape::matrix(m, n), out)
    }

    /// Dot product of two equal-length tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f64, TensorError> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |acc, (&a, &b)| acc + a as f64 * b as f64))
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm_l2(&self) -> f64 {
        self.data
            .iter()
            .fold(0.0f64, |acc, &x| acc + (x as f64) * (x as f64))
            .sqrt()
    }

    /// Maximum absolute difference between two tensors of equal shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f64, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |acc, (&a, &b)| acc.max((a as f64 - b as f64).abs())))
    }

    /// Whether every element is finite (no NaN or infinity).
    ///
    /// The runtime supervisors use this as a cheap plausibility check on
    /// activations.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}]", self.shape)?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, ... {:.4}] ({} elements)",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2x2(vals: [f32; 4]) -> Tensor {
        Tensor::from_vec(Shape::matrix(2, 2), vals.to_vec()).unwrap()
    }

    #[test]
    fn from_vec_checks_length() {
        let err = Tensor::from_vec(Shape::matrix(2, 3), vec![1.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn zeros_and_full() {
        assert!(Tensor::zeros(Shape::vector(4))
            .as_slice()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Tensor::full(Shape::vector(4), 2.5)
            .as_slice()
            .iter()
            .all(|&x| x == 2.5));
    }

    #[test]
    fn elementwise_ops() {
        let a = t2x2([1.0, 2.0, 3.0, 4.0]);
        let b = t2x2([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul(&a).unwrap().as_slice(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn shape_mismatch_detected() {
        let a = Tensor::zeros(Shape::matrix(2, 2));
        let b = Tensor::zeros(Shape::matrix(2, 3));
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn matmul_identity() {
        let a = t2x2([1.0, 2.0, 3.0, 4.0]);
        let id = t2x2([1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(Shape::matrix(1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape::matrix(3, 1), vec![4.0, 5.0, 6.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[1, 1]);
        assert_eq!(c.as_slice(), &[32.0]);
    }

    #[test]
    fn matmul_incompatible() {
        let a = Tensor::zeros(Shape::matrix(2, 3));
        let b = Tensor::zeros(Shape::matrix(2, 3));
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulIncompatible { .. })
        ));
        let v = Tensor::zeros(Shape::vector(3));
        assert!(a.matmul(&v).is_err());
    }

    #[test]
    fn sum_mean() {
        let a = t2x2([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn argmax_first_tie_wins() {
        let t = Tensor::from_slice_1d(&[1.0, 5.0, 5.0, 2.0]).unwrap();
        assert_eq!(t.argmax().unwrap(), (1, 5.0));
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_slice_1d(&[3.0, 4.0]).unwrap();
        assert_eq!(a.norm_l2(), 5.0);
        let b = Tensor::from_slice_1d(&[1.0, 1.0]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 7.0);
    }

    #[test]
    fn indexing() {
        let mut t = Tensor::zeros(Shape::matrix(2, 3));
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice_1d(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let r = t.reshape(Shape::matrix(2, 2)).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(Shape::matrix(3, 2)).is_err());
    }

    #[test]
    fn deterministic_random_tensors() {
        let mut r1 = DetRng::new(99);
        let mut r2 = DetRng::new(99);
        let a = Tensor::gaussian(Shape::vector(16), 0.0, 1.0, &mut r1);
        let b = Tensor::gaussian(Shape::vector(16), 0.0, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros(Shape::vector(3));
        assert!(t.all_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(!t.all_finite());
        t.as_mut_slice()[1] = f32::INFINITY;
        assert!(!t.all_finite());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_slice_1d(&[1.0, 2.0]).unwrap();
        let b = Tensor::from_slice_1d(&[1.5, -1.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 3.0);
    }

    #[test]
    fn display_compact_and_truncated() {
        let small = Tensor::from_slice_1d(&[1.0, 2.0]).unwrap();
        assert!(small.to_string().contains("Tensor[2]"));
        let big = Tensor::zeros(Shape::vector(100));
        assert!(big.to_string().contains("100 elements"));
    }
}
