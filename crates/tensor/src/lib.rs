#![deny(unsafe_code)]
//! # safex-tensor
//!
//! Deterministic tensor and fixed-point arithmetic substrate for the
//! SAFEXPLAIN reproduction.
//!
//! This crate is the numerical foundation of the FUSA-compliant deep
//! learning library (`safex-nn`). Its design goals mirror pillar 3 of the
//! SAFEXPLAIN paper — *"DL library implementations that adhere to safety
//! requirements"*:
//!
//! * **Determinism.** Every operation uses a fixed, documented evaluation
//!   order. Reductions sum left-to-right; no operation depends on hash
//!   ordering, pointer values, threads, or the OS clock. Running the same
//!   computation twice yields bit-identical results.
//! * **No hidden allocation on hot paths.** Kernels write into caller
//!   provided buffers (`*_into` variants) so a deployed inference engine can
//!   pre-allocate everything at initialisation time.
//! * **Explicit failure.** Shape mismatches return [`TensorError`] instead
//!   of panicking; fixed-point arithmetic saturates instead of wrapping.
//! * **No `unsafe`, no dependencies.** The crate is `deny(unsafe_code)`
//!   and depends only on `std`. The single audited exception is the
//!   one-line dispatch into the feature-gated CRC-32 carry-less-multiply
//!   fold in [`crc`] — no raw pointers or transmutes, only the runtime
//!   CPU-feature obligation, and the result is pinned bit-identical to
//!   the safe table implementation by tests at every level.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), safex_tensor::TensorError> {
//! use safex_tensor::{Shape, Tensor};
//!
//! let a = Tensor::from_vec(Shape::matrix(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::from_vec(Shape::matrix(3, 2), vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0])?;
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.as_slice(), &[4.0, 5.0, 10.0, 11.0]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Fixed point
//!
//! [`fixed::Q16_16`] and [`fixed::Q8_24`] are saturating binary fixed-point
//! types used for the bit-exact quantised inference path:
//!
//! ```
//! use safex_tensor::fixed::Q16_16;
//!
//! let x = Q16_16::from_f32(1.5);
//! let y = Q16_16::from_f32(2.25);
//! assert_eq!((x * y).to_f32(), 3.375);
//! ```

pub mod crc;
pub mod error;
pub mod fixed;
pub mod ops;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use crc::{CrcAccumulator, WeightDigest};
pub use error::TensorError;
pub use fixed::{Q16_16, Q8_24};
pub use ops::DenseKernel;
pub use rng::DetRng;
pub use shape::Shape;
pub use tensor::Tensor;
