//! Allocation-free numeric kernels.
//!
//! These are the primitives behind the `safex-nn` inference engine. Each
//! kernel writes into a caller-supplied output slice so that a deployed
//! engine can pre-allocate every buffer at initialisation time and perform
//! zero heap allocation per inference — a hard requirement in most FUSA
//! coding standards (e.g. ISO 26262-6 discourages dynamic memory in
//! ASIL-rated software).
//!
//! All kernels:
//!
//! * validate their argument dimensions and return [`TensorError`] on
//!   mismatch (never panic on user data);
//! * use a fixed left-to-right accumulation order with `f64` (or `i64` for
//!   the fixed-point variants) accumulators, so results are bit-for-bit
//!   reproducible.

use crate::crc::{CrcAccumulator, WeightDigest};
use crate::error::TensorError;
use crate::fixed::Q16_16;

/// `out = a (m x k) * b (k x n)`, row-major, f64 accumulation.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if any slice length disagrees
/// with the stated dimensions.
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) -> Result<(), TensorError> {
    check_len(a, m * k)?;
    check_len(b, k * n)?;
    check_len(out, m * n)?;
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a[i * k + p] as f64 * b[p * n + j] as f64;
            }
            out[i * n + j] = acc as f32;
        }
    }
    Ok(())
}

/// Inner-product strategy for the dense layer — the hottest loop in the
/// workspace (every engine, pool worker, and campaign cell runs it).
///
/// Both kernels are fully deterministic: each fixes its accumulation
/// order and accumulator width, so repeated runs (and pooled runs, for
/// any worker count) are bit-identical *within* a kernel. They are **not**
/// guaranteed bit-identical to *each other*: `Chunked` reassociates the
/// f64 sum, which can round differently after the final f32 cast.
/// `Exact` therefore stays the default — it preserves the experiment E5
/// baseline bit for bit — and `Chunked` is the opt-in fast path with its
/// own determinism matrix (`tests/determinism.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DenseKernel {
    /// Strict left-to-right f64 accumulation (one dependent chain).
    /// Bit-compatible with every result recorded before the kernel knob
    /// existed.
    #[default]
    Exact,
    /// Four independent f64 accumulators over 4-element chunks, combined
    /// as `(a0 + a1) + (a2 + a3) + tail`. The independent lanes break the
    /// loop-carried dependence so the compiler can keep multiple FMAs in
    /// flight / autovectorize; the combine order is fixed, so the result
    /// is still a pure function of (weights, bias, x).
    Chunked,
}

/// Dense (fully-connected) layer: `out = w (outputs x inputs) * x + bias`.
///
/// Uses the [`DenseKernel::Exact`] accumulation order.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on dimension disagreement.
pub fn dense_into(
    weights: &[f32],
    bias: &[f32],
    x: &[f32],
    out: &mut [f32],
    inputs: usize,
    outputs: usize,
) -> Result<(), TensorError> {
    check_len(weights, inputs * outputs)?;
    check_len(bias, outputs)?;
    check_len(x, inputs)?;
    check_len(out, outputs)?;
    for o in 0..outputs {
        let row = &weights[o * inputs..(o + 1) * inputs];
        out[o] = dense_row_exact(row, x, bias[o]);
    }
    Ok(())
}

/// One [`DenseKernel::Exact`] inner product: strict left-to-right f64
/// accumulation seeded with the bias.
#[inline]
fn dense_row_exact(row: &[f32], x: &[f32], bias: f32) -> f32 {
    let mut acc = bias as f64;
    for (w, xi) in row.iter().zip(x) {
        acc += *w as f64 * *xi as f64;
    }
    acc as f32
}

/// One [`DenseKernel::Chunked`] inner product: four independent f64
/// lanes over 4-element chunks plus a sequential tail, combined in a
/// fixed order.
#[inline]
fn dense_row_chunked(row: &[f32], x: &[f32], bias: f32) -> f32 {
    let mut lanes = [0.0f64; 4];
    let mut rw = row.chunks_exact(4);
    let mut rx = x.chunks_exact(4);
    for (w4, x4) in (&mut rw).zip(&mut rx) {
        lanes[0] += w4[0] as f64 * x4[0] as f64;
        lanes[1] += w4[1] as f64 * x4[1] as f64;
        lanes[2] += w4[2] as f64 * x4[2] as f64;
        lanes[3] += w4[3] as f64 * x4[3] as f64;
    }
    let mut tail = bias as f64;
    for (w, xi) in rw.remainder().iter().zip(rx.remainder()) {
        tail += *w as f64 * *xi as f64;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail) as f32
}

/// One inner product dispatching on the kernel strategy.
#[inline]
fn dense_row(kernel: DenseKernel, row: &[f32], x: &[f32], bias: f32) -> f32 {
    match kernel {
        DenseKernel::Exact => dense_row_exact(row, x, bias),
        DenseKernel::Chunked => dense_row_chunked(row, x, bias),
    }
}

/// Dense layer with the [`DenseKernel::Chunked`] inner product: four
/// independent f64 accumulators over 4-element chunks, sequential tail,
/// combined in a fixed order. Deterministic (see [`DenseKernel`]) but not
/// bit-identical to [`dense_into`] in general.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on dimension disagreement.
pub fn dense_into_chunked(
    weights: &[f32],
    bias: &[f32],
    x: &[f32],
    out: &mut [f32],
    inputs: usize,
    outputs: usize,
) -> Result<(), TensorError> {
    check_len(weights, inputs * outputs)?;
    check_len(bias, outputs)?;
    check_len(x, inputs)?;
    check_len(out, outputs)?;
    for o in 0..outputs {
        let row = &weights[o * inputs..(o + 1) * inputs];
        out[o] = dense_row_chunked(row, x, bias[o]);
    }
    Ok(())
}

/// Dense layer dispatching on a [`DenseKernel`].
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on dimension disagreement.
pub fn dense_into_with(
    kernel: DenseKernel,
    weights: &[f32],
    bias: &[f32],
    x: &[f32],
    out: &mut [f32],
    inputs: usize,
    outputs: usize,
) -> Result<(), TensorError> {
    match kernel {
        DenseKernel::Exact => dense_into(weights, bias, x, out, inputs, outputs),
        DenseKernel::Chunked => dense_into_chunked(weights, bias, x, out, inputs, outputs),
    }
}

/// Dense layer with fused verify-on-read: one sweep computes the outputs
/// *and* accumulates the [`WeightDigest`] over the weights-then-bias word
/// stream, i.e. the golden-checksum order.
///
/// Each weight row is digested immediately after its MAC loop, while the
/// row is still cache-hot, so verification rides the memory traffic the
/// inference pass already paid for instead of a second sweep. The bias
/// (a few words) is digested in a trailing pass to preserve the stream
/// order. Outputs are bit-identical to [`dense_into_with`] with the same
/// kernel; the digest is bit-identical to [`crate::crc::digest_f32`]
/// over the same buffers.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on dimension disagreement.
pub fn dense_into_digest(
    kernel: DenseKernel,
    weights: &[f32],
    bias: &[f32],
    x: &[f32],
    out: &mut [f32],
    inputs: usize,
    outputs: usize,
) -> Result<WeightDigest, TensorError> {
    check_len(weights, inputs * outputs)?;
    check_len(bias, outputs)?;
    check_len(x, inputs)?;
    check_len(out, outputs)?;
    let mut digest = CrcAccumulator::new();
    for o in 0..outputs {
        let row = &weights[o * inputs..(o + 1) * inputs];
        out[o] = dense_row(kernel, row, x, bias[o]);
        digest.update_f32(row);
    }
    digest.update_f32(bias);
    Ok(digest.finish())
}

/// Dense layer over a batch-major activation arena: `batch` input rows
/// spaced `src_stride` apart in `src`, output rows written `dst_stride`
/// apart in `dst`.
///
/// The loop order is output-row outer, batch-item inner, so each weight
/// row is streamed from memory once per *batch* instead of once per
/// item. Every per-item inner product uses exactly the arithmetic of
/// [`dense_into_with`], so results are bit-identical to running the
/// per-item kernel on each row separately.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on dimension disagreement and
/// [`TensorError::InvalidArgument`] when a stride is smaller than the row
/// it must hold.
#[allow(clippy::too_many_arguments)]
pub fn dense_batch_into_with(
    kernel: DenseKernel,
    weights: &[f32],
    bias: &[f32],
    src: &[f32],
    dst: &mut [f32],
    inputs: usize,
    outputs: usize,
    batch: usize,
    src_stride: usize,
    dst_stride: usize,
) -> Result<(), TensorError> {
    check_len(weights, inputs * outputs)?;
    check_len(bias, outputs)?;
    if batch == 0 {
        return Ok(());
    }
    if src_stride < inputs || dst_stride < outputs {
        return Err(TensorError::InvalidArgument(
            "arena stride smaller than the activation row it must hold".into(),
        ));
    }
    let src_need = (batch - 1) * src_stride + inputs;
    if src.len() < src_need {
        return Err(TensorError::LengthMismatch {
            expected: src_need,
            actual: src.len(),
        });
    }
    let dst_need = (batch - 1) * dst_stride + outputs;
    if dst.len() < dst_need {
        return Err(TensorError::LengthMismatch {
            expected: dst_need,
            actual: dst.len(),
        });
    }
    match kernel {
        DenseKernel::Exact => {
            for o in 0..outputs {
                let row = &weights[o * inputs..(o + 1) * inputs];
                let b = bias[o];
                // Four items per step: each keeps its own accumulator
                // chain, so the serial f64-add latency that bounds the
                // one-item kernel overlaps across items. Per (o, item)
                // the operation sequence is exactly `dense_row_exact`,
                // so outputs stay bit-identical to the per-item path —
                // this reordering across independent chains is where the
                // batch arena beats batch=1.
                let mut item = 0usize;
                while item + 4 <= batch {
                    let x0 = &src[item * src_stride..item * src_stride + inputs];
                    let x1 = &src[(item + 1) * src_stride..(item + 1) * src_stride + inputs];
                    let x2 = &src[(item + 2) * src_stride..(item + 2) * src_stride + inputs];
                    let x3 = &src[(item + 3) * src_stride..(item + 3) * src_stride + inputs];
                    let mut a0 = b as f64;
                    let mut a1 = b as f64;
                    let mut a2 = b as f64;
                    let mut a3 = b as f64;
                    for i in 0..inputs {
                        let w = row[i] as f64;
                        a0 += w * x0[i] as f64;
                        a1 += w * x1[i] as f64;
                        a2 += w * x2[i] as f64;
                        a3 += w * x3[i] as f64;
                    }
                    dst[item * dst_stride + o] = a0 as f32;
                    dst[(item + 1) * dst_stride + o] = a1 as f32;
                    dst[(item + 2) * dst_stride + o] = a2 as f32;
                    dst[(item + 3) * dst_stride + o] = a3 as f32;
                    item += 4;
                }
                while item < batch {
                    let x = &src[item * src_stride..item * src_stride + inputs];
                    dst[item * dst_stride + o] = dense_row_exact(row, x, b);
                    item += 1;
                }
            }
        }
        DenseKernel::Chunked => {
            // The chunked kernel already runs four lanes per item; keep
            // the straightforward item loop.
            for o in 0..outputs {
                let row = &weights[o * inputs..(o + 1) * inputs];
                let b = bias[o];
                for item in 0..batch {
                    let x = &src[item * src_stride..item * src_stride + inputs];
                    dst[item * dst_stride + o] = dense_row_chunked(row, x, b);
                }
            }
        }
    }
    Ok(())
}

/// 2-D convolution, NCHW single image, `valid` padding semantics with an
/// explicit zero-`padding` border and stride.
///
/// * `x` is `in_c x in_h x in_w`
/// * `weights` is `out_c x in_c x k_h x k_w`
/// * `bias` is `out_c`
/// * `out` is `out_c x out_h x out_w` with
///   `out_h = (in_h + 2*padding - k_h)/stride + 1` (likewise for width).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on dimension disagreement and
/// [`TensorError::InvalidArgument`] if `stride == 0` or the kernel does not
/// fit in the padded input.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into(
    x: &[f32],
    weights: &[f32],
    bias: &[f32],
    out: &mut [f32],
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
) -> Result<(), TensorError> {
    conv2d_into_impl(
        x, weights, bias, out, in_c, in_h, in_w, out_c, k_h, k_w, stride, padding, None,
    )
}

/// 2-D convolution with fused verify-on-read: identical outputs to
/// [`conv2d_into`], plus the [`WeightDigest`] over the weights-then-bias
/// word stream accumulated during the sweep. Each output channel's
/// weight block is digested right after that channel's spatial loop
/// finishes streaming it; blocks in channel order concatenate to the
/// linear weight buffer, so the digest is bit-identical to
/// [`crate::crc::digest_f32`] over the same buffers.
///
/// # Errors
///
/// Same contract as [`conv2d_into`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into_digest(
    x: &[f32],
    weights: &[f32],
    bias: &[f32],
    out: &mut [f32],
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
) -> Result<WeightDigest, TensorError> {
    let mut digest = CrcAccumulator::new();
    conv2d_into_impl(
        x,
        weights,
        bias,
        out,
        in_c,
        in_h,
        in_w,
        out_c,
        k_h,
        k_w,
        stride,
        padding,
        Some(&mut digest),
    )?;
    digest.update_f32(bias);
    Ok(digest.finish())
}

#[allow(clippy::too_many_arguments)]
fn conv2d_into_impl(
    x: &[f32],
    weights: &[f32],
    bias: &[f32],
    out: &mut [f32],
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
    mut digest: Option<&mut CrcAccumulator>,
) -> Result<(), TensorError> {
    if stride == 0 {
        return Err(TensorError::InvalidArgument(
            "stride must be non-zero".into(),
        ));
    }
    let (out_h, out_w) = conv2d_output_dims(in_h, in_w, k_h, k_w, stride, padding)?;
    check_len(x, in_c * in_h * in_w)?;
    check_len(weights, out_c * in_c * k_h * k_w)?;
    check_len(bias, out_c)?;
    check_len(out, out_c * out_h * out_w)?;

    let block = in_c * k_h * k_w;
    for oc in 0..out_c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = bias[oc] as f64;
                for ic in 0..in_c {
                    for ky in 0..k_h {
                        // Input row for this kernel row, accounting for padding.
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy as usize >= in_h {
                            continue;
                        }
                        for kx in 0..k_w {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix as usize >= in_w {
                                continue;
                            }
                            let xv = x[ic * in_h * in_w + iy as usize * in_w + ix as usize];
                            let wv =
                                weights[oc * in_c * k_h * k_w + ic * k_h * k_w + ky * k_w + kx];
                            acc += xv as f64 * wv as f64;
                        }
                    }
                }
                out[oc * out_h * out_w + oy * out_w + ox] = acc as f32;
            }
        }
        // Digest this channel's weight block while it is still cache-hot
        // from the spatial loop above.
        if let Some(acc) = digest.as_deref_mut() {
            acc.update_f32(&weights[oc * block..(oc + 1) * block]);
        }
    }
    Ok(())
}

/// Output spatial dimensions of a 2-D convolution or pooling window.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the window does not fit.
pub fn conv2d_output_dims(
    in_h: usize,
    in_w: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
) -> Result<(usize, usize), TensorError> {
    if stride == 0 {
        return Err(TensorError::InvalidArgument(
            "stride must be non-zero".into(),
        ));
    }
    let padded_h = in_h + 2 * padding;
    let padded_w = in_w + 2 * padding;
    if k_h == 0 || k_w == 0 || k_h > padded_h || k_w > padded_w {
        return Err(TensorError::InvalidArgument(format!(
            "kernel {k_h}x{k_w} does not fit input {in_h}x{in_w} with padding {padding}"
        )));
    }
    Ok(((padded_h - k_h) / stride + 1, (padded_w - k_w) / stride + 1))
}

/// 2-D max pooling over an NCHW single image.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] / [`TensorError::InvalidArgument`]
/// on bad dimensions.
#[allow(clippy::too_many_arguments)]
pub fn maxpool2d_into(
    x: &[f32],
    out: &mut [f32],
    channels: usize,
    in_h: usize,
    in_w: usize,
    pool: usize,
    stride: usize,
) -> Result<(), TensorError> {
    let (out_h, out_w) = conv2d_output_dims(in_h, in_w, pool, pool, stride, 0)?;
    check_len(x, channels * in_h * in_w)?;
    check_len(out, channels * out_h * out_w)?;
    for c in 0..channels {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut best = f32::NEG_INFINITY;
                for py in 0..pool {
                    for px in 0..pool {
                        let v = x[c * in_h * in_w + (oy * stride + py) * in_w + ox * stride + px];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out[c * out_h * out_w + oy * out_w + ox] = best;
            }
        }
    }
    Ok(())
}

/// 2-D average pooling over an NCHW single image.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] / [`TensorError::InvalidArgument`]
/// on bad dimensions.
pub fn avgpool2d_into(
    x: &[f32],
    out: &mut [f32],
    channels: usize,
    in_h: usize,
    in_w: usize,
    pool: usize,
    stride: usize,
) -> Result<(), TensorError> {
    let (out_h, out_w) = conv2d_output_dims(in_h, in_w, pool, pool, stride, 0)?;
    check_len(x, channels * in_h * in_w)?;
    check_len(out, channels * out_h * out_w)?;
    let denom = (pool * pool) as f64;
    for c in 0..channels {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0.0f64;
                for py in 0..pool {
                    for px in 0..pool {
                        acc += x[c * in_h * in_w + (oy * stride + py) * in_w + ox * stride + px]
                            as f64;
                    }
                }
                out[c * out_h * out_w + oy * out_w + ox] = (acc / denom) as f32;
            }
        }
    }
    Ok(())
}

/// Rectified linear unit, elementwise: `out[i] = max(x[i], 0)`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if lengths differ.
pub fn relu_into(x: &[f32], out: &mut [f32]) -> Result<(), TensorError> {
    check_len(out, x.len())?;
    for (o, &v) in out.iter_mut().zip(x) {
        *o = if v > 0.0 { v } else { 0.0 };
    }
    Ok(())
}

/// Leaky rectified linear unit with slope `alpha` for negative inputs.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if lengths differ.
pub fn leaky_relu_into(x: &[f32], out: &mut [f32], alpha: f32) -> Result<(), TensorError> {
    check_len(out, x.len())?;
    for (o, &v) in out.iter_mut().zip(x) {
        *o = if v > 0.0 { v } else { alpha * v };
    }
    Ok(())
}

/// Numerically-stable softmax: `out[i] = exp(x[i] - max) / Σ exp(x[j] - max)`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if lengths differ or
/// [`TensorError::EmptyInput`] on empty input.
pub fn softmax_into(x: &[f32], out: &mut [f32]) -> Result<(), TensorError> {
    if x.is_empty() {
        return Err(TensorError::EmptyInput);
    }
    check_len(out, x.len())?;
    let max = x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut denom = 0.0f64;
    for (o, &v) in out.iter_mut().zip(x) {
        let e = ((v - max) as f64).exp();
        *o = e as f32;
        denom += e;
    }
    for o in out.iter_mut() {
        *o = (*o as f64 / denom) as f32;
    }
    Ok(())
}

/// Sigmoid, elementwise.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if lengths differ.
pub fn sigmoid_into(x: &[f32], out: &mut [f32]) -> Result<(), TensorError> {
    check_len(out, x.len())?;
    for (o, &v) in out.iter_mut().zip(x) {
        *o = (1.0 / (1.0 + (-v as f64).exp())) as f32;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fixed-point kernels
// ---------------------------------------------------------------------------

/// Fixed-point dense layer with an `i64` accumulator.
///
/// The accumulator holds Q32.32-scaled partial sums, so up to ~2³¹ MAC
/// terms cannot overflow; the final narrowing back to Q16.16 saturates.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on dimension disagreement.
pub fn dense_q16_into(
    weights: &[Q16_16],
    bias: &[Q16_16],
    x: &[Q16_16],
    out: &mut [Q16_16],
    inputs: usize,
    outputs: usize,
) -> Result<(), TensorError> {
    check_len(weights, inputs * outputs)?;
    check_len(bias, outputs)?;
    check_len(x, inputs)?;
    check_len(out, outputs)?;
    for o in 0..outputs {
        let row = &weights[o * inputs..(o + 1) * inputs];
        out[o] = dense_q16_row(row, x, bias[o]);
    }
    Ok(())
}

/// One fixed-point inner product with the widened Q32.32 accumulator.
#[inline]
fn dense_q16_row(row: &[Q16_16], x: &[Q16_16], bias: Q16_16) -> Q16_16 {
    // Q32.32 accumulator: product of two Q16.16 raws is Q32.32.
    let mut acc: i64 = (bias.to_bits() as i64) << Q16_16::FRAC_BITS;
    for (w, xi) in row.iter().zip(x) {
        acc = acc.saturating_add(w.to_bits() as i64 * xi.to_bits() as i64);
    }
    q32_32_to_q16_16(acc)
}

/// Fixed-point dense layer with fused verify-on-read: the Q16.16
/// counterpart of [`dense_into_digest`]. Outputs are bit-identical to
/// [`dense_q16_into`]; the digest is bit-identical to
/// [`crate::crc::digest_q16`] over the same buffers.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on dimension disagreement.
pub fn dense_q16_into_digest(
    weights: &[Q16_16],
    bias: &[Q16_16],
    x: &[Q16_16],
    out: &mut [Q16_16],
    inputs: usize,
    outputs: usize,
) -> Result<WeightDigest, TensorError> {
    check_len(weights, inputs * outputs)?;
    check_len(bias, outputs)?;
    check_len(x, inputs)?;
    check_len(out, outputs)?;
    let mut digest = CrcAccumulator::new();
    for o in 0..outputs {
        let row = &weights[o * inputs..(o + 1) * inputs];
        out[o] = dense_q16_row(row, x, bias[o]);
        digest.update_q16(row);
    }
    digest.update_q16(bias);
    Ok(digest.finish())
}

/// Fixed-point dense layer over a batch-major activation arena: the
/// Q16.16 counterpart of [`dense_batch_into_with`], bit-identical per
/// item to [`dense_q16_into`].
///
/// # Errors
///
/// Same contract as [`dense_batch_into_with`].
#[allow(clippy::too_many_arguments)]
pub fn dense_q16_batch_into(
    weights: &[Q16_16],
    bias: &[Q16_16],
    src: &[Q16_16],
    dst: &mut [Q16_16],
    inputs: usize,
    outputs: usize,
    batch: usize,
    src_stride: usize,
    dst_stride: usize,
) -> Result<(), TensorError> {
    check_len(weights, inputs * outputs)?;
    check_len(bias, outputs)?;
    if batch == 0 {
        return Ok(());
    }
    if src_stride < inputs || dst_stride < outputs {
        return Err(TensorError::InvalidArgument(
            "arena stride smaller than the activation row it must hold".into(),
        ));
    }
    let src_need = (batch - 1) * src_stride + inputs;
    if src.len() < src_need {
        return Err(TensorError::LengthMismatch {
            expected: src_need,
            actual: src.len(),
        });
    }
    let dst_need = (batch - 1) * dst_stride + outputs;
    if dst.len() < dst_need {
        return Err(TensorError::LengthMismatch {
            expected: dst_need,
            actual: dst.len(),
        });
    }
    for o in 0..outputs {
        let row = &weights[o * inputs..(o + 1) * inputs];
        let b = bias[o];
        // Same four-chain unroll as the float batch kernel: the i64
        // saturating-add chain per item is reproduced operation for
        // operation, so each lane is bit-identical to `dense_q16_row`.
        let mut item = 0usize;
        while item + 4 <= batch {
            let x0 = &src[item * src_stride..item * src_stride + inputs];
            let x1 = &src[(item + 1) * src_stride..(item + 1) * src_stride + inputs];
            let x2 = &src[(item + 2) * src_stride..(item + 2) * src_stride + inputs];
            let x3 = &src[(item + 3) * src_stride..(item + 3) * src_stride + inputs];
            let seed = (b.to_bits() as i64) << Q16_16::FRAC_BITS;
            let mut a0 = seed;
            let mut a1 = seed;
            let mut a2 = seed;
            let mut a3 = seed;
            for i in 0..inputs {
                let w = row[i].to_bits() as i64;
                a0 = a0.saturating_add(w * x0[i].to_bits() as i64);
                a1 = a1.saturating_add(w * x1[i].to_bits() as i64);
                a2 = a2.saturating_add(w * x2[i].to_bits() as i64);
                a3 = a3.saturating_add(w * x3[i].to_bits() as i64);
            }
            dst[item * dst_stride + o] = q32_32_to_q16_16(a0);
            dst[(item + 1) * dst_stride + o] = q32_32_to_q16_16(a1);
            dst[(item + 2) * dst_stride + o] = q32_32_to_q16_16(a2);
            dst[(item + 3) * dst_stride + o] = q32_32_to_q16_16(a3);
            item += 4;
        }
        while item < batch {
            let x = &src[item * src_stride..item * src_stride + inputs];
            dst[item * dst_stride + o] = dense_q16_row(row, x, b);
            item += 1;
        }
    }
    Ok(())
}

/// Fixed-point ReLU.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if lengths differ.
pub fn relu_q16_into(x: &[Q16_16], out: &mut [Q16_16]) -> Result<(), TensorError> {
    check_len(out, x.len())?;
    for (o, &v) in out.iter_mut().zip(x) {
        *o = v.max(Q16_16::ZERO);
    }
    Ok(())
}

/// Fixed-point 2-D convolution (same layout contract as [`conv2d_into`]).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] / [`TensorError::InvalidArgument`]
/// on bad dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_q16_into(
    x: &[Q16_16],
    weights: &[Q16_16],
    bias: &[Q16_16],
    out: &mut [Q16_16],
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
) -> Result<(), TensorError> {
    conv2d_q16_into_impl(
        x, weights, bias, out, in_c, in_h, in_w, out_c, k_h, k_w, stride, padding, None,
    )
}

/// Fixed-point 2-D convolution with fused verify-on-read: the Q16.16
/// counterpart of [`conv2d_into_digest`]. Outputs are bit-identical to
/// [`conv2d_q16_into`]; the digest is bit-identical to
/// [`crate::crc::digest_q16`] over the same buffers.
///
/// # Errors
///
/// Same contract as [`conv2d_q16_into`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_q16_into_digest(
    x: &[Q16_16],
    weights: &[Q16_16],
    bias: &[Q16_16],
    out: &mut [Q16_16],
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
) -> Result<WeightDigest, TensorError> {
    let mut digest = CrcAccumulator::new();
    conv2d_q16_into_impl(
        x,
        weights,
        bias,
        out,
        in_c,
        in_h,
        in_w,
        out_c,
        k_h,
        k_w,
        stride,
        padding,
        Some(&mut digest),
    )?;
    digest.update_q16(bias);
    Ok(digest.finish())
}

#[allow(clippy::too_many_arguments)]
fn conv2d_q16_into_impl(
    x: &[Q16_16],
    weights: &[Q16_16],
    bias: &[Q16_16],
    out: &mut [Q16_16],
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
    mut digest: Option<&mut CrcAccumulator>,
) -> Result<(), TensorError> {
    let (out_h, out_w) = conv2d_output_dims(in_h, in_w, k_h, k_w, stride, padding)?;
    check_len(x, in_c * in_h * in_w)?;
    check_len(weights, out_c * in_c * k_h * k_w)?;
    check_len(bias, out_c)?;
    check_len(out, out_c * out_h * out_w)?;
    let block = in_c * k_h * k_w;
    for oc in 0..out_c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc: i64 = (bias[oc].to_bits() as i64) << Q16_16::FRAC_BITS;
                for ic in 0..in_c {
                    for ky in 0..k_h {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy as usize >= in_h {
                            continue;
                        }
                        for kx in 0..k_w {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix as usize >= in_w {
                                continue;
                            }
                            let xv = x[ic * in_h * in_w + iy as usize * in_w + ix as usize];
                            let wv =
                                weights[oc * in_c * k_h * k_w + ic * k_h * k_w + ky * k_w + kx];
                            acc = acc.saturating_add(xv.to_bits() as i64 * wv.to_bits() as i64);
                        }
                    }
                }
                out[oc * out_h * out_w + oy * out_w + ox] = q32_32_to_q16_16(acc);
            }
        }
        // Digest this channel's weight block while it is still cache-hot.
        if let Some(acc) = digest.as_deref_mut() {
            acc.update_q16(&weights[oc * block..(oc + 1) * block]);
        }
    }
    Ok(())
}

/// Fixed-point max pooling (same layout contract as [`maxpool2d_into`]).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] / [`TensorError::InvalidArgument`]
/// on bad dimensions.
pub fn maxpool2d_q16_into(
    x: &[Q16_16],
    out: &mut [Q16_16],
    channels: usize,
    in_h: usize,
    in_w: usize,
    pool: usize,
    stride: usize,
) -> Result<(), TensorError> {
    let (out_h, out_w) = conv2d_output_dims(in_h, in_w, pool, pool, stride, 0)?;
    check_len(x, channels * in_h * in_w)?;
    check_len(out, channels * out_h * out_w)?;
    for c in 0..channels {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut best = Q16_16::MIN;
                for py in 0..pool {
                    for px in 0..pool {
                        let v = x[c * in_h * in_w + (oy * stride + py) * in_w + ox * stride + px];
                        best = best.max(v);
                    }
                }
                out[c * out_h * out_w + oy * out_w + ox] = best;
            }
        }
    }
    Ok(())
}

/// Narrows a Q32.32 `i64` accumulator to Q16.16, rounding to nearest
/// (ties toward +inf) and saturating.
fn q32_32_to_q16_16(acc: i64) -> Q16_16 {
    let half = 1i64 << (Q16_16::FRAC_BITS - 1);
    let rounded = acc.saturating_add(half) >> Q16_16::FRAC_BITS;
    if rounded > i32::MAX as i64 {
        Q16_16::MAX
    } else if rounded < i32::MIN as i64 {
        Q16_16::MIN
    } else {
        Q16_16::from_bits(rounded as i32)
    }
}

fn check_len<T>(slice: &[T], expected: usize) -> Result<(), TensorError> {
    if slice.len() != expected {
        Err(TensorError::LengthMismatch {
            expected,
            actual: slice.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_into_basic() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let mut out = [0.0; 4];
        matmul_into(&a, &b, &mut out, 2, 3, 2).unwrap();
        assert_eq!(out, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_into_rejects_bad_lengths() {
        let a = [1.0; 5];
        let b = [1.0; 6];
        let mut out = [0.0; 4];
        assert!(matmul_into(&a, &b, &mut out, 2, 3, 2).is_err());
    }

    #[test]
    fn dense_into_matches_manual() {
        // 2 inputs -> 3 outputs
        let w = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let b = [0.5, -0.5, 0.0];
        let x = [2.0, 3.0];
        let mut out = [0.0; 3];
        dense_into(&w, &b, &x, &mut out, 2, 3).unwrap();
        assert_eq!(out, [2.5, 2.5, 5.0]);
    }

    #[test]
    fn dense_chunked_matches_manual_and_is_deterministic() {
        // 2 inputs -> 3 outputs: short rows exercise the pure-tail path.
        let w = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let b = [0.5, -0.5, 0.0];
        let x = [2.0, 3.0];
        let mut out = [0.0; 3];
        dense_into_chunked(&w, &b, &x, &mut out, 2, 3).unwrap();
        assert_eq!(out, [2.5, 2.5, 5.0]);

        // Long row with a remainder (11 = 2 chunks of 4 + tail of 3):
        // repeated evaluation must be bit-identical, and close to exact.
        let inputs = 11;
        let w: Vec<f32> = (0..inputs).map(|i| (i as f32 * 0.37).sin()).collect();
        let x: Vec<f32> = (0..inputs).map(|i| (i as f32 * 0.21).cos()).collect();
        let b = [0.125f32];
        let mut exact = [0.0f32];
        let mut chunked = [0.0f32];
        dense_into(&w, &b, &x, &mut exact, inputs, 1).unwrap();
        dense_into_chunked(&w, &b, &x, &mut chunked, inputs, 1).unwrap();
        assert!((exact[0] - chunked[0]).abs() <= exact[0].abs() * 1e-6 + 1e-6);
        for _ in 0..8 {
            let mut again = [0.0f32];
            dense_into_chunked(&w, &b, &x, &mut again, inputs, 1).unwrap();
            assert_eq!(again, chunked, "chunked kernel must be run-to-run exact");
        }
        let mut via_dispatch = [0.0f32];
        dense_into_with(
            DenseKernel::Chunked,
            &w,
            &b,
            &x,
            &mut via_dispatch,
            inputs,
            1,
        )
        .unwrap();
        assert_eq!(via_dispatch, chunked);
        dense_into_with(DenseKernel::Exact, &w, &b, &x, &mut via_dispatch, inputs, 1).unwrap();
        assert_eq!(via_dispatch, exact);
    }

    #[test]
    fn dense_chunked_rejects_bad_lengths() {
        let w = [1.0; 6];
        let b = [0.0; 3];
        let x = [1.0; 2];
        let mut out = [0.0; 3];
        assert!(dense_into_chunked(&w, &b, &x, &mut out, 3, 3).is_err());
        assert!(dense_into_chunked(&w, &b, &x, &mut out, 2, 2).is_err());
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1 channel 3x3 input, 1x1 kernel of weight 1 -> output equals input.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let w = [1.0];
        let b = [0.0];
        let mut out = [0.0; 9];
        conv2d_into(&x, &w, &b, &mut out, 1, 3, 3, 1, 1, 1, 1, 0).unwrap();
        assert_eq!(out, x);
    }

    #[test]
    fn conv2d_sum_kernel() {
        // 2x2 all-ones kernel over 3x3 ramp, stride 1, no padding -> 2x2 window sums.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let w = [1.0, 1.0, 1.0, 1.0];
        let b = [0.0];
        let mut out = [0.0; 4];
        conv2d_into(&x, &w, &b, &mut out, 1, 3, 3, 1, 2, 2, 1, 0).unwrap();
        assert_eq!(out, [12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_padding_extends_border() {
        // 1x1 input, 3x3 all-ones kernel, padding 1 -> single output = input value.
        let x = [5.0];
        let w = [1.0; 9];
        let b = [0.0];
        let mut out = [0.0; 1];
        conv2d_into(&x, &w, &b, &mut out, 1, 1, 1, 1, 3, 3, 1, 1).unwrap();
        assert_eq!(out, [5.0]);
    }

    #[test]
    fn conv2d_stride_two() {
        let x = [
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0,
        ];
        let w = [1.0];
        let b = [0.0];
        let (oh, ow) = conv2d_output_dims(4, 4, 1, 1, 2, 0).unwrap();
        assert_eq!((oh, ow), (2, 2));
        let mut out = [0.0; 4];
        conv2d_into(&x, &w, &b, &mut out, 1, 4, 4, 1, 1, 1, 2, 0).unwrap();
        assert_eq!(out, [1.0, 3.0, 9.0, 11.0]);
    }

    #[test]
    fn conv2d_multi_channel() {
        // 2 input channels, kernel sums both channels.
        let x = [1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]; // 2x2x2
        let w = [1.0, 1.0]; // out_c=1, in_c=2, 1x1
        let b = [0.0];
        let mut out = [0.0; 4];
        conv2d_into(&x, &w, &b, &mut out, 2, 2, 2, 1, 1, 1, 1, 0).unwrap();
        assert_eq!(out, [11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn output_dims_errors() {
        assert!(conv2d_output_dims(3, 3, 5, 5, 1, 0).is_err());
        assert!(conv2d_output_dims(3, 3, 3, 3, 0, 0).is_err());
        assert!(conv2d_output_dims(3, 3, 0, 1, 1, 0).is_err());
        // Padding makes an otherwise-too-big kernel fit.
        assert_eq!(conv2d_output_dims(3, 3, 5, 5, 1, 1).unwrap(), (1, 1));
    }

    #[test]
    fn maxpool_basic() {
        let x = [
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0,
        ];
        let mut out = [0.0; 4];
        maxpool2d_into(&x, &mut out, 1, 4, 4, 2, 2).unwrap();
        assert_eq!(out, [6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avgpool_basic() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0; 1];
        avgpool2d_into(&x, &mut out, 1, 2, 2, 2, 2).unwrap();
        assert_eq!(out, [2.5]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = [-1.0, 0.0, 2.0];
        let mut out = [9.0; 3];
        relu_into(&x, &mut out).unwrap();
        assert_eq!(out, [0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let x = [-2.0, 3.0];
        let mut out = [0.0; 2];
        leaky_relu_into(&x, &mut out, 0.1).unwrap();
        assert_eq!(out[1], 3.0);
        assert!((out[0] - -0.2).abs() < 1e-7);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let x = [1000.0, 1001.0, 1002.0]; // would overflow naive exp
        let mut out = [0.0; 3];
        softmax_into(&x, &mut out).unwrap();
        let total: f32 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(out[2] > out[1] && out[1] > out[0]);
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let x = [0.5; 4];
        let mut out = [0.0; 4];
        softmax_into(&x, &mut out).unwrap();
        for &p in &out {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_empty_is_error() {
        let mut out: [f32; 0] = [];
        assert_eq!(softmax_into(&[], &mut out), Err(TensorError::EmptyInput));
    }

    #[test]
    fn sigmoid_midpoint() {
        let x = [0.0, 100.0, -100.0];
        let mut out = [0.0; 3];
        sigmoid_into(&x, &mut out).unwrap();
        assert_eq!(out[0], 0.5);
        assert!(out[1] > 0.999);
        assert!(out[2] < 0.001);
    }

    #[test]
    fn dense_q16_matches_float() {
        let wf = [0.5f32, -0.25, 1.0, 0.75];
        let bf = [0.125f32, -0.5];
        let xf = [2.0f32, 4.0];
        let w: Vec<Q16_16> = wf.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let b: Vec<Q16_16> = bf.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let x: Vec<Q16_16> = xf.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let mut out = [Q16_16::ZERO; 2];
        dense_q16_into(&w, &b, &x, &mut out, 2, 2).unwrap();
        let mut outf = [0.0f32; 2];
        dense_into(&wf, &bf, &xf, &mut outf, 2, 2).unwrap();
        for i in 0..2 {
            assert!((out[i].to_f32() - outf[i]).abs() < 1e-3, "{i}");
        }
    }

    #[test]
    fn conv_q16_matches_float() {
        let xf = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let wf = [0.25f32, -0.5, 0.75, 1.0];
        let bf = [0.5f32];
        let x: Vec<Q16_16> = xf.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let w: Vec<Q16_16> = wf.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let b: Vec<Q16_16> = bf.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let mut out = [Q16_16::ZERO; 4];
        conv2d_q16_into(&x, &w, &b, &mut out, 1, 3, 3, 1, 2, 2, 1, 0).unwrap();
        let mut outf = [0.0f32; 4];
        conv2d_into(&xf, &wf, &bf, &mut outf, 1, 3, 3, 1, 2, 2, 1, 0).unwrap();
        for i in 0..4 {
            assert!((out[i].to_f32() - outf[i]).abs() < 1e-3, "{i}");
        }
    }

    #[test]
    fn relu_and_maxpool_q16() {
        let x: Vec<Q16_16> = [-1.0f32, 2.0, -3.0, 4.0]
            .iter()
            .map(|&v| Q16_16::from_f32(v))
            .collect();
        let mut r = vec![Q16_16::ZERO; 4];
        relu_q16_into(&x, &mut r).unwrap();
        assert_eq!(r[0], Q16_16::ZERO);
        assert_eq!(r[1].to_f32(), 2.0);
        let mut p = vec![Q16_16::ZERO; 1];
        maxpool2d_q16_into(&x, &mut p, 1, 2, 2, 2, 2).unwrap();
        assert_eq!(p[0].to_f32(), 4.0);
    }

    #[test]
    fn q16_accumulator_no_premature_saturation() {
        // Many small terms whose Q16.16 pairwise products would be fine but
        // whose partial sums stress the widened accumulator path.
        let n = 1000;
        let w: Vec<Q16_16> = (0..n).map(|_| Q16_16::from_f32(0.01)).collect();
        let x: Vec<Q16_16> = (0..n).map(|_| Q16_16::from_f32(1.0)).collect();
        let b = [Q16_16::ZERO];
        let mut out = [Q16_16::ZERO];
        dense_q16_into(&w, &b, &x, &mut out, n, 1).unwrap();
        // 1000 * 0.01 = 10 (small quantisation error on 0.01 allowed)
        assert!((out[0].to_f32() - 10.0).abs() < 0.01);
    }

    fn ramp(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * scale).sin()).collect()
    }

    #[test]
    fn fused_dense_matches_plain_and_reference_digest() {
        let (inputs, outputs) = (11, 5); // odd row length crosses pair alignment
        let w = ramp(inputs * outputs, 0.37);
        let b = ramp(outputs, 0.11);
        let x = ramp(inputs, 0.23);
        for kernel in [DenseKernel::Exact, DenseKernel::Chunked] {
            let mut plain = vec![0.0f32; outputs];
            dense_into_with(kernel, &w, &b, &x, &mut plain, inputs, outputs).unwrap();
            let mut fused = vec![0.0f32; outputs];
            let digest =
                dense_into_digest(kernel, &w, &b, &x, &mut fused, inputs, outputs).unwrap();
            assert_eq!(
                fused, plain,
                "{kernel:?}: fused outputs must be bit-identical"
            );
            assert_eq!(digest, crate::crc::digest_f32(&w, &b), "{kernel:?}");
        }
    }

    #[test]
    fn fused_conv_matches_plain_and_reference_digest() {
        let (in_c, in_h, in_w, out_c, k) = (2, 5, 4, 3, 2);
        let x = ramp(in_c * in_h * in_w, 0.19);
        let w = ramp(out_c * in_c * k * k, 0.29);
        let b = ramp(out_c, 0.41);
        let (oh, ow) = conv2d_output_dims(in_h, in_w, k, k, 1, 1).unwrap();
        let mut plain = vec![0.0f32; out_c * oh * ow];
        conv2d_into(&x, &w, &b, &mut plain, in_c, in_h, in_w, out_c, k, k, 1, 1).unwrap();
        let mut fused = vec![0.0f32; out_c * oh * ow];
        let digest =
            conv2d_into_digest(&x, &w, &b, &mut fused, in_c, in_h, in_w, out_c, k, k, 1, 1)
                .unwrap();
        assert_eq!(fused, plain);
        assert_eq!(digest, crate::crc::digest_f32(&w, &b));
    }

    #[test]
    fn fused_q16_kernels_match_plain_and_reference_digest() {
        let q = |v: &[f32]| -> Vec<Q16_16> { v.iter().map(|&f| Q16_16::from_f32(f)).collect() };
        let (inputs, outputs) = (7, 3);
        let w = q(&ramp(inputs * outputs, 0.31));
        let b = q(&ramp(outputs, 0.13));
        let x = q(&ramp(inputs, 0.27));
        let mut plain = vec![Q16_16::ZERO; outputs];
        dense_q16_into(&w, &b, &x, &mut plain, inputs, outputs).unwrap();
        let mut fused = vec![Q16_16::ZERO; outputs];
        let digest = dense_q16_into_digest(&w, &b, &x, &mut fused, inputs, outputs).unwrap();
        assert_eq!(fused, plain);
        assert_eq!(digest, crate::crc::digest_q16(&w, &b));

        let (in_c, in_h, in_w, out_c, k) = (1, 4, 4, 2, 2);
        let cx = q(&ramp(in_c * in_h * in_w, 0.17));
        let cw = q(&ramp(out_c * in_c * k * k, 0.21));
        let cb = q(&ramp(out_c, 0.33));
        let (oh, ow) = conv2d_output_dims(in_h, in_w, k, k, 1, 0).unwrap();
        let mut cplain = vec![Q16_16::ZERO; out_c * oh * ow];
        conv2d_q16_into(
            &cx,
            &cw,
            &cb,
            &mut cplain,
            in_c,
            in_h,
            in_w,
            out_c,
            k,
            k,
            1,
            0,
        )
        .unwrap();
        let mut cfused = vec![Q16_16::ZERO; out_c * oh * ow];
        let cdigest = conv2d_q16_into_digest(
            &cx,
            &cw,
            &cb,
            &mut cfused,
            in_c,
            in_h,
            in_w,
            out_c,
            k,
            k,
            1,
            0,
        )
        .unwrap();
        assert_eq!(cfused, cplain);
        assert_eq!(cdigest, crate::crc::digest_q16(&cw, &cb));
    }

    #[test]
    fn batched_dense_is_bit_identical_to_per_item() {
        let (inputs, outputs, batch, stride) = (9, 4, 5, 12); // stride > rows: arena slack
        let w = ramp(inputs * outputs, 0.37);
        let b = ramp(outputs, 0.11);
        let mut src = vec![0.0f32; batch * stride];
        for item in 0..batch {
            let x = ramp(inputs, 0.1 + item as f32 * 0.07);
            src[item * stride..item * stride + inputs].copy_from_slice(&x);
        }
        for kernel in [DenseKernel::Exact, DenseKernel::Chunked] {
            let mut dst = vec![0.0f32; batch * stride];
            dense_batch_into_with(
                kernel, &w, &b, &src, &mut dst, inputs, outputs, batch, stride, stride,
            )
            .unwrap();
            for item in 0..batch {
                let mut solo = vec![0.0f32; outputs];
                let x = &src[item * stride..item * stride + inputs];
                dense_into_with(kernel, &w, &b, x, &mut solo, inputs, outputs).unwrap();
                assert_eq!(
                    &dst[item * stride..item * stride + outputs],
                    solo.as_slice(),
                    "{kernel:?} item {item}"
                );
            }
        }
    }

    #[test]
    fn batched_dense_q16_is_bit_identical_to_per_item() {
        let q = |v: &[f32]| -> Vec<Q16_16> { v.iter().map(|&f| Q16_16::from_f32(f)).collect() };
        let (inputs, outputs, batch, stride) = (6, 3, 4, 8);
        let w = q(&ramp(inputs * outputs, 0.37));
        let b = q(&ramp(outputs, 0.11));
        let mut src = vec![Q16_16::ZERO; batch * stride];
        for item in 0..batch {
            let x = q(&ramp(inputs, 0.1 + item as f32 * 0.07));
            src[item * stride..item * stride + inputs].copy_from_slice(&x);
        }
        let mut dst = vec![Q16_16::ZERO; batch * stride];
        dense_q16_batch_into(
            &w, &b, &src, &mut dst, inputs, outputs, batch, stride, stride,
        )
        .unwrap();
        for item in 0..batch {
            let mut solo = vec![Q16_16::ZERO; outputs];
            let x = &src[item * stride..item * stride + inputs];
            dense_q16_into(&w, &b, x, &mut solo, inputs, outputs).unwrap();
            assert_eq!(
                &dst[item * stride..item * stride + outputs],
                solo.as_slice(),
                "item {item}"
            );
        }
    }

    #[test]
    fn batched_dense_rejects_bad_arena_geometry() {
        let w = [1.0f32; 6];
        let b = [0.0f32; 3];
        let src = [0.0f32; 8];
        let mut dst = [0.0f32; 8];
        // Stride smaller than the input row.
        assert!(
            dense_batch_into_with(DenseKernel::Exact, &w, &b, &src, &mut dst, 2, 3, 4, 1, 4)
                .is_err()
        );
        // Arena too short for the batch.
        assert!(
            dense_batch_into_with(DenseKernel::Exact, &w, &b, &src, &mut dst, 2, 3, 5, 4, 4)
                .is_err()
        );
        // Empty batch is a no-op.
        dense_batch_into_with(DenseKernel::Exact, &w, &b, &src, &mut dst, 2, 3, 0, 4, 4).unwrap();
    }
}
