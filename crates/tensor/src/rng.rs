//! Deterministic pseudo-random number generation.
//!
//! Everything random in the SAFEXPLAIN workspace — weight initialisation,
//! synthetic workload generation, time-randomised cache placement, fault
//! injection — flows through [`DetRng`], a small splitmix64/xoshiro256**
//! generator with an explicit seed. Nothing ever reads the OS entropy pool
//! or the wall clock, so every experiment in `EXPERIMENTS.md` is exactly
//! reproducible from its stated seed.
//!
//! The generator is *not* cryptographic; it is a simulation PRNG with good
//! statistical properties (xoshiro256** passes BigCrush).

/// A deterministic, seedable pseudo-random number generator
/// (xoshiro256** seeded via splitmix64).
///
/// # Examples
///
/// ```
/// use safex_tensor::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DetRng {
    state: [u64; 4],
    /// Cached second normal deviate from Box-Muller.
    gauss_spare: Option<f64>,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators built from the same seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        // Expand the seed through splitmix64 so that nearby seeds give
        // uncorrelated initial states.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next_sm(), next_sm(), next_sm(), next_sm()];
        DetRng {
            state,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Useful for giving each component of a simulation its own stream so
    /// that adding draws to one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> Self {
        let s = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        DetRng::new(s)
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next value uniformly in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next value uniformly in `[0, 1)` as `f32`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// Returns 0 when `bound == 0` (total behaviour; callers that consider
    /// a zero bound an error should validate beforehand).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Unbiased rejection sampling via 128-bit multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 bounds inverted");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, bound)`; 0 when `bound == 0`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "range_f64 bounds invalid"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal deviate (Box-Muller, deterministic).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(spare) = self.gauss_spare.take() {
            return spare;
        }
        // Rejection-free polar-less Box-Muller on (0,1] uniforms.
        let u1 = 1.0 - self.next_f64(); // in (0, 1], avoids ln(0)
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be non-negative"
        );
        mean + std_dev * self.next_gaussian()
    }

    /// Exponential deviate with the given rate parameter λ.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Fisher-Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (order unspecified but
    /// deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: first k positions become the sample.
        for i in 0..k {
            let j = i + self.below_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(4);
        for bound in [1u64, 2, 3, 7, 100] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn below_covers_small_range() {
        let mut rng = DetRng::new(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = DetRng::new(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::new(8);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(9);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = DetRng::new(11);
        let sample = rng.sample_indices(20, 8);
        assert_eq!(sample.len(), 8);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
        assert!(sample.iter().all(|&i| i < 20));
    }

    #[test]
    fn fork_streams_independent_of_parent_use() {
        let mut parent1 = DetRng::new(12);
        let mut child1 = parent1.fork(1);
        let mut parent2 = DetRng::new(12);
        let mut child2 = parent2.fork(1);
        assert_eq!(child1.next_u64(), child2.next_u64());
        // Forked child differs from a differently-numbered stream.
        let mut parent3 = DetRng::new(12);
        let mut child3 = parent3.fork(2);
        assert_ne!(child1.next_u64(), child3.next_u64());
    }

    #[test]
    fn range_helpers() {
        let mut rng = DetRng::new(13);
        for _ in 0..100 {
            let v = rng.range_u64(5, 9);
            assert!((5..=9).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }
}
