//! Saturating binary fixed-point arithmetic.
//!
//! Fixed-point numbers give the quantised inference path of `safex-nn` its
//! bit-exact cross-platform determinism: unlike IEEE-754 floats there is no
//! rounding-mode, FMA-contraction, or x87-extended-precision variability —
//! the same inputs produce the same bits on every conforming platform.
//!
//! Two formats are provided:
//!
//! * [`Q16_16`]: 16 integer bits, 16 fractional bits. Range ±32768,
//!   resolution 2⁻¹⁶ ≈ 1.5e-5. Used for activations and weights.
//! * [`Q8_24`]: 8 integer bits, 24 fractional bits. Range ±128, resolution
//!   2⁻²⁴ ≈ 6e-8. Used where extra precision matters (normalised inputs,
//!   softmax temperatures).
//!
//! All arithmetic **saturates** on overflow rather than wrapping or
//! panicking — the behaviour mandated by automotive fixed-point coding
//! standards, where a saturated value is a bounded error while a wrapped
//! value is an unbounded one.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! fixed_type {
    ($(#[$doc:meta])* $name:ident, $frac:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[repr(transparent)]
        pub struct $name(i32);

        impl $name {
            /// Number of fractional bits in this format.
            pub const FRAC_BITS: u32 = $frac;
            /// The value zero.
            pub const ZERO: Self = Self(0);
            /// The value one.
            pub const ONE: Self = Self(1 << $frac);
            /// Largest representable value.
            pub const MAX: Self = Self(i32::MAX);
            /// Smallest (most negative) representable value.
            pub const MIN: Self = Self(i32::MIN);
            /// Smallest positive increment (one least-significant bit).
            pub const EPSILON: Self = Self(1);

            /// Creates a fixed-point value from its raw bit representation.
            pub const fn from_bits(bits: i32) -> Self {
                Self(bits)
            }

            /// Returns the raw bit representation.
            pub const fn to_bits(self) -> i32 {
                self.0
            }

            /// Converts from an `f32`, saturating at the format bounds.
            ///
            /// NaN converts to zero (the least-surprising total behaviour;
            /// callers that must distinguish NaN should check before
            /// converting).
            pub fn from_f32(v: f32) -> Self {
                if v.is_nan() {
                    return Self::ZERO;
                }
                let scaled = (v as f64) * (1i64 << $frac) as f64;
                if scaled >= i32::MAX as f64 {
                    Self::MAX
                } else if scaled <= i32::MIN as f64 {
                    Self::MIN
                } else {
                    // Round to nearest, ties away from zero: deterministic
                    // and matches common DSP quantisers.
                    Self(scaled.round() as i32)
                }
            }

            /// Converts from an `f64`, saturating at the format bounds.
            pub fn from_f64(v: f64) -> Self {
                if v.is_nan() {
                    return Self::ZERO;
                }
                let scaled = v * f64::from(1i32 << $frac);
                if scaled >= i32::MAX as f64 {
                    Self::MAX
                } else if scaled <= i32::MIN as f64 {
                    Self::MIN
                } else {
                    Self(scaled.round() as i32)
                }
            }

            /// Converts from an integer, saturating at the format bounds.
            pub fn from_int(v: i32) -> Self {
                let shifted = (v as i64) << $frac;
                if shifted > i32::MAX as i64 {
                    Self::MAX
                } else if shifted < i32::MIN as i64 {
                    Self::MIN
                } else {
                    Self(shifted as i32)
                }
            }

            /// Converts to `f32` (exact whenever the value fits in an f32
            /// mantissa, which all Q-format values do for magnitude < 2²⁴).
            pub fn to_f32(self) -> f32 {
                (self.0 as f64 / f64::from(1i32 << $frac)) as f32
            }

            /// Converts to `f64` (always exact).
            pub fn to_f64(self) -> f64 {
                self.0 as f64 / f64::from(1i32 << $frac)
            }

            /// Saturating addition.
            pub fn saturating_add(self, rhs: Self) -> Self {
                Self(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction.
            pub fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Saturating multiplication.
            ///
            /// The product is computed in 64 bits and shifted back with
            /// round-to-nearest before saturation, so no precision is lost
            /// to intermediate overflow.
            pub fn saturating_mul(self, rhs: Self) -> Self {
                let wide = (self.0 as i64) * (rhs.0 as i64);
                // Round to nearest (ties toward +inf): add half an LSB, then
                // arithmetic shift. Exact for all representable products.
                let half = 1i64 << ($frac - 1);
                Self(clamp_i64((wide + half) >> $frac))
            }

            /// Saturating division.
            ///
            /// Division by zero saturates to [`Self::MAX`] or [`Self::MIN`]
            /// depending on the sign of the dividend (zero ÷ zero gives
            /// [`Self::MAX`]). FUSA rationale: a saturated bound is a
            /// detectable, bounded error; a panic in a control loop is not.
            pub fn saturating_div(self, rhs: Self) -> Self {
                if rhs.0 == 0 {
                    return if self.0 < 0 { Self::MIN } else { Self::MAX };
                }
                let wide = ((self.0 as i64) << $frac) / (rhs.0 as i64);
                Self(clamp_i64(wide))
            }

            /// Absolute value, saturating (`|MIN|` clamps to `MAX`).
            pub fn saturating_abs(self) -> Self {
                Self(self.0.saturating_abs())
            }

            /// Whether this value sits at a saturation bound.
            pub fn is_saturated(self) -> bool {
                self.0 == i32::MAX || self.0 == i32::MIN
            }

            /// Returns the smaller of two values.
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 { self } else { other }
            }

            /// Returns the larger of two values.
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 { self } else { other }
            }

            /// Clamps to the inclusive range `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp range inverted");
                self.max(lo).min(hi)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                self.saturating_add(rhs)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                self.saturating_sub(rhs)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Mul for $name {
            type Output = Self;
            fn mul(self, rhs: Self) -> Self {
                self.saturating_mul(rhs)
            }
        }

        impl Div for $name {
            type Output = Self;
            fn div(self, rhs: Self) -> Self {
                self.saturating_div(rhs)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(self.0.saturating_neg())
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + x)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.to_f64())
            }
        }

        impl From<i16> for $name {
            fn from(v: i16) -> Self {
                Self::from_int(v as i32)
            }
        }
    };
}

fn clamp_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

fixed_type!(
    /// Q16.16 fixed point: 16 integer bits, 16 fractional bits.
    ///
    /// Range approximately ±32768 with resolution 2⁻¹⁶. The workhorse
    /// format for quantised weights and activations.
    ///
    /// # Examples
    ///
    /// ```
    /// use safex_tensor::fixed::Q16_16;
    /// let x = Q16_16::from_f32(-0.75);
    /// assert_eq!(x.to_f32(), -0.75);
    /// assert_eq!((x + Q16_16::ONE).to_f32(), 0.25);
    /// ```
    Q16_16,
    16
);

fixed_type!(
    /// Q8.24 fixed point: 8 integer bits, 24 fractional bits.
    ///
    /// Range approximately ±128 with resolution 2⁻²⁴. Used where inputs
    /// are normalised and extra fractional precision matters.
    ///
    /// # Examples
    ///
    /// ```
    /// use safex_tensor::fixed::Q8_24;
    /// let x = Q8_24::from_f64(0.5);
    /// assert_eq!((x * x).to_f64(), 0.25);
    /// ```
    Q8_24,
    24
);

impl Q16_16 {
    /// Widens to [`Q8_24`], saturating if the value exceeds ±128.
    pub fn to_q8_24(self) -> Q8_24 {
        let wide = (self.to_bits() as i64) << 8;
        Q8_24::from_bits(clamp_i64(wide))
    }
}

impl Q8_24 {
    /// Narrows to [`Q16_16`], rounding to nearest (ties toward +inf).
    pub fn to_q16_16(self) -> Q16_16 {
        let bits = self.to_bits() as i64;
        let half = 1i64 << 7;
        Q16_16::from_bits(clamp_i64((bits + half) >> 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_fractions() {
        for v in [-2.5f32, -1.0, -0.25, 0.0, 0.5, 1.0, 3.75, 100.125] {
            assert_eq!(Q16_16::from_f32(v).to_f32(), v, "q16 round trip {v}");
            assert_eq!(Q8_24::from_f32(v).to_f32(), v, "q24 round trip {v}");
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Q16_16::ONE.to_f32(), 1.0);
        assert_eq!(Q16_16::ZERO.to_f32(), 0.0);
        assert_eq!(Q8_24::ONE.to_f64(), 1.0);
    }

    #[test]
    fn add_saturates() {
        let big = Q16_16::from_f32(30000.0);
        let sum = big + big + big;
        assert_eq!(sum, Q16_16::MAX);
        assert!(sum.is_saturated());
    }

    #[test]
    fn sub_saturates() {
        let low = Q16_16::MIN;
        assert_eq!(low - Q16_16::ONE, Q16_16::MIN);
    }

    #[test]
    fn mul_exact() {
        let x = Q16_16::from_f32(1.5);
        let y = Q16_16::from_f32(-2.0);
        assert_eq!((x * y).to_f32(), -3.0);
    }

    #[test]
    fn mul_saturates() {
        let big = Q16_16::from_f32(30000.0);
        assert_eq!(big * big, Q16_16::MAX);
        assert_eq!(big * -big, Q16_16::MIN);
    }

    #[test]
    fn mul_rounds_to_nearest() {
        // EPSILON * 0.5 = half an LSB -> rounds away from zero to EPSILON.
        let half = Q16_16::from_f32(0.5);
        assert_eq!(Q16_16::EPSILON * half, Q16_16::EPSILON);
    }

    #[test]
    fn div_exact() {
        let x = Q16_16::from_f32(3.0);
        let y = Q16_16::from_f32(4.0);
        assert_eq!((x / y).to_f32(), 0.75);
    }

    #[test]
    fn div_by_zero_saturates() {
        assert_eq!(Q16_16::ONE / Q16_16::ZERO, Q16_16::MAX);
        assert_eq!(-Q16_16::ONE / Q16_16::ZERO, Q16_16::MIN);
        assert_eq!(Q16_16::ZERO / Q16_16::ZERO, Q16_16::MAX);
    }

    #[test]
    fn nan_converts_to_zero() {
        assert_eq!(Q16_16::from_f32(f32::NAN), Q16_16::ZERO);
        assert_eq!(Q8_24::from_f64(f64::NAN), Q8_24::ZERO);
    }

    #[test]
    fn infinity_saturates() {
        assert_eq!(Q16_16::from_f32(f32::INFINITY), Q16_16::MAX);
        assert_eq!(Q16_16::from_f32(f32::NEG_INFINITY), Q16_16::MIN);
    }

    #[test]
    fn neg_min_saturates() {
        assert_eq!(-Q16_16::MIN, Q16_16::MAX);
        assert_eq!(Q16_16::MIN.saturating_abs(), Q16_16::MAX);
    }

    #[test]
    fn ordering() {
        let a = Q16_16::from_f32(-1.0);
        let b = Q16_16::from_f32(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Q16_16::ZERO.clamp(a, b), Q16_16::ZERO);
        assert_eq!(Q16_16::from_f32(5.0).clamp(a, b), b);
    }

    #[test]
    fn sum_iterator() {
        let total: Q16_16 = (1..=4).map(Q16_16::from_int).sum();
        assert_eq!(total.to_f32(), 10.0);
    }

    #[test]
    fn format_conversion_widen_narrow() {
        let x = Q16_16::from_f32(1.25);
        assert_eq!(x.to_q8_24().to_f64(), 1.25);
        assert_eq!(x.to_q8_24().to_q16_16(), x);
        // Widening saturates beyond +-128.
        assert_eq!(Q16_16::from_f32(1000.0).to_q8_24(), Q8_24::MAX);
    }

    #[test]
    fn display_shows_decimal() {
        assert_eq!(Q16_16::from_f32(2.5).to_string(), "2.5");
    }

    #[test]
    fn from_int_saturates() {
        assert_eq!(Q16_16::from_int(100_000), Q16_16::MAX);
        assert_eq!(Q16_16::from_int(-100_000), Q16_16::MIN);
        assert_eq!(Q16_16::from_int(3).to_f32(), 3.0);
    }

    #[test]
    fn from_i16_total() {
        assert_eq!(Q16_16::from(i16::MAX).to_f32(), 32767.0);
        assert_eq!(Q8_24::from(2i16).to_f64(), 2.0);
    }
}
