//! Descriptive statistics over `f64` samples.
//!
//! Shared by the timing-analysis crate (execution-time distributions), the
//! supervision crate (score distributions), and the benchmark harness. All
//! routines use fixed evaluation order so repeated analyses of the same
//! sample vector produce identical results.

use crate::error::TensorError;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n-1) standard deviation; 0 for a single sample.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
}

/// Computes summary statistics.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for an empty sample and
/// [`TensorError::InvalidArgument`] if any value is non-finite.
pub fn summary(samples: &[f64]) -> Result<Summary, TensorError> {
    if samples.is_empty() {
        return Err(TensorError::EmptyInput);
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(TensorError::InvalidArgument(
            "samples must be finite".into(),
        ));
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let min = samples.iter().fold(f64::INFINITY, |m, &x| m.min(x));
    let max = samples.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    Ok(Summary {
        count: n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
        median: quantile(samples, 0.5)?,
    })
}

/// The `q`-quantile (`0 <= q <= 1`) with linear interpolation between order
/// statistics (type-7, the R/numpy default).
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for an empty sample or
/// [`TensorError::InvalidArgument`] for `q` outside `[0, 1]` or non-finite
/// samples.
pub fn quantile(samples: &[f64], q: f64) -> Result<f64, TensorError> {
    if samples.is_empty() {
        return Err(TensorError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(TensorError::InvalidArgument(format!(
            "quantile {q} outside [0, 1]"
        )));
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(TensorError::InvalidArgument(
            "samples must be finite".into(),
        ));
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Histogram with equal-width bins over `[lo, hi)`; the final bin is
/// closed on the right so `hi` itself is counted.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` or above `hi`.
    outliers: u64,
}

impl Histogram {
    /// Builds a histogram of `samples` over `[lo, hi]` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for `bins == 0`, a
    /// degenerate range, or non-finite bounds.
    pub fn new(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Self, TensorError> {
        if bins == 0 {
            return Err(TensorError::InvalidArgument("bins must be non-zero".into()));
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(TensorError::InvalidArgument(format!(
                "invalid histogram range [{lo}, {hi}]"
            )));
        }
        let mut counts = vec![0u64; bins];
        let mut outliers = 0u64;
        let width = (hi - lo) / bins as f64;
        for &x in samples {
            if !x.is_finite() || x < lo || x > hi {
                outliers += 1;
                continue;
            }
            let mut bin = ((x - lo) / width) as usize;
            if bin >= bins {
                bin = bins - 1; // x == hi lands in the last bin
            }
            counts[bin] += 1;
        }
        Ok(Histogram {
            lo,
            hi,
            counts,
            outliers,
        })
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples outside the histogram range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// The `(low, high)` edges of bin `i`, or `None` if out of range.
    pub fn bin_edges(&self, i: usize) -> Option<(f64, f64)> {
        if i >= self.counts.len() {
            return None;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        Some((self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width))
    }

    /// Total in-range sample count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample has zero variance.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on length disagreement and
/// [`TensorError::EmptyInput`] for empty samples.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, TensorError> {
    if x.is_empty() {
        return Err(TensorError::EmptyInput);
    }
    if x.len() != y.len() {
        return Err(TensorError::LengthMismatch {
            expected: x.len(),
            actual: y.len(),
        });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Empirical exceedance probability: fraction of samples strictly greater
/// than `threshold`.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for an empty sample.
pub fn exceedance(samples: &[f64], threshold: f64) -> Result<f64, TensorError> {
    if samples.is_empty() {
        return Err(TensorError::EmptyInput);
    }
    let count = samples.iter().filter(|&&x| x > threshold).count();
    Ok(count as f64 / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = summary(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = summary(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert_eq!(summary(&[]), Err(TensorError::EmptyInput));
        assert!(summary(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 40.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 25.0);
        assert!((quantile(&xs, 0.25).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_handles_unsorted() {
        let xs = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(quantile(&xs, 0.5).unwrap(), 25.0);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn histogram_bins_and_edges() {
        let xs = [0.5, 1.5, 1.6, 2.5, 3.0];
        let h = Histogram::new(&xs, 0.0, 3.0, 3).unwrap();
        assert_eq!(h.counts(), &[1, 2, 2]); // 3.0 lands in last bin
        assert_eq!(h.outliers(), 0);
        assert_eq!(h.bin_edges(0), Some((0.0, 1.0)));
        assert_eq!(h.bin_edges(3), None);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_counts_outliers() {
        let xs = [-1.0, 0.5, 10.0, f64::NAN];
        let h = Histogram::new(&xs, 0.0, 1.0, 2).unwrap();
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn histogram_rejects_bad_args() {
        assert!(Histogram::new(&[], 0.0, 1.0, 0).is_err());
        assert!(Histogram::new(&[], 1.0, 1.0, 4).is_err());
        assert!(Histogram::new(&[], 0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_length_mismatch() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn exceedance_fraction() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exceedance(&xs, 2.5).unwrap(), 0.5);
        assert_eq!(exceedance(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(exceedance(&xs, 4.0).unwrap(), 0.0);
    }
}
