//! CRC-32 primitives and the streaming verification digest the fused
//! kernels accumulate.
//!
//! The hardened engines in `safex-nn` pin every parametric layer to a
//! CRC-32 golden checksum and (optionally) an ECC parity sidecar. Until
//! PR 8 that verification was a *second* sweep over weight memory that
//! the inference pass had just streamed — the dominant share of the
//! hardening tax. This module hosts the checksum machinery at the tensor
//! layer so the kernels in [`crate::ops`] can fold it into the matmul
//! sweep itself:
//!
//! * [`crc32`] / [`crc32_words`] — the one-shot checksums (moved here
//!   from `safex-nn`, which re-exports them unchanged).
//! * [`CrcAccumulator`] — a streaming accumulator that is bit-identical
//!   to [`crc32_words`] for *any* chunking of the word stream, so a
//!   kernel can feed it one cache-hot weight row at a time.
//! * [`WeightDigest`] — what a fused sweep returns: the CRC-32 word
//!   checksum plus the XOR parity fold the ECC sidecar's column
//!   signature is built from.

use crate::fixed::Q16_16;

/// Carry-less-multiply CRC-32 folding for the bulk interior of large
/// buffers (reflected polynomial `0xEDB8_8320`), after the Intel
/// PCLMULQDQ white paper as deployed in zlib: fold 64-byte blocks across
/// four 128-bit lanes, reduce to one lane, then Barrett-reduce back to
/// the 32-bit running register.
///
/// Bit-identical to the slicing tables for any input — it computes the
/// same polynomial remainder, just ~an order of magnitude faster — so the
/// fused verify-on-read kernels can checksum entire weight matrices for a
/// small fraction of the inference cost. Heads, tails, and machines
/// without the instructions stay on the table path.
#[cfg(all(target_arch = "x86_64", target_endian = "little"))]
mod clmul {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_clmulepi64_si128, _mm_cvtsi32_si128, _mm_extract_epi32,
        _mm_set_epi64x, _mm_setr_epi32, _mm_srli_si128, _mm_xor_si128,
    };
    use std::sync::OnceLock;

    // Folding constants for the reflected CRC-32 polynomial: bit-reflected
    // `x^T mod P` factors (T = 4*128+64, 4*128, 128+64, 128, 64) plus the
    // Barrett pair (P', mu). These are the published zlib/Intel constants;
    // the unit tests pin the whole path against the slicing tables.
    const K1: i64 = 0x0000_0001_5444_2bd4;
    const K2: i64 = 0x0000_0001_c6e4_1596;
    const K3: i64 = 0x0000_0001_7519_97d0;
    const K4: i64 = 0x0000_0000_ccaa_009e;
    const K5: i64 = 0x0000_0001_63cd_6124;
    const P_PRIME: i64 = 0x0000_0001_db71_0641;
    const MU: i64 = 0x0000_0001_f701_1641;

    /// Runtime check for `pclmulqdq` + `sse4.1`, detected once.
    pub fn available() -> bool {
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("sse4.1")
        })
    }

    /// Packs four words (via `to_bits`) into one 128-bit lane in stream
    /// order. LLVM fuses the shift/or assembly into plain vector loads,
    /// so no raw-pointer access is needed anywhere in the fold.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    #[inline]
    fn lane<T: Copy>(quad: &[T], to_bits: &impl Fn(T) -> u32) -> __m128i {
        let lo = to_bits(quad[0]) as u64 | (to_bits(quad[1]) as u64) << 32;
        let hi = to_bits(quad[2]) as u64 | (to_bits(quad[3]) as u64) << 32;
        _mm_set_epi64x(hi as i64, lo as i64)
    }

    /// Advances the (non-inverted) CRC register over `values`, whose
    /// length must be a multiple of 4 words no smaller than 16.
    ///
    /// This is the only dispatch into `#[target_feature]` code in the
    /// workspace: the intrinsics themselves are safe to call inside the
    /// annotated functions (the features are statically enabled there),
    /// and [`available`] has proven at runtime that the CPU executes
    /// them, so the single `unsafe` block below carries exactly that
    /// obligation and nothing else — no raw pointers, no transmutes, no
    /// aliasing.
    pub fn fold_words<T: Copy>(crc: u32, values: &[T], to_bits: impl Fn(T) -> u32) -> u32 {
        debug_assert!(available());
        debug_assert!(values.len() >= 16 && values.len().is_multiple_of(4));
        #[allow(unsafe_code)]
        // SAFETY: `available()` confirmed pclmulqdq + sse4.1 on this CPU.
        unsafe {
            fold_impl(crc, values, &to_bits)
        }
    }

    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    fn fold_impl<T: Copy>(crc: u32, values: &[T], to_bits: &impl Fn(T) -> u32) -> u32 {
        let mut rest = values;

        // Seed four lanes from the first 64-byte block; the running
        // register XORs into the low dword of the stream, exactly as the
        // table recurrence would consume it.
        let k1k2 = _mm_set_epi64x(K2, K1);
        let mut x1 = lane(&rest[0..4], to_bits);
        let mut x2 = lane(&rest[4..8], to_bits);
        let mut x3 = lane(&rest[8..12], to_bits);
        let mut x4 = lane(&rest[12..16], to_bits);
        x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(crc as i32));
        rest = &rest[16..];

        // Fold 64 bytes per iteration, four independent lanes.
        while rest.len() >= 16 {
            let x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
            let x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
            let x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
            let x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
            x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
            x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
            x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), lane(&rest[0..4], to_bits));
            x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), lane(&rest[4..8], to_bits));
            x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), lane(&rest[8..12], to_bits));
            x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), lane(&rest[12..16], to_bits));
            rest = &rest[16..];
        }

        // Reduce the four lanes to one, then fold any remaining 16-byte
        // blocks into it.
        let k3k4 = _mm_set_epi64x(K4, K3);
        for extra in [x2, x3, x4] {
            let x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), extra);
        }
        while rest.len() >= 4 {
            let x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), lane(&rest[0..4], to_bits));
            rest = &rest[4..];
        }

        // 128 -> 64 bits.
        let mask32 = _mm_setr_epi32(-1, 0, -1, 0);
        let upper = _mm_clmulepi64_si128(x1, k3k4, 0x10);
        x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), upper);
        let k5 = _mm_set_epi64x(0, K5);
        let high = _mm_srli_si128(x1, 4);
        x1 = _mm_and_si128(x1, mask32);
        x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
        x1 = _mm_xor_si128(x1, high);

        // Barrett reduction 64 -> 32 bits.
        let poly = _mm_set_epi64x(MU, P_PRIME);
        let mut t = _mm_and_si128(x1, mask32);
        t = _mm_clmulepi64_si128(t, poly, 0x10);
        t = _mm_and_si128(t, mask32);
        t = _mm_clmulepi64_si128(t, poly, 0x00);
        x1 = _mm_xor_si128(x1, t);
        _mm_extract_epi32(x1, 1) as u32
    }
}

/// Slicing tables for CRC-32 (IEEE 802.3, reflected), computed at compile
/// time: no lazy initialization, no per-call table rebuild, and the
/// constants land in read-only data.
///
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; `CRC_TABLES[k]`
/// advances a byte through `k` additional zero bytes, which is what the
/// slicing-by-4/8 steps in [`crc32_words`] consume.
const CRC_TABLES: [[u32; 256]; 8] = make_crc_tables();

const fn make_crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (crc & 1).wrapping_neg());
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// CRC-32 (IEEE 802.3, reflected) over a byte stream. Table-driven,
/// dependency-free; the lookup table is a compile-time constant.
pub fn crc32(bytes: impl IntoIterator<Item = u8>) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for b in bytes {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// CRC-32 over a stream of 32-bit words taken as little-endian bytes —
/// bit-identical to [`crc32`] over the equivalent byte stream, but
/// processed 8 bytes per step (slicing-by-8 over word pairs, slicing-by-4
/// on an odd tail word).
///
/// This is the checksum the hardened hot path runs: model parameters are
/// `f32`/`Q16.16` buffers, i.e. natural 32-bit word streams, and the wide
/// step is what makes per-decision verification affordable (see the E11
/// overhead table).
pub fn crc32_words(words: impl IntoIterator<Item = u32>) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut it = words.into_iter();
    while let Some(w0) = it.next() {
        let a = crc ^ w0;
        match it.next() {
            Some(w1) => {
                crc = t[7][(a & 0xFF) as usize]
                    ^ t[6][((a >> 8) & 0xFF) as usize]
                    ^ t[5][((a >> 16) & 0xFF) as usize]
                    ^ t[4][(a >> 24) as usize]
                    ^ t[3][(w1 & 0xFF) as usize]
                    ^ t[2][((w1 >> 8) & 0xFF) as usize]
                    ^ t[1][((w1 >> 16) & 0xFF) as usize]
                    ^ t[0][(w1 >> 24) as usize];
            }
            None => {
                crc = t[3][(a & 0xFF) as usize]
                    ^ t[2][((a >> 8) & 0xFF) as usize]
                    ^ t[1][((a >> 16) & 0xFF) as usize]
                    ^ t[0][(a >> 24) as usize];
                break;
            }
        }
    }
    !crc
}

/// What one fused kernel sweep attests about the parameters it streamed.
///
/// `crc` is bit-identical to [`crc32_words`] over the layer's
/// weights-then-bias word stream (the golden-checksum order); `parity`
/// is the XOR fold of the same words, which equals the XOR of the ECC
/// sidecar's per-block column parities — a second, independent signature
/// that rides along for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WeightDigest {
    /// CRC-32 over the streamed words, identical to [`crc32_words`].
    pub crc: u32,
    /// XOR fold of the streamed words (the ECC column-parity signature).
    pub parity: u32,
}

/// Streaming CRC-32 + parity accumulator.
///
/// Feeding it any sequence of slices whose concatenation is the word
/// stream produces the same [`WeightDigest`] as a single
/// [`crc32_words`] pass — chunk boundaries are invisible because an odd
/// trailing word is held back (`pending`) and paired with the first word
/// of the next slice, preserving the slicing-by-8 pair alignment. That
/// is exactly what the fused kernels need: they digest one weight row at
/// a time, while it is still cache-hot from the MAC loop, and rows may
/// have odd lengths.
#[derive(Debug, Clone)]
pub struct CrcAccumulator {
    crc: u32,
    parity: u32,
    pending: Option<u32>,
}

impl Default for CrcAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl CrcAccumulator {
    /// Starts a fresh digest (CRC preconditioned, empty parity).
    pub fn new() -> Self {
        CrcAccumulator {
            crc: 0xFFFF_FFFF,
            parity: 0,
            pending: None,
        }
    }

    /// One slicing-by-8 step over an aligned word pair.
    #[inline]
    fn pair_step(&mut self, w0: u32, w1: u32) {
        let t = &CRC_TABLES;
        let a = self.crc ^ w0;
        self.crc = t[7][(a & 0xFF) as usize]
            ^ t[6][((a >> 8) & 0xFF) as usize]
            ^ t[5][((a >> 16) & 0xFF) as usize]
            ^ t[4][(a >> 24) as usize]
            ^ t[3][(w1 & 0xFF) as usize]
            ^ t[2][((w1 >> 8) & 0xFF) as usize]
            ^ t[1][((w1 >> 16) & 0xFF) as usize]
            ^ t[0][(w1 >> 24) as usize];
    }

    /// Slice fast path shared by the typed `update_*` entry points.
    ///
    /// A held odd word is flushed first to keep chunk boundaries
    /// invisible; then, on x86-64 with `pclmulqdq`, the bulk interior is
    /// folded 64 bytes at a time by [`clmul::fold_words`] (the parity XOR
    /// over the same prefix auto-vectorises); the remainder runs through
    /// the slicing-by-8 pair step. Every path computes the identical CRC
    /// — the fold is an algebraic shortcut, not a different checksum.
    #[inline]
    fn update_with<T: Copy>(&mut self, values: &[T], to_bits: impl Fn(T) -> u32) {
        let mut rest = values;
        if let Some(held) = self.pending {
            let Some((&first, tail)) = rest.split_first() else {
                return;
            };
            let w = to_bits(first);
            self.parity ^= w;
            self.pair_step(held, w);
            self.pending = None;
            rest = tail;
        }
        #[cfg(all(target_arch = "x86_64", target_endian = "little"))]
        {
            // 16-byte granules, at least one 64-byte block.
            let fold_len = rest.len() & !3;
            if fold_len >= 16 && clmul::available() {
                let (head, tail) = rest.split_at(fold_len);
                for &v in head {
                    self.parity ^= to_bits(v);
                }
                self.crc = clmul::fold_words(self.crc, head, &to_bits);
                rest = tail;
            }
        }
        let mut pairs = rest.chunks_exact(2);
        for pair in &mut pairs {
            let w0 = to_bits(pair[0]);
            let w1 = to_bits(pair[1]);
            self.parity ^= w0 ^ w1;
            self.pair_step(w0, w1);
        }
        if let Some(&last) = pairs.remainder().first() {
            let w = to_bits(last);
            self.parity ^= w;
            self.pending = Some(w);
        }
    }

    /// Digests a slice of raw 32-bit words.
    pub fn update_words(&mut self, words: &[u32]) {
        self.update_with(words, |w| w);
    }

    /// Digests an `f32` buffer as its IEEE-754 bit words.
    pub fn update_f32(&mut self, values: &[f32]) {
        self.update_with(values, f32::to_bits);
    }

    /// Digests a Q16.16 buffer as its raw bit words.
    pub fn update_q16(&mut self, values: &[Q16_16]) {
        self.update_with(values, |q| q.to_bits() as u32);
    }

    /// Finalises the digest: flushes a held odd word through the
    /// slicing-by-4 tail step and applies the CRC final inversion.
    pub fn finish(self) -> WeightDigest {
        let t = &CRC_TABLES;
        let mut crc = self.crc;
        if let Some(w0) = self.pending {
            let a = crc ^ w0;
            crc = t[3][(a & 0xFF) as usize]
                ^ t[2][((a >> 8) & 0xFF) as usize]
                ^ t[1][((a >> 16) & 0xFF) as usize]
                ^ t[0][(a >> 24) as usize];
        }
        WeightDigest {
            crc: !crc,
            parity: self.parity,
        }
    }
}

/// One-shot [`WeightDigest`] over an `f32` weights-then-bias stream —
/// the reference the fused kernels are pinned against.
pub fn digest_f32(weights: &[f32], bias: &[f32]) -> WeightDigest {
    let mut acc = CrcAccumulator::new();
    acc.update_f32(weights);
    acc.update_f32(bias);
    acc.finish()
}

/// One-shot [`WeightDigest`] over a Q16.16 weights-then-bias stream.
pub fn digest_q16(weights: &[Q16_16], bias: &[Q16_16]) -> WeightDigest {
    let mut acc = CrcAccumulator::new();
    acc.update_q16(weights);
    acc.update_q16(bias);
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic CRC-32 check value.
        assert_eq!(crc32(*b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32([]), 0);
    }

    #[test]
    fn crc32_words_matches_bytewise() {
        for n in [0usize, 1, 2, 3, 7, 8, 64, 129] {
            let ws = words(n);
            let bytes: Vec<u8> = ws.iter().flat_map(|w| w.to_le_bytes()).collect();
            assert_eq!(crc32_words(ws.iter().copied()), crc32(bytes), "n = {n}");
        }
    }

    #[test]
    fn accumulator_is_chunking_independent() {
        let ws = words(129);
        let expected = crc32_words(ws.iter().copied());
        let expected_parity = ws.iter().fold(0u32, |acc, &w| acc ^ w);
        // Every split point, including ones that leave an odd word
        // pending across the boundary.
        for split in 0..=ws.len() {
            let mut acc = CrcAccumulator::new();
            acc.update_words(&ws[..split]);
            acc.update_words(&ws[split..]);
            let digest = acc.finish();
            assert_eq!(digest.crc, expected, "split at {split}");
            assert_eq!(digest.parity, expected_parity, "split at {split}");
        }
        // Many tiny odd-sized chunks.
        let mut acc = CrcAccumulator::new();
        for chunk in ws.chunks(3) {
            acc.update_words(chunk);
        }
        assert_eq!(acc.finish().crc, expected);
    }

    #[test]
    fn accumulator_matches_tables_across_fold_thresholds() {
        // Sweep every length around the clmul entry thresholds (16-word
        // granules, 64-byte minimum) plus large buffers, so the folded
        // fast path, the table path, and every head/tail split agree
        // with the reference slicing implementation bit for bit.
        let lengths: Vec<usize> = (0..=68).chain([127, 128, 129, 1000, 4096, 16387]).collect();
        for n in lengths {
            let ws = words(n);
            let expected = crc32_words(ws.iter().copied());
            let expected_parity = ws.iter().fold(0u32, |acc, &w| acc ^ w);
            let mut acc = CrcAccumulator::new();
            acc.update_words(&ws);
            let digest = acc.finish();
            assert_eq!(digest.crc, expected, "n = {n}");
            assert_eq!(digest.parity, expected_parity, "n = {n}");
        }
    }

    #[test]
    fn accumulator_fold_survives_odd_chunk_boundaries() {
        // An odd head chunk leaves a word pending; the following large
        // slice must flush it and still take the folded bulk path.
        let ws = words(1025);
        let expected = crc32_words(ws.iter().copied());
        for head in [1usize, 3, 5, 17, 63] {
            let mut acc = CrcAccumulator::new();
            acc.update_words(&ws[..head]);
            acc.update_words(&ws[head..]);
            assert_eq!(acc.finish().crc, expected, "head = {head}");
        }
    }

    #[test]
    fn empty_digest_matches_empty_crc() {
        let digest = CrcAccumulator::new().finish();
        assert_eq!(digest.crc, crc32_words(std::iter::empty()));
        assert_eq!(digest.parity, 0);
    }

    #[test]
    fn typed_updates_match_bit_streams() {
        let fs: Vec<f32> = (0..11).map(|i| i as f32 * 0.37 - 1.5).collect();
        let expected = crc32_words(fs.iter().map(|v| v.to_bits()));
        assert_eq!(digest_f32(&fs, &[]).crc, expected);

        let qs: Vec<Q16_16> = (0..11).map(|i| Q16_16::from_f32(i as f32 * 0.25)).collect();
        let expected_q = crc32_words(qs.iter().map(|q| q.to_bits() as u32));
        assert_eq!(digest_q16(&qs, &[]).crc, expected_q);
    }

    #[test]
    fn weights_then_bias_matches_chained_stream() {
        let w: Vec<f32> = (0..7).map(|i| i as f32 + 0.5).collect();
        let b: Vec<f32> = (0..3).map(|i| i as f32 - 0.25).collect();
        let expected = crc32_words(w.iter().chain(&b).map(|v| v.to_bits()));
        assert_eq!(digest_f32(&w, &b).crc, expected);
    }
}
