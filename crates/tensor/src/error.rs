//! Error types for tensor construction and arithmetic.

use std::error::Error;
use std::fmt;

use crate::shape::Shape;

/// Errors produced by tensor construction and tensor operations.
///
/// Per the crate's FUSA posture, user-facing entry points never panic on
/// malformed input; they return one of these variants instead.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The data length supplied to a constructor does not match the number
    /// of elements implied by the shape.
    LengthMismatch {
        /// Total elements implied by the requested shape.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// Two tensors participating in an elementwise operation have different
    /// shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
    },
    /// The inner dimensions of a matrix product do not agree, or an operand
    /// is not two-dimensional.
    MatmulIncompatible {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
    },
    /// An index is out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// A shape with zero dimensions or a zero-sized dimension was requested
    /// where it is not meaningful.
    EmptyShape,
    /// An operation that requires a non-empty tensor received an empty one.
    EmptyInput,
    /// A numeric argument was invalid (NaN, non-positive where positive is
    /// required, and so on). The message explains the constraint.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::MatmulIncompatible { left, right } => {
                write!(f, "matmul operands incompatible: {left} x {right}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for tensor of {len} elements"
                )
            }
            TensorError::EmptyShape => write!(f, "shape must have at least one dimension"),
            TensorError::EmptyInput => write!(f, "operation requires a non-empty tensor"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 4,
        };
        assert_eq!(
            e.to_string(),
            "data length 4 does not match shape element count 6"
        );
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            left: Shape::matrix(2, 3),
            right: Shape::matrix(3, 2),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("3x2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(TensorError::EmptyShape);
        assert!(e.to_string().contains("at least one dimension"));
    }
}
