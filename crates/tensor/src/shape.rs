//! Tensor shapes: dimension lists with row-major strides.

use std::fmt;

use crate::error::TensorError;

/// Maximum number of dimensions supported.
///
/// Four dimensions cover everything the SAFEXPLAIN DL stack needs
/// (`[batch, channels, height, width]` for images, `[rows, cols]` for
/// dense layers). Bounding the rank lets [`Shape`] live entirely on the
/// stack — no allocation, `Copy`, cheap to compare — which matters for the
/// statically-allocated inference engine.
pub const MAX_RANK: usize = 4;

/// A tensor shape: an ordered list of 1 to [`MAX_RANK`] dimension sizes.
///
/// Shapes are laid out row-major (C order): the last dimension is
/// contiguous in memory. A `Shape` is a small `Copy` value; it never
/// allocates.
///
/// # Examples
///
/// ```
/// use safex_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]).unwrap();
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.dims(), &[2, 3, 4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] if `dims` is empty, has more
    /// than [`MAX_RANK`] entries, or contains a zero dimension.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() || dims.len() > MAX_RANK || dims.contains(&0) {
            return Err(TensorError::EmptyShape);
        }
        let mut d = [1usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Ok(Shape {
            dims: d,
            rank: dims.len(),
        })
    }

    /// Creates a 1-D shape of `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn vector(n: usize) -> Self {
        Shape::new(&[n]).expect("vector length must be non-zero")
    }

    /// Creates a 2-D `rows x cols` shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape::new(&[rows, cols]).expect("matrix dimensions must be non-zero")
    }

    /// Creates a 3-D `channels x height x width` image shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn chw(channels: usize, height: usize, width: usize) -> Self {
        Shape::new(&[channels, height, width]).expect("image dimensions must be non-zero")
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The dimension sizes as a slice of length [`Self::rank`].
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Size of dimension `axis`, or `None` if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Option<usize> {
        self.dims().get(axis).copied()
    }

    /// Total number of elements (product of all dimensions).
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Always false: shapes with zero-sized dimensions cannot be built.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row-major strides for this shape.
    ///
    /// `strides()[i]` is the flat-index distance between consecutive
    /// elements along axis `i`.
    ///
    /// # Examples
    ///
    /// ```
    /// use safex_tensor::Shape;
    /// let s = Shape::new(&[2, 3, 4]).unwrap();
    /// assert_eq!(&s.strides()[..3], &[12, 4, 1]);
    /// ```
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut strides = [1usize; MAX_RANK];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` has the wrong
    /// rank or any coordinate exceeds its dimension.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank {
            return Err(TensorError::IndexOutOfBounds {
                index: index.len(),
                len: self.rank,
            });
        }
        let strides = self.strides();
        let mut flat = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.dims()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, len: d });
            }
            flat += i * strides[axis];
        }
        Ok(flat)
    }

    /// Whether two shapes have identical rank and dimensions.
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for d in self.dims() {
            if !first {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        Ok(())
    }
}

impl TryFrom<&[usize]> for Shape {
    type Error = TensorError;

    fn try_from(dims: &[usize]) -> Result<Self, Self::Error> {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Shape::new(&[]), Err(TensorError::EmptyShape));
    }

    #[test]
    fn new_rejects_zero_dim() {
        assert_eq!(Shape::new(&[2, 0, 3]), Err(TensorError::EmptyShape));
    }

    #[test]
    fn new_rejects_over_rank() {
        assert_eq!(Shape::new(&[1, 2, 3, 4, 5]), Err(TensorError::EmptyShape));
    }

    #[test]
    fn len_is_product() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.len(), 24);
        assert_eq!(Shape::vector(7).len(), 7);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4, 5]).unwrap();
        assert_eq!(s.strides(), [60, 20, 5, 1]);
    }

    #[test]
    fn strides_vector() {
        assert_eq!(Shape::vector(9).strides()[0], 1);
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let flat = s.flat_index(&[i, j, k]).unwrap();
                    assert!(flat < s.len());
                    assert!(seen.insert(flat), "flat index collision");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn flat_index_bounds_checked() {
        let s = Shape::matrix(2, 3);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0, 3]).is_err());
        assert!(s.flat_index(&[0]).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3, 4]).unwrap().to_string(), "2x3x4");
        assert_eq!(Shape::vector(5).to_string(), "5");
    }

    #[test]
    fn chw_constructor() {
        let s = Shape::chw(3, 8, 8);
        assert_eq!(s.dims(), &[3, 8, 8]);
        assert_eq!(s.len(), 192);
    }

    #[test]
    fn try_from_slice() {
        let s: Shape = (&[2usize, 2][..]).try_into().unwrap();
        assert_eq!(s, Shape::matrix(2, 2));
    }

    #[test]
    fn dim_accessor() {
        let s = Shape::new(&[5, 6]).unwrap();
        assert_eq!(s.dim(0), Some(5));
        assert_eq!(s.dim(1), Some(6));
        assert_eq!(s.dim(2), None);
    }
}
