//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use safex_tensor::crc::crc32_words;
use safex_tensor::fixed::Q16_16;
use safex_tensor::ops;
use safex_tensor::stats::Histogram;
use safex_tensor::{DenseKernel, DetRng, Shape, Tensor};

proptest! {
    // ----- kernels against naive references -----

    #[test]
    fn conv2d_matches_naive_reference(
        seed in any::<u64>(),
        in_h in 3usize..7,
        in_w in 3usize..7,
        k in 1usize..4,
    ) {
        prop_assume!(k <= in_h && k <= in_w);
        let mut rng = DetRng::new(seed);
        let x: Vec<f32> = (0..in_h * in_w).map(|_| rng.next_f32()).collect();
        let w: Vec<f32> = (0..k * k).map(|_| rng.next_f32() - 0.5).collect();
        let b = [0.25f32];
        let (oh, ow) = ops::conv2d_output_dims(in_h, in_w, k, k, 1, 0).expect("dims");
        let mut out = vec![0.0f32; oh * ow];
        ops::conv2d_into(&x, &w, &b, &mut out, 1, in_h, in_w, 1, k, k, 1, 0).expect("conv");
        // Naive reference.
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.25f64;
                for ky in 0..k {
                    for kx in 0..k {
                        acc += x[(oy + ky) * in_w + ox + kx] as f64
                            * w[ky * k + kx] as f64;
                    }
                }
                let got = out[oy * ow + ox] as f64;
                prop_assert!((got - acc).abs() < 1e-4, "({oy},{ox}): {got} vs {acc}");
            }
        }
    }

    #[test]
    fn maxpool_output_bounded_by_input_extremes(
        seed in any::<u64>(),
        h in 2usize..8,
        pool in 1usize..3,
    ) {
        prop_assume!(pool <= h);
        let mut rng = DetRng::new(seed);
        let x: Vec<f32> = (0..h * h).map(|_| rng.next_f32()).collect();
        let (oh, ow) = ops::conv2d_output_dims(h, h, pool, pool, pool, 0).expect("dims");
        let mut out = vec![0.0f32; oh * ow];
        ops::maxpool2d_into(&x, &mut out, 1, h, h, pool, pool).expect("pool");
        let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let min = x.iter().copied().fold(f32::INFINITY, f32::min);
        for &v in &out {
            prop_assert!(v <= max && v >= min);
        }
        // The global max always survives pooling with stride == pool and
        // exact tiling.
        if h % pool == 0 {
            let omax = out.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(omax, max);
        }
    }

    #[test]
    fn avgpool_preserves_global_mean_on_exact_tiling(
        seed in any::<u64>(),
        tiles in 1usize..4,
        pool in 1usize..4,
    ) {
        let h = tiles * pool;
        let mut rng = DetRng::new(seed);
        let x: Vec<f32> = (0..h * h).map(|_| rng.next_f32()).collect();
        let mut out = vec![0.0f32; tiles * tiles];
        ops::avgpool2d_into(&x, &mut out, 1, h, h, pool, pool).expect("pool");
        let in_mean: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64;
        let out_mean: f64 = out.iter().map(|&v| v as f64).sum::<f64>() / out.len() as f64;
        prop_assert!((in_mean - out_mean).abs() < 1e-5);
    }

    #[test]
    fn dense_is_linear_in_input(
        seed in any::<u64>(),
        inputs in 1usize..6,
        outputs in 1usize..6,
        alpha in -3.0f32..3.0,
    ) {
        let mut rng = DetRng::new(seed);
        let w: Vec<f32> = (0..inputs * outputs).map(|_| rng.next_f32() - 0.5).collect();
        let b = vec![0.0f32; outputs];
        let x: Vec<f32> = (0..inputs).map(|_| rng.next_f32()).collect();
        let xs: Vec<f32> = x.iter().map(|v| v * alpha).collect();
        let mut y = vec![0.0f32; outputs];
        let mut ys = vec![0.0f32; outputs];
        ops::dense_into(&w, &b, &x, &mut y, inputs, outputs).expect("dense");
        ops::dense_into(&w, &b, &xs, &mut ys, inputs, outputs).expect("dense");
        for (a, s) in y.iter().zip(&ys) {
            prop_assert!((a * alpha - s).abs() < 1e-3, "{a} * {alpha} vs {s}");
        }
    }

    // ----- fixed point -----

    #[test]
    fn q16_kernels_track_float_kernels(
        seed in any::<u64>(),
        n in 1usize..20,
    ) {
        let mut rng = DetRng::new(seed);
        let wf: Vec<f32> = (0..n).map(|_| rng.next_f32() - 0.5).collect();
        let xf: Vec<f32> = (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
        let bf = [rng.next_f32()];
        let w: Vec<Q16_16> = wf.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let x: Vec<Q16_16> = xf.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let b = [Q16_16::from_f32(bf[0])];
        let mut outf = [0.0f32];
        let mut outq = [Q16_16::ZERO];
        ops::dense_into(&wf, &bf, &xf, &mut outf, n, 1).expect("dense");
        ops::dense_q16_into(&w, &b, &x, &mut outq, n, 1).expect("dense");
        // Error budget: n+1 quantisations of magnitude <= 2^-16 each plus
        // one result rounding.
        let budget = (n as f32 + 2.0) / 65536.0 * 4.0;
        prop_assert!(
            (outf[0] - outq[0].to_f32()).abs() <= budget,
            "{} vs {} (n={n})", outf[0], outq[0].to_f32()
        );
    }

    #[test]
    fn q16_ordering_preserved_by_conversion(a in -30000.0f32..30000.0, b in -30000.0f32..30000.0) {
        prop_assume!((a - b).abs() > 1.0 / 16384.0); // beyond quantisation
        let (qa, qb) = (Q16_16::from_f32(a), Q16_16::from_f32(b));
        prop_assert_eq!(a < b, qa < qb);
    }

    // ----- RNG -----

    #[test]
    fn fork_streams_do_not_collide(seed in any::<u64>()) {
        let mut parent = DetRng::new(seed);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }

    #[test]
    fn gaussian_values_finite(seed in any::<u64>(), mean in -100.0f64..100.0, std in 0.0f64..50.0) {
        let mut rng = DetRng::new(seed);
        for _ in 0..32 {
            let v = rng.gaussian(mean, std);
            prop_assert!(v.is_finite());
        }
    }

    // ----- histogram -----

    #[test]
    fn histogram_conserves_samples(
        xs in prop::collection::vec(-10.0f64..10.0, 0..100),
        bins in 1usize..20,
    ) {
        let h = Histogram::new(&xs, -10.0, 10.0, bins).expect("histogram");
        prop_assert_eq!(h.total() + h.outliers(), xs.len() as u64);
    }

    // ----- tensors -----

    #[test]
    fn scale_then_sum_matches_sum_then_scale(
        seed in any::<u64>(),
        n in 1usize..64,
        factor in -10.0f32..10.0,
    ) {
        let mut rng = DetRng::new(seed);
        let t = Tensor::uniform(Shape::vector(n), -1.0, 1.0, &mut rng);
        let a = t.scale(factor).sum();
        let b = t.sum() * factor as f64;
        prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn matmul_associative_with_vector(
        seed in any::<u64>(),
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
    ) {
        // (A B) applied dimensions agree: shape checks and values finite.
        let mut rng = DetRng::new(seed);
        let a = Tensor::gaussian(Shape::matrix(m, k), 0.0, 1.0, &mut rng);
        let b = Tensor::gaussian(Shape::matrix(k, n), 0.0, 1.0, &mut rng);
        let ab = a.matmul(&b).expect("matmul");
        prop_assert_eq!(ab.shape().dims(), &[m, n]);
        prop_assert!(ab.all_finite());
    }

    // ----- fused verify-on-read digests -----

    #[test]
    fn fused_dense_digest_equals_reference_crc(
        seed in any::<u64>(),
        inputs in 1usize..24,
        outputs in 1usize..24,
        chunked in any::<bool>(),
    ) {
        let mut rng = DetRng::new(seed);
        let w: Vec<f32> = (0..inputs * outputs).map(|_| rng.next_f32() - 0.5).collect();
        let b: Vec<f32> = (0..outputs).map(|_| rng.next_f32()).collect();
        let x: Vec<f32> = (0..inputs).map(|_| rng.next_f32()).collect();
        let kernel = if chunked { DenseKernel::Chunked } else { DenseKernel::Exact };
        let mut fused = vec![0.0f32; outputs];
        let digest =
            ops::dense_into_digest(kernel, &w, &b, &x, &mut fused, inputs, outputs).expect("dense");
        // The digest must equal the standalone second-sweep CRC over the
        // same word stream (weights then bias), and its parity must be
        // the plain XOR fold of that stream.
        let words: Vec<u32> = w.iter().chain(&b).map(|v| v.to_bits()).collect();
        prop_assert_eq!(digest.crc, crc32_words(words.iter().copied()));
        prop_assert_eq!(digest.parity, words.iter().fold(0u32, |acc, &v| acc ^ v));
        // And the fused kernel's arithmetic is bit-identical to the plain
        // kernel's: accumulation may not change because a digest rides along.
        let mut plain = vec![0.0f32; outputs];
        ops::dense_into_with(kernel, &w, &b, &x, &mut plain, inputs, outputs).expect("dense");
        let fb: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u32> = plain.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(fb, pb);
    }

    #[test]
    fn fused_conv_digest_equals_reference_crc(
        seed in any::<u64>(),
        in_c in 1usize..3,
        out_c in 1usize..3,
        in_h in 3usize..7,
        in_w in 3usize..7,
        k in 1usize..4,
        padding in 0usize..2,
    ) {
        prop_assume!(k <= in_h + 2 * padding && k <= in_w + 2 * padding);
        let mut rng = DetRng::new(seed);
        let x: Vec<f32> = (0..in_c * in_h * in_w).map(|_| rng.next_f32()).collect();
        let w: Vec<f32> = (0..out_c * in_c * k * k).map(|_| rng.next_f32() - 0.5).collect();
        let b: Vec<f32> = (0..out_c).map(|_| rng.next_f32()).collect();
        let (oh, ow) =
            ops::conv2d_output_dims(in_h, in_w, k, k, 1, padding).expect("dims");
        let mut fused = vec![0.0f32; out_c * oh * ow];
        let digest = ops::conv2d_into_digest(
            &x, &w, &b, &mut fused, in_c, in_h, in_w, out_c, k, k, 1, padding,
        )
        .expect("conv");
        let words: Vec<u32> = w.iter().chain(&b).map(|v| v.to_bits()).collect();
        prop_assert_eq!(digest.crc, crc32_words(words.iter().copied()));
        prop_assert_eq!(digest.parity, words.iter().fold(0u32, |acc, &v| acc ^ v));
        let mut plain = vec![0.0f32; out_c * oh * ow];
        ops::conv2d_into(&x, &w, &b, &mut plain, in_c, in_h, in_w, out_c, k, k, 1, padding)
            .expect("conv");
        let fb: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u32> = plain.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(fb, pb);
    }

    #[test]
    fn fused_q16_dense_digest_equals_reference_crc(
        seed in any::<u64>(),
        inputs in 1usize..24,
        outputs in 1usize..24,
    ) {
        let mut rng = DetRng::new(seed);
        let w: Vec<Q16_16> =
            (0..inputs * outputs).map(|_| Q16_16::from_f32(rng.next_f32() - 0.5)).collect();
        let b: Vec<Q16_16> = (0..outputs).map(|_| Q16_16::from_f32(rng.next_f32())).collect();
        let x: Vec<Q16_16> = (0..inputs).map(|_| Q16_16::from_f32(rng.next_f32())).collect();
        let mut fused = vec![Q16_16::ZERO; outputs];
        let digest =
            ops::dense_q16_into_digest(&w, &b, &x, &mut fused, inputs, outputs).expect("dense");
        let words: Vec<u32> = w.iter().chain(&b).map(|v| v.to_bits() as u32).collect();
        prop_assert_eq!(digest.crc, crc32_words(words.iter().copied()));
        prop_assert_eq!(digest.parity, words.iter().fold(0u32, |acc, &v| acc ^ v));
        let mut plain = vec![Q16_16::ZERO; outputs];
        ops::dense_q16_into(&w, &b, &x, &mut plain, inputs, outputs).expect("dense");
        prop_assert_eq!(fused, plain);
    }
}
