//! Soak-runtime operations: hot swaps, stall injection, and the layered
//! watchdog.
//!
//! A soak run ([`crate::Server::run_soak`]) is the plain deterministic
//! replay loop plus an [`OpsPlan`]: scripted operational events (an atomic
//! hot model swap, injected stage stalls, a snapshot capture point) that
//! exercise the runtime's robustness machinery. With an empty plan and the
//! watchdog disabled, a soak run is byte-identical to
//! [`crate::Server::run_trace`].
//!
//! ## The layered watchdog
//!
//! Four pipeline stages each prove liveness by *kicking* the watchdog when
//! they make progress:
//!
//! | stage       | armed while                | kicks on                     |
//! |-------------|----------------------------|------------------------------|
//! | `admission` | arrivals remain             | each admitted request        |
//! | `batcher`   | the queue is non-empty      | each dispatch round w/ batch |
//! | `backend`   | batches are in flight       | batch launch and completion  |
//! | `release`   | batches are in flight       | each retired batch           |
//!
//! A stage that stays armed past its deadline takes a *strike*; strikes
//! escalate on a ladder — warning alarm, fleet Degraded, fleet SafeStop —
//! and every alarm, escalation, and periodic liveness proof lands on the
//! evidence chain. Progress resets a stage's strikes.

use crate::error::ServeError;
use crate::request::ModelId;
use safex_trace::json::Json;

/// The four watched pipeline stages, in escalation-report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WatchStage {
    /// Admission control: arrivals entering the queue.
    Admission,
    /// Micro-batcher: queue entries forming batches.
    Batcher,
    /// Backend step: batches executing on a fleet member.
    Backend,
    /// Release gate: completed batches retiring into responses.
    Release,
}

impl WatchStage {
    /// All stages, indexable by [`WatchStage::index`].
    pub const ALL: [WatchStage; 4] = [
        WatchStage::Admission,
        WatchStage::Batcher,
        WatchStage::Backend,
        WatchStage::Release,
    ];

    /// Dense index into per-stage arrays.
    pub fn index(self) -> usize {
        match self {
            WatchStage::Admission => 0,
            WatchStage::Batcher => 1,
            WatchStage::Backend => 2,
            WatchStage::Release => 3,
        }
    }

    /// Stable tag used in evidence records and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            WatchStage::Admission => "admission",
            WatchStage::Batcher => "batcher",
            WatchStage::Backend => "backend",
            WatchStage::Release => "release",
        }
    }
}

/// Watchdog knobs. Disabled by default so the plain replay path stays
/// byte-identical; enable it for soak deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct WatchdogConfig {
    /// Master switch. When `false` the watchdog contributes no events.
    pub enabled: bool,
    /// Per-stage liveness deadline in ticks, indexed by
    /// [`WatchStage::index`]. A stage armed for longer than its deadline
    /// without a kick takes a strike.
    pub stage_deadline: [u64; 4],
    /// Emit a `watchdog_proof` evidence record every this many ticks
    /// (0 disables proofs).
    pub proof_cadence: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: false,
            stage_deadline: [256; 4],
            proof_cadence: 0,
        }
    }
}

impl WatchdogConfig {
    /// An enabled watchdog with a uniform per-stage deadline.
    pub fn enabled(deadline: u64) -> Self {
        WatchdogConfig {
            enabled: true,
            stage_deadline: [deadline; 4],
            ..WatchdogConfig::default()
        }
    }

    /// Set one stage's deadline.
    pub fn with_stage_deadline(mut self, stage: WatchStage, deadline: u64) -> Self {
        self.stage_deadline[stage.index()] = deadline;
        self
    }

    /// Set the liveness-proof cadence.
    pub fn with_proof_cadence(mut self, cadence: u64) -> Self {
        self.proof_cadence = cadence;
        self
    }

    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.enabled && self.stage_deadline.contains(&0) {
            return Err(ServeError::BadConfig(
                "watchdog stage deadlines must be at least one tick".into(),
            ));
        }
        Ok(())
    }
}

/// Mutable watchdog bookkeeping, serialized into snapshots so a restored
/// run escalates exactly like the uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogState {
    /// Last tick each stage kicked (or was observed unarmed).
    pub last_progress: [u64; 4],
    /// Consecutive missed deadlines per stage; reset by a kick.
    pub strikes: [u32; 4],
    /// Next tick at which a liveness proof is due (when cadence > 0).
    pub next_proof: u64,
}

/// A scripted stage stall: while `from <= tick < until`, the stage makes
/// no progress. Batcher stalls push flushes to `until`; release stalls
/// push batch retirements to `until`. Used to provoke the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallOp {
    /// Which stage is starved. Only `Batcher` and `Release` stalls have an
    /// effect; the other stages cannot stall in the simulated pipeline.
    pub stage: WatchStage,
    /// First stalled tick (inclusive).
    pub from: u64,
    /// First tick at which the stage runs again (exclusive end).
    pub until: u64,
}

/// A scripted atomic hot swap of one fleet member's model.
#[derive(Debug)]
pub struct SwapOp<B> {
    /// The swap is requested immediately before admitting this request id.
    pub at_request: u64,
    /// Which member to swap.
    pub model: ModelId,
    /// The replacement backend. Re-goldened and verified before commit.
    pub incoming: B,
    /// If set, the incoming backend's post-re-golden digest must equal
    /// this value or the swap aborts with the old model untouched.
    pub expected_digest: Option<u64>,
}

/// Scripted operational events for one soak run.
#[derive(Debug)]
pub struct OpsPlan<B> {
    /// Hot swaps, triggered by request id.
    pub swaps: Vec<SwapOp<B>>,
    /// Stage stalls, on the tick axis.
    pub stalls: Vec<StallOp>,
    /// Capture a snapshot immediately before admitting this request id.
    pub snapshot_at: Option<u64>,
}

impl<B> Default for OpsPlan<B> {
    fn default() -> Self {
        OpsPlan {
            swaps: Vec::new(),
            stalls: Vec::new(),
            snapshot_at: None,
        }
    }
}

impl<B> OpsPlan<B> {
    /// An empty plan: the soak run degenerates to a plain replay.
    pub fn none() -> Self {
        OpsPlan::default()
    }

    /// Schedule a hot swap.
    pub fn with_swap(mut self, swap: SwapOp<B>) -> Self {
        self.swaps.push(swap);
        self
    }

    /// Schedule a stage stall.
    pub fn with_stall(mut self, stall: StallOp) -> Self {
        self.stalls.push(stall);
        self
    }

    /// Capture a snapshot immediately before admitting `request`.
    pub fn with_snapshot_at(mut self, request: u64) -> Self {
        self.snapshot_at = Some(request);
        self
    }

    /// Validate the plan against a fleet of `members` members.
    pub fn validate(&self, members: usize) -> Result<(), ServeError> {
        for swap in &self.swaps {
            if swap.model.index() >= members {
                return Err(ServeError::BadConfig(format!(
                    "swap targets member {} but the fleet has {members}",
                    swap.model
                )));
            }
        }
        for stall in &self.stalls {
            if stall.from >= stall.until {
                return Err(ServeError::BadConfig(format!(
                    "stall window [{}, {}) is empty",
                    stall.from, stall.until
                )));
            }
        }
        Ok(())
    }
}

/// One resolved hot-swap attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapEvent {
    /// The member that was (to be) swapped.
    pub model: ModelId,
    /// Tick at which the swap was requested and the member began draining.
    pub requested_at: u64,
    /// Tick at which the swap committed or aborted.
    pub resolved_at: u64,
    /// Whether the swap committed (`false`: aborted, old model kept).
    pub committed: bool,
    /// Post-re-golden weight digest of the incoming model (0 on abort).
    pub digest: u64,
}

impl SwapEvent {
    /// Drain latency in ticks: request to resolution.
    pub fn latency(&self) -> u64 {
        self.resolved_at - self.requested_at
    }

    fn to_json(self) -> Json {
        let mut obj = Json::object();
        obj.set("model", Json::from(self.model.to_string()));
        obj.set("requested_at", Json::from(self.requested_at));
        obj.set("resolved_at", Json::from(self.resolved_at));
        obj.set("committed", Json::from(self.committed));
        obj.set("digest", Json::from(format!("{:016x}", self.digest)));
        obj
    }
}

/// Soak-runtime counters carried on [`crate::ServeReport`].
///
/// Stays at `Default` for plain replay runs and is then omitted from the
/// report JSON, so pre-soak golden digests are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SoakStats {
    /// Every resolved hot-swap attempt, in resolution order.
    pub swaps: Vec<SwapEvent>,
    /// Watchdog kicks per stage (liveness heartbeats observed).
    pub watchdog_kicks: [u64; 4],
    /// Missed-deadline warning alarms raised.
    pub watchdog_alarms: u64,
    /// Ladder escalations forced (Degraded or SafeStop).
    pub watchdog_escalations: u64,
    /// Periodic liveness proofs recorded.
    pub watchdog_proofs: u64,
}

impl SoakStats {
    /// True when no soak machinery left a trace (plain replay runs).
    pub fn is_default(&self) -> bool {
        *self == SoakStats::default()
    }

    /// JSON projection, emitted under the report's `soak` key.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set(
            "swaps",
            Json::Arr(self.swaps.iter().map(|s| s.to_json()).collect()),
        );
        let mut kicks = Json::object();
        for stage in WatchStage::ALL {
            kicks.set(stage.tag(), Json::from(self.watchdog_kicks[stage.index()]));
        }
        let mut watchdog = Json::object();
        watchdog.set("kicks", kicks);
        watchdog.set("alarms", Json::from(self.watchdog_alarms));
        watchdog.set("escalations", Json::from(self.watchdog_escalations));
        watchdog.set("proofs", Json::from(self.watchdog_proofs));
        obj.set("watchdog", watchdog);
        obj
    }
}

/// Result of a soak run: the usual report plus any snapshot captured by
/// the plan's `snapshot_at` trigger.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The deterministic serve report (with `soak` stats populated).
    pub report: crate::server::ServeReport,
    /// Encoded snapshot bytes, when the plan requested a capture and the
    /// trigger request was reached.
    pub snapshot: Option<Vec<u8>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_ordered() {
        for (i, stage) in WatchStage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let tags: Vec<_> = WatchStage::ALL.iter().map(|s| s.tag()).collect();
        assert_eq!(tags, ["admission", "batcher", "backend", "release"]);
    }

    #[test]
    fn watchdog_config_validates_deadlines() {
        assert!(WatchdogConfig::default().validate().is_ok());
        assert!(WatchdogConfig::enabled(64).validate().is_ok());
        let bad = WatchdogConfig::enabled(64).with_stage_deadline(WatchStage::Batcher, 0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn default_stats_are_omittable() {
        assert!(SoakStats::default().is_default());
        let mut stats = SoakStats::default();
        stats.watchdog_kicks[0] = 1;
        assert!(!stats.is_default());
    }

    #[test]
    fn ops_plan_validation_catches_bad_targets_and_windows() {
        let plan: OpsPlan<()> = OpsPlan::none().with_stall(StallOp {
            stage: WatchStage::Batcher,
            from: 10,
            until: 5,
        });
        assert!(plan.validate(1).is_err());
        let plan: OpsPlan<()> = OpsPlan::none().with_swap(SwapOp {
            at_request: 0,
            model: ModelId::new(3),
            incoming: (),
            expected_digest: None,
        });
        assert!(plan.validate(2).is_err());
        assert!(OpsPlan::<()>::none().validate(1).is_ok());
    }
}
