//! Typed requests, outcomes, and responses.
//!
//! Every request that enters the server leaves it with exactly one typed
//! [`Response`] — admission rejections, displacements, deadline misses,
//! and safe stops are all first-class outcomes, never silent drops. That
//! accounting is what lets the serving layer claim *zero silent data
//! corruption*: anything that is not a [`Outcome::Completed`] carries the
//! reason it is not.

use safex_core::health::HealthState;

/// Request criticality tier. Ordering is by criticality: `Low < Medium <
/// High`; admission control and degraded-mode shedding sacrifice lower
/// tiers first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Best-effort work (e.g. telemetry enrichment).
    Low,
    /// Important but interruptible work.
    Medium,
    /// Safety-relevant work; shed last, and only to a typed outcome.
    High,
}

impl Tier {
    /// Stable tag for reports and evidence.
    pub fn tag(&self) -> &'static str {
        match self {
            Tier::Low => "low",
            Tier::Medium => "medium",
            Tier::High => "high",
        }
    }

    /// All tiers, lowest first.
    pub fn all() -> [Tier; 3] {
        [Tier::Low, Tier::Medium, Tier::High]
    }

    /// Dense index for per-tier counters.
    pub fn index(&self) -> usize {
        match self {
            Tier::Low => 0,
            Tier::Medium => 1,
            Tier::High => 2,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique id; in a trace, ids equal the arrival position.
    pub id: u64,
    /// The input vector (must match the model's input shape).
    pub input: Vec<f32>,
    /// Criticality tier.
    pub tier: Tier,
    /// Absolute deadline in ticks: a response completed at `t >
    /// deadline` is worthless, so the server returns [`Outcome::Timeout`]
    /// instead of the stale result.
    pub deadline: u64,
}

/// Why a request was refused before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full and the request did not outrank any
    /// queued entry.
    QueueFull,
    /// A higher-tier arrival (with the given id) evicted this queued
    /// request from a full queue.
    Displaced {
        /// The id of the arrival that took the slot.
        by: u64,
    },
    /// The service level dropped below this request's tier (degraded
    /// operation sheds low-criticality tiers first).
    DegradedTier,
}

impl ShedReason {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Displaced { .. } => "displaced",
            ShedReason::DegradedTier => "degraded_tier",
        }
    }
}

/// What happened to a request — exactly one of these per request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Executed and returned before its deadline.
    Completed {
        /// Predicted class.
        class: usize,
        /// Winning confidence.
        confidence: f32,
        /// `true` when the hardened backend raised health events while
        /// producing this result (the result was still in-deadline, but
        /// the degradation ladder has been fed).
        flagged: bool,
        /// The service level *after* this decision was absorbed by the
        /// health monitor.
        level: HealthState,
    },
    /// Refused before execution, with the typed reason.
    Shed(ShedReason),
    /// Executed too late (or was expired at batch formation); the stale
    /// result — if any — was discarded, never returned.
    Timeout,
    /// The server was in safe stop; no inference was attempted.
    SafeStop,
}

impl Outcome {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Completed { .. } => "completed",
            Outcome::Shed(_) => "shed",
            Outcome::Timeout => "timeout",
            Outcome::SafeStop => "safe_stop",
        }
    }
}

/// The terminal record for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// The request tier (carried for per-tier accounting).
    pub tier: Tier,
    /// Arrival tick.
    pub arrived_at: u64,
    /// Tick at which the outcome was determined (shed: admission tick;
    /// completed/timeout: batch completion tick).
    pub resolved_at: u64,
    /// What happened.
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_order_by_criticality() {
        assert!(Tier::Low < Tier::Medium);
        assert!(Tier::Medium < Tier::High);
        assert_eq!(Tier::all().map(|t| t.index()), [0, 1, 2]);
        assert_eq!(Tier::High.tag(), "high");
    }

    #[test]
    fn outcome_tags_are_stable() {
        assert_eq!(Outcome::Timeout.tag(), "timeout");
        assert_eq!(Outcome::Shed(ShedReason::QueueFull).tag(), "shed");
        assert_eq!(ShedReason::Displaced { by: 7 }.tag(), "displaced");
    }
}
