//! Typed requests, outcomes, and responses.
//!
//! Every request that enters the server leaves it with exactly one typed
//! [`Response`] — admission rejections, displacements, deadline misses,
//! and safe stops are all first-class outcomes, never silent drops. That
//! accounting is what lets the serving layer claim *zero silent data
//! corruption*: anything that is not a [`Outcome::Completed`] carries the
//! reason it is not — and, since the fleet redesign, the *model* it
//! happened on. A shed is never anonymous: `DegradedTier` names the
//! degraded model that refused the work, `SafeStop` names the stopped
//! model when one specific model (a pin, or the executing backend) is
//! responsible, and every completion names the model that computed it.

use safex_core::health::HealthState;

use crate::error::ServeError;

/// Identifies one model (one hardened backend + its own health ladder)
/// inside a [`crate::fleet::Fleet`].
///
/// Ids are dense indices assigned at fleet registration, so they double
/// as array indices for per-model counters. The newtype keeps them from
/// being confused with request ids or tick counts in signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(u16);

impl ModelId {
    /// Wraps a dense fleet index.
    pub const fn new(index: u16) -> Self {
        ModelId(index)
    }

    /// Dense index for per-model arrays.
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Request criticality tier. Ordering is by criticality: `Low < Medium <
/// High`; admission control and degraded-mode shedding sacrifice lower
/// tiers first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Best-effort work (e.g. telemetry enrichment).
    Low,
    /// Important but interruptible work.
    Medium,
    /// Safety-relevant work; shed last, and only to a typed outcome.
    High,
}

impl Tier {
    /// Stable tag for reports and evidence.
    pub fn tag(&self) -> &'static str {
        match self {
            Tier::Low => "low",
            Tier::Medium => "medium",
            Tier::High => "high",
        }
    }

    /// All tiers, lowest first.
    pub fn all() -> [Tier; 3] {
        [Tier::Low, Tier::Medium, Tier::High]
    }

    /// Iterates the tiers, lowest first.
    pub fn iter() -> impl Iterator<Item = Tier> {
        Tier::all().into_iter()
    }

    /// Dense index for per-tier counters.
    pub fn index(&self) -> usize {
        match self {
            Tier::Low => 0,
            Tier::Medium => 1,
            Tier::High => 2,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

impl TryFrom<&str> for Tier {
    type Error = ServeError;

    /// Parses the stable [`Tier::tag`] form — the exact inverse of
    /// `tag()`, so configs and report readers round-trip.
    fn try_from(s: &str) -> Result<Self, Self::Error> {
        Tier::iter()
            .find(|t| t.tag() == s)
            .ok_or_else(|| ServeError::BadConfig(format!("unknown tier tag {s:?}")))
    }
}

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique id; in a trace, ids equal the arrival position.
    pub id: u64,
    /// The input vector (must match the model's input shape).
    pub input: Vec<f32>,
    /// Criticality tier.
    pub tier: Tier,
    /// Absolute deadline in ticks: a response completed at `t >
    /// deadline` is worthless, so the server returns [`Outcome::Timeout`]
    /// instead of the stale result.
    pub deadline: u64,
    /// Optional routing pin: `Some(id)` forces the request onto that
    /// fleet member (and onto that member's fate — a pinned request is
    /// shed or safe-stopped with the pin's id when the pin cannot take
    /// it). `None` lets the [`crate::route::RoutingPolicy`] choose.
    pub model: Option<ModelId>,
}

impl Request {
    /// A routable (unpinned) request.
    pub fn new(id: u64, input: Vec<f32>, tier: Tier, deadline: u64) -> Self {
        Request {
            id,
            input,
            tier,
            deadline,
            model: None,
        }
    }

    /// Pins the request to one fleet member.
    #[must_use]
    pub fn pinned(mut self, model: ModelId) -> Self {
        self.model = Some(model);
        self
    }
}

/// Why a request was refused before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full and the request did not outrank any
    /// queued entry.
    QueueFull,
    /// A higher-tier arrival (with the given id) evicted this queued
    /// request from a full queue.
    Displaced {
        /// The id of the arrival that took the slot.
        by: u64,
    },
    /// Every model that could have served this tier is degraded below
    /// the shedding floor (degraded operation sheds low-criticality
    /// tiers first). `model` names the degraded member the router would
    /// otherwise have chosen — no shed is anonymous.
    DegradedTier {
        /// The degraded model that refused the work.
        model: ModelId,
    },
}

impl ShedReason {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Displaced { .. } => "displaced",
            ShedReason::DegradedTier { .. } => "degraded_tier",
        }
    }
}

/// What happened to a request — exactly one of these per request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Executed (or answered from the verified result cache) and
    /// returned before its deadline.
    Completed {
        /// Predicted class.
        class: usize,
        /// Winning confidence.
        confidence: f32,
        /// `true` when the hardened backend raised health events while
        /// producing this result (the result was still in-deadline, but
        /// the degradation ladder has been fed).
        flagged: bool,
        /// The serving model's health state *after* this decision was
        /// absorbed by its monitor (for cache hits: the state the
        /// computing decision was released under, always `Nominal`).
        level: HealthState,
        /// The model that computed the result (for cache hits: the model
        /// that computed the original entry).
        model: ModelId,
        /// `true` when the result came from the cross-request result
        /// cache rather than a fresh execution. Every cached answer also
        /// has a `cache_hit` record on the evidence chain.
        cached: bool,
    },
    /// Refused before execution, with the typed reason.
    Shed(ShedReason),
    /// Executed too late (or was expired at batch formation); the stale
    /// result — if any — was discarded, never returned.
    Timeout,
    /// No model could (or may) serve this request: the whole fleet was
    /// stopped, the request's pin was stopped, or the executing backend
    /// demanded a stop. `model` names the stopped model when one
    /// specific model is responsible; `None` means the fleet as a whole
    /// was out of service.
    SafeStop {
        /// The stopped model, when the stop is attributable to one.
        model: Option<ModelId>,
    },
}

impl Outcome {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Completed { .. } => "completed",
            Outcome::Shed(_) => "shed",
            Outcome::Timeout => "timeout",
            Outcome::SafeStop { .. } => "safe_stop",
        }
    }
}

/// The terminal record for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// The request tier (carried for per-tier accounting).
    pub tier: Tier,
    /// Arrival tick.
    pub arrived_at: u64,
    /// Tick at which the outcome was determined (shed: admission tick;
    /// completed/timeout: batch completion tick; cache hit: lookup tick).
    pub resolved_at: u64,
    /// What happened.
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_order_by_criticality() {
        assert!(Tier::Low < Tier::Medium);
        assert!(Tier::Medium < Tier::High);
        assert_eq!(Tier::all().map(|t| t.index()), [0, 1, 2]);
        assert_eq!(Tier::High.tag(), "high");
    }

    #[test]
    fn tier_iter_matches_all() {
        let collected: Vec<Tier> = Tier::iter().collect();
        assert_eq!(collected, Tier::all().to_vec());
    }

    #[test]
    fn tier_parse_is_inverse_of_tag() {
        for tier in Tier::iter() {
            assert_eq!(Tier::try_from(tier.tag()).unwrap(), tier);
        }
        assert!(Tier::try_from("HIGH").is_err(), "tags are case-sensitive");
        assert!(Tier::try_from("").is_err());
        assert!(Tier::try_from("critical").is_err());
    }

    #[test]
    fn model_ids_are_dense_and_display_stably() {
        let id = ModelId::new(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "m3");
        assert!(ModelId::new(0) < ModelId::new(1));
    }

    #[test]
    fn requests_route_free_by_default_and_pin_explicitly() {
        let r = Request::new(7, vec![0.0], Tier::High, 100);
        assert_eq!(r.model, None);
        let pinned = r.pinned(ModelId::new(2));
        assert_eq!(pinned.model, Some(ModelId::new(2)));
    }

    #[test]
    fn outcome_tags_are_stable() {
        assert_eq!(Outcome::Timeout.tag(), "timeout");
        assert_eq!(Outcome::Shed(ShedReason::QueueFull).tag(), "shed");
        assert_eq!(ShedReason::Displaced { by: 7 }.tag(), "displaced");
        assert_eq!(
            ShedReason::DegradedTier {
                model: ModelId::new(1)
            }
            .tag(),
            "degraded_tier"
        );
        assert_eq!(Outcome::SafeStop { model: None }.tag(), "safe_stop");
    }
}
