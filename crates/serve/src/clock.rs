//! Clock sources for the serving loop.
//!
//! The server's event loop is driven entirely by logical ticks: arrivals,
//! flush deadlines, and batch retirements are scheduled on a `u64` tick
//! axis and processed in a deterministic order. A [`ClockSource`] does not
//! *decide* anything — it only *paces* the loop, optionally stretching
//! logical ticks onto real time. Because pacing happens strictly between
//! event ticks and never reorders or drops them, a run produces the exact
//! same [`crate::ServeReport`] under every clock source.
//!
//! * [`SimClock`] — the default. Pacing is a no-op, so a multi-hour soak
//!   trace replays in milliseconds. Every deterministic test runs on it.
//! * [`WallClock`] — maps each tick to a fixed real-time duration and
//!   sleeps until that tick's wall deadline. Used by soak deployments and
//!   the bounded `--soak-smoke` CI tier.

use std::time::{Duration, Instant};

/// Paces the serving loop onto a time axis.
///
/// Implementations must treat `pace` as a pure delay: they may sleep, but
/// they must not influence which event the loop processes next.
pub trait ClockSource {
    /// Stable identifier for reports and logs.
    fn name(&self) -> &'static str;

    /// Called once per event tick, before the tick is processed. `tick` is
    /// monotonically non-decreasing within a run.
    fn pace(&mut self, tick: u64);
}

/// The simulated clock: logical ticks, zero wall time.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock;

impl ClockSource for SimClock {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn pace(&mut self, _tick: u64) {}
}

/// A wall clock that stretches each logical tick to a fixed duration.
///
/// The first `pace` call anchors the tick axis to `Instant::now()`; every
/// later call sleeps until `anchor + (tick - first_tick) * tick_duration`.
/// If the loop falls behind (a slow backend step), pacing simply does not
/// sleep — it never skips events.
#[derive(Debug, Clone)]
pub struct WallClock {
    tick_duration: Duration,
    anchor: Option<(Instant, u64)>,
}

impl WallClock {
    /// A wall clock where one logical tick lasts `tick_duration`.
    pub fn new(tick_duration: Duration) -> Self {
        WallClock {
            tick_duration,
            anchor: None,
        }
    }

    /// The configured real-time duration of one logical tick.
    pub fn tick_duration(&self) -> Duration {
        self.tick_duration
    }
}

impl ClockSource for WallClock {
    fn name(&self) -> &'static str {
        "wall"
    }

    fn pace(&mut self, tick: u64) {
        let (start, first) = *self.anchor.get_or_insert((Instant::now(), tick));
        let elapsed_ticks = tick.saturating_sub(first);
        let nanos = self
            .tick_duration
            .as_nanos()
            .saturating_mul(elapsed_ticks as u128)
            .min(u64::MAX as u128) as u64;
        let target = start + Duration::from_nanos(nanos);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_free() {
        let mut clock = SimClock;
        let start = Instant::now();
        for t in 0..10_000 {
            clock.pace(t);
        }
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(clock.name(), "sim");
    }

    #[test]
    fn wall_clock_paces_ticks_onto_real_time() {
        let mut clock = WallClock::new(Duration::from_millis(5));
        assert_eq!(clock.name(), "wall");
        let start = Instant::now();
        clock.pace(100);
        clock.pace(104);
        // Four ticks after the anchor: at least ~20ms must have passed.
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn wall_clock_never_sleeps_when_behind() {
        let mut clock = WallClock::new(Duration::from_millis(1));
        clock.pace(0);
        std::thread::sleep(Duration::from_millis(5));
        let start = Instant::now();
        clock.pace(2); // wall deadline already passed
        assert!(start.elapsed() < Duration::from_millis(5));
    }
}
