//! The fleet: a registry of named, independently hardened backends.
//!
//! One [`Fleet`] member = one model deployment: a hardened backend plus
//! (once assembled into a [`crate::server::Server`]) its *own*
//! [`safex_core::health::HealthMonitor`] ladder. Keeping the ladders
//! per-member is the point of fleet serving: a struck model walks its
//! own Nominal → Degraded → SafeStop and sheds its own tiers, while the
//! rest of the fleet keeps serving — the fleet as a whole only fails
//! when every member has.
//!
//! The registry is deliberately dumb: names and backends, dense
//! [`ModelId`]s in registration order. Health, load, routing, and
//! metrics state all live in the server, which owns the simulation
//! clock those states are a function of.

use crate::backend::Backend;
use crate::error::ServeError;
use crate::request::ModelId;

/// One registered model deployment.
#[derive(Debug, Clone)]
pub struct FleetMember<B> {
    name: String,
    backend: B,
}

impl<B> FleetMember<B> {
    /// The member's human-readable name (unique within the fleet).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member's backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The member's backend, mutably (fault-injection harnesses strike
    /// through this).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

/// A non-empty, ordered registry of model deployments.
#[derive(Debug, Clone)]
pub struct Fleet<B: Backend> {
    members: Vec<FleetMember<B>>,
}

impl<B: Backend> Fleet<B> {
    /// Starts an empty registration.
    pub fn builder() -> FleetBuilder<B> {
        FleetBuilder {
            members: Vec::new(),
        }
    }

    /// A one-member fleet named `"primary"` — the single-model
    /// deployment shape [`crate::server::Server::single`] wraps.
    pub fn single(backend: B) -> Self {
        Fleet {
            members: vec![FleetMember {
                name: "primary".into(),
                backend,
            }],
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Fleets are never empty (the builder enforces it), but clippy
    /// wants the pair.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// All member ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ModelId> + '_ {
        (0..self.members.len()).map(|i| ModelId::new(i as u16))
    }

    /// The members, in registration order.
    pub fn members(&self) -> &[FleetMember<B>] {
        &self.members
    }

    /// One member by id.
    pub fn member(&self, id: ModelId) -> Option<&FleetMember<B>> {
        self.members.get(id.index())
    }

    /// One member's backend, mutably — the deterministic strike surface
    /// for fault-injection hooks (`run_trace_with` hands the hook
    /// `&mut Fleet<B>` so it can corrupt exactly one model mid-traffic).
    pub fn backend_mut(&mut self, id: ModelId) -> Option<&mut B> {
        self.members.get_mut(id.index()).map(|m| &mut m.backend)
    }

    /// Atomically replaces one member's backend, returning the old one.
    /// This is the commit step of a hot model swap: the member keeps its
    /// name and id, only the serving weights change.
    pub fn replace_backend(&mut self, id: ModelId, backend: B) -> Option<B> {
        self.members
            .get_mut(id.index())
            .map(|m| std::mem::replace(&mut m.backend, backend))
    }
}

/// Builds a [`Fleet`] member by member.
#[derive(Debug)]
pub struct FleetBuilder<B> {
    members: Vec<FleetMember<B>>,
}

impl<B: Backend> FleetBuilder<B> {
    /// Registers a named member; ids are assigned densely in
    /// registration order.
    #[must_use]
    pub fn register(mut self, name: impl Into<String>, backend: B) -> Self {
        self.members.push(FleetMember {
            name: name.into(),
            backend,
        });
        self
    }

    /// Finishes registration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an empty fleet or more
    /// members than [`ModelId`] can index, and
    /// [`ServeError::DuplicateMember`] when two members claim the same
    /// name — duplicates would alias one [`ModelId`] across two
    /// deployments, so they are rejected rather than last-write-wins.
    pub fn build(self) -> Result<Fleet<B>, ServeError> {
        if self.members.is_empty() {
            return Err(ServeError::BadConfig(
                "a fleet needs at least one member".into(),
            ));
        }
        if self.members.len() > u16::MAX as usize {
            return Err(ServeError::BadConfig(format!(
                "fleet of {} members exceeds the ModelId index space",
                self.members.len()
            )));
        }
        for (i, m) in self.members.iter().enumerate() {
            if self.members[..i].iter().any(|p| p.name == m.name) {
                return Err(ServeError::DuplicateMember(m.name.clone()));
            }
        }
        Ok(Fleet {
            members: self.members,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BatchVerdict;

    /// A trivial test backend.
    #[derive(Debug)]
    struct Fixed;

    impl Backend for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }

        fn serve(&mut self, inputs: &[&[f32]]) -> Result<Vec<BatchVerdict>, ServeError> {
            Ok(inputs
                .iter()
                .map(|_| BatchVerdict::Ok {
                    class: 0,
                    confidence: 1.0,
                    flagged: false,
                    corrected: false,
                })
                .collect())
        }
    }

    #[test]
    fn registration_assigns_dense_ids() {
        let fleet = Fleet::builder()
            .register("alpha", Fixed)
            .register("beta", Fixed)
            .register("gamma", Fixed)
            .build()
            .unwrap();
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        let ids: Vec<ModelId> = fleet.ids().collect();
        assert_eq!(ids, vec![ModelId::new(0), ModelId::new(1), ModelId::new(2)]);
        assert_eq!(fleet.member(ModelId::new(1)).unwrap().name(), "beta");
        assert!(fleet.member(ModelId::new(3)).is_none());
    }

    #[test]
    fn empty_and_duplicate_fleets_are_rejected() {
        assert!(Fleet::<Fixed>::builder().build().is_err());
        let dup = Fleet::builder()
            .register("alpha", Fixed)
            .register("alpha", Fixed)
            .build();
        assert!(
            matches!(dup, Err(ServeError::DuplicateMember(ref name)) if name == "alpha"),
            "duplicate names must fail with the typed error, got {dup:?}"
        );
    }

    #[test]
    fn replace_backend_swaps_in_place() {
        let mut fleet = Fleet::builder()
            .register("alpha", Fixed)
            .register("beta", Fixed)
            .build()
            .unwrap();
        assert!(fleet.replace_backend(ModelId::new(1), Fixed).is_some());
        assert!(fleet.replace_backend(ModelId::new(9), Fixed).is_none());
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.members()[1].name(), "beta");
    }

    #[test]
    fn single_wraps_one_primary_member() {
        let mut fleet = Fleet::single(Fixed);
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.members()[0].name(), "primary");
        assert!(fleet.backend_mut(ModelId::new(0)).is_some());
        assert!(fleet.backend_mut(ModelId::new(1)).is_none());
    }
}
