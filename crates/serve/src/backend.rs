//! Inference backends: what the batcher dispatches to.
//!
//! A backend turns a formed batch into per-item verdicts. The two
//! shipped backends cover the deployment spectrum:
//!
//! * [`PoolBackend`] — a [`HardenedPool`] of engine replicas. Fast path:
//!   batch items fan out across replicas, each carrying its own health
//!   events; the *server* owns the degradation ladder.
//! * [`PipelineBackend`] — a full [`SafePipeline`] (pattern + optional
//!   in-pipeline health). Slow path, but every decision carries pattern
//!   semantics (fallback classes, monitor vetoes).
//!
//! Both are deterministic: identical batches produce identical verdicts
//! regardless of pool worker count.

use safex_core::SafePipeline;
use safex_nn::{
    apply_weight_flips, FaultInjector, HardenedEngine, HardenedPool, HealthEvent, WeightFlip,
};
use safex_patterns::Action;

use crate::error::ServeError;

/// One batch item's result.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchVerdict {
    /// A classification was produced.
    Ok {
        /// Predicted class.
        class: usize,
        /// Winning confidence.
        confidence: f32,
        /// `true` when hardening diagnostics (or the pattern) flagged
        /// this decision — the server feeds this into its health ladder.
        flagged: bool,
        /// `true` when a weight fault was detected *and repaired in
        /// place* (ECC sidecar) during this decision. Corrected faults
        /// are warnings, not failures: the server keeps serving and
        /// only degrades when a bounded warning budget is exhausted.
        corrected: bool,
    },
    /// The backend itself demanded a safe stop for this item.
    Stop,
}

/// A batch-serving inference backend.
pub trait Backend {
    /// Stable name for reports.
    fn name(&self) -> &'static str;

    /// Serves one formed batch, one verdict per input, in input order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on infrastructure failure (wrong input
    /// shape etc.); the whole batch fails, no partial verdicts.
    fn serve(&mut self, inputs: &[&[f32]]) -> Result<Vec<BatchVerdict>, ServeError>;

    /// Prepares this backend to take over a fleet slot in a hot swap:
    /// re-golden reference checksums, rebuild ECC sidecars, and verify
    /// the weights. An error here aborts the swap with the old backend
    /// untouched. The default accepts unconditionally (backends with no
    /// hardening state need no preparation).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::SwapFailed`] when the incoming weights fail
    /// verification.
    fn prepare_swap(&mut self) -> Result<(), ServeError> {
        Ok(())
    }

    /// A stable digest of this backend's verified weights, when it can
    /// produce one. Swaps with an `expected_digest` compare against this
    /// after [`Backend::prepare_swap`]; `None` means the backend cannot
    /// attest its weights and digest-pinned swaps will abort.
    fn swap_digest(&self) -> Option<u64> {
        None
    }

    /// The backend's deterministic work counter (e.g. items dispatched),
    /// captured into snapshots so a restore can resume check scheduling
    /// bit-for-bit. Backends without such a counter report 0.
    fn clock(&self) -> u64 {
        0
    }

    /// Restores the work counter captured by [`Backend::clock`] after a
    /// process restart. The default is a no-op.
    fn resync(&mut self, _clock: u64) {}
}

/// Boxed backends forward, so a heterogeneous fleet can be assembled as
/// `Fleet<Box<dyn Backend>>` when members are of different concrete
/// types.
impl<T: Backend + ?Sized> Backend for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn serve(&mut self, inputs: &[&[f32]]) -> Result<Vec<BatchVerdict>, ServeError> {
        (**self).serve(inputs)
    }

    fn prepare_swap(&mut self) -> Result<(), ServeError> {
        (**self).prepare_swap()
    }

    fn swap_digest(&self) -> Option<u64> {
        (**self).swap_digest()
    }

    fn clock(&self) -> u64 {
        (**self).clock()
    }

    fn resync(&mut self, clock: u64) {
        (**self).resync(clock)
    }
}

/// A [`HardenedPool`]-backed backend: replicated hardened engines with
/// per-item health events.
#[derive(Debug, Clone)]
pub struct PoolBackend {
    pool: HardenedPool,
}

impl PoolBackend {
    /// Builds a pool of `workers` replicas of `engine`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Nn`] when `workers` is zero.
    pub fn new(engine: &HardenedEngine, workers: usize) -> Result<Self, ServeError> {
        Ok(PoolBackend {
            pool: HardenedPool::new(engine, workers)?,
        })
    }

    /// The wrapped pool (counters, worker count).
    pub fn pool(&self) -> &HardenedPool {
        &self.pool
    }

    /// Injects `events` SEU events (each flipping `bits` bits of one
    /// weight) into **every** replica identically: the flips are drawn
    /// once from `seed` on replica 0, then replayed onto the others via
    /// [`apply_weight_flips`]. Replicas must stay byte-identical or
    /// batch output would depend on which replica served which item.
    ///
    /// Returns the flips so a harness can later undo them (weights are
    /// self-inverse under XOR of the same bits) or log them as ground
    /// truth.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Nn`] when the model has no parameters or
    /// `bits` is outside 1..=32.
    pub fn strike_weights(
        &mut self,
        seed: u64,
        events: usize,
        bits: u32,
    ) -> Result<Vec<WeightFlip>, ServeError> {
        let engines = self.pool.engines_mut();
        let mut injector = FaultInjector::new(seed);
        let flips = injector.flip_weight_bits(engines[0].model_mut(), events, bits)?;
        for engine in &mut engines[1..] {
            apply_weight_flips(engine.model_mut(), &flips)?;
        }
        Ok(flips)
    }
}

impl Backend for PoolBackend {
    fn name(&self) -> &'static str {
        "hardened_pool"
    }

    /// Re-goldens every replica on the *current* weights (fresh CRC-32
    /// references plus rebuilt ECC sidecars) and verifies the replicas
    /// agree; the hot-swap verification gate.
    fn prepare_swap(&mut self) -> Result<(), ServeError> {
        self.pool
            .regolden()
            .map_err(|e| ServeError::SwapFailed(e.to_string()))
    }

    /// FNV-1a over replica 0's golden `(layer, crc32)` table. Replicas
    /// are verified identical by `prepare_swap`, so one table attests
    /// the whole pool.
    fn swap_digest(&self) -> Option<u64> {
        let mut fnv = safex_trace::Fnv64::new();
        for &(layer, crc) in self.pool.engines()[0].golden_checksums() {
            fnv.write_u64(layer as u64);
            fnv.write_u64(crc as u64);
        }
        Some(fnv.finish())
    }

    fn clock(&self) -> u64 {
        self.pool.dispatched()
    }

    fn resync(&mut self, clock: u64) {
        self.pool.resync(clock);
    }

    fn serve(&mut self, inputs: &[&[f32]]) -> Result<Vec<BatchVerdict>, ServeError> {
        let out = self.pool.classify_batch(inputs)?;
        Ok(out
            .into_iter()
            .map(|c| {
                let corrected = c
                    .events
                    .iter()
                    .any(|e| matches!(e, HealthEvent::CorrectedFault { .. }));
                // Only *uncorrected* diagnostics flag the decision;
                // repaired faults ride the warning tier instead.
                let flagged = c
                    .events
                    .iter()
                    .any(|e| !matches!(e, HealthEvent::CorrectedFault { .. }));
                BatchVerdict::Ok {
                    class: c.classification.class,
                    confidence: c.classification.confidence,
                    flagged,
                    corrected,
                }
            })
            .collect())
    }
}

/// A [`SafePipeline`]-backed backend: every item passes through the
/// pipeline's safety pattern.
pub struct PipelineBackend {
    pipeline: SafePipeline,
}

impl PipelineBackend {
    /// Wraps an assembled pipeline.
    pub fn new(pipeline: SafePipeline) -> Self {
        PipelineBackend { pipeline }
    }

    /// The wrapped pipeline (evidence, counters).
    pub fn pipeline(&self) -> &SafePipeline {
        &self.pipeline
    }
}

impl Backend for PipelineBackend {
    fn name(&self) -> &'static str {
        "safe_pipeline"
    }

    fn serve(&mut self, inputs: &[&[f32]]) -> Result<Vec<BatchVerdict>, ServeError> {
        let decisions = self.pipeline.decide_batch(inputs)?;
        Ok(decisions
            .into_iter()
            .map(|d| match d.action {
                Action::Proceed { class, confidence } => BatchVerdict::Ok {
                    class,
                    confidence,
                    flagged: false,
                    corrected: false,
                },
                Action::Fallback { class, .. } => BatchVerdict::Ok {
                    class,
                    // Fallback classes are policy, not evidence — they
                    // carry no confidence score.
                    confidence: 0.0,
                    flagged: true,
                    corrected: false,
                },
                Action::SafeStop { .. } => BatchVerdict::Stop,
                // `Action` is #[non_exhaustive]; treat unknown variants
                // conservatively.
                _ => BatchVerdict::Stop,
            })
            .collect())
    }
}
