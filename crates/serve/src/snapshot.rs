//! Versioned, checksummed server snapshots.
//!
//! A snapshot freezes everything a process restart would otherwise lose:
//! per-member [`HealthMonitor`](safex_core::HealthMonitor) ladder state
//! (rung, windows, streaks, warn-budget consumption), mid-run loop state
//! (queue residue, in-flight batches, metrics counters, the event
//! clock), the result cache, the evidence chain, per-backend dispatch
//! clocks, and accumulated soak statistics. Restoring resumes the run
//! exactly where it left off instead of silently resetting every ladder
//! to Nominal — and a mid-traffic snapshot/restore reproduces the
//! uninterrupted run's replay JSON bit-for-bit.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! "SXSNAP"  | 6 bytes  | magic
//! version   | u16 LE   | currently 1
//! length    | u64 LE   | payload byte count
//! payload   | ...      | field-by-field little-endian body
//! checksum  | u32 LE   | CRC-32 of the payload
//! ```
//!
//! Decoding fails **closed**: a bad magic, unknown version, wrong
//! length, checksum mismatch, short read, invalid enum tag, or trailing
//! garbage all return [`ServeError::BadSnapshot`] and no partial state
//! is ever applied.

use safex_core::health::{HealthState, LadderState, Transition};
use safex_nn::crc32;
use safex_trace::{Fnv64, RecordKind, Value};

use crate::backend::BatchVerdict;
use crate::error::ServeError;
use crate::metrics::{Metrics, ModelCounters};
use crate::queue::Pending;
use crate::request::{ModelId, Outcome, Request, Response, ShedReason, Tier};
use crate::server::{InFlightBatch, ServiceTransition};
use crate::soak::{SoakStats, SwapEvent, WatchdogState};
use crate::traffic::ArrivalTrace;

/// Snapshot container magic.
pub const SNAPSHOT_MAGIC: &[u8; 6] = b"SXSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// One evidence record as stored in a snapshot: kind and fields only.
/// Hashes are *recomputed* by re-appending on restore and verified
/// against the stored head, so a tampered chain cannot be smuggled in.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainEntry {
    /// The record kind.
    pub kind: RecordKind,
    /// The record's fields, in order.
    pub fields: Vec<(String, Value)>,
}

/// One cached verified result as stored in a snapshot (insertion order
/// is preserved so FIFO eviction resumes identically).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntrySnapshot {
    /// The exact input bits.
    pub input: Vec<f32>,
    /// Predicted class.
    pub class: usize,
    /// Winning confidence.
    pub confidence: f32,
    /// The member that computed the entry.
    pub model: ModelId,
}

/// Mid-run event-loop state.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot {
    /// Responses resolved so far.
    pub responses: Vec<Response>,
    /// Service transitions recorded so far.
    pub transitions: Vec<ServiceTransition>,
    /// Metrics counters mid-run.
    pub metrics: Metrics,
    /// Queue residue in admission order.
    pub queue_items: Vec<Pending>,
    /// Queue capacity bound.
    pub queue_cap: u64,
    /// Historical queue peak.
    pub queue_peak: u64,
    /// Batches executed but not yet retired.
    pub inflight: Vec<InFlightBatch>,
    /// Per-member busy-until ticks.
    pub free_at: Vec<u64>,
    /// Routing decisions made so far.
    pub decisions: u64,
    /// Index of the next arrival to admit.
    pub next_arrival: u64,
    /// The event clock at capture.
    pub now: u64,
    /// Whether the last dispatch round made no progress.
    pub stalled: bool,
    /// Watchdog bookkeeping.
    pub watchdog: WatchdogState,
    /// Soak statistics accumulated so far.
    pub stats: SoakStats,
}

/// A complete decoded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSnapshot {
    /// Evidence-chain campaign name.
    pub campaign: String,
    /// Digest of the server configuration the snapshot belongs to.
    pub config_digest: u64,
    /// Digest of the arrival trace mid-replay.
    pub trace_digest: u64,
    /// Per-member ladder state, in member order.
    pub monitors: Vec<LadderState>,
    /// Result-cache entries in insertion order.
    pub cache_entries: Vec<CacheEntrySnapshot>,
    /// Evidence records in chain order.
    pub chain: Vec<ChainEntry>,
    /// Head hash the re-appended chain must reproduce.
    pub chain_head: u64,
    /// Per-member backend dispatch clocks.
    pub backend_clocks: Vec<u64>,
    /// Mid-run loop state.
    pub run: RunSnapshot,
}

impl ServerSnapshot {
    /// Encodes to the versioned, checksummed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.str(&self.campaign);
        w.u64(self.config_digest);
        w.u64(self.trace_digest);
        w.u64(self.monitors.len() as u64);
        for m in &self.monitors {
            w.ladder(m);
        }
        w.u64(self.cache_entries.len() as u64);
        for e in &self.cache_entries {
            w.f32s(&e.input);
            w.u64(e.class as u64);
            w.f32(e.confidence);
            w.u16(e.model.index() as u16);
        }
        w.u64(self.chain.len() as u64);
        for entry in &self.chain {
            w.str(entry.kind.tag());
            w.u64(entry.fields.len() as u64);
            for (name, value) in &entry.fields {
                w.str(name);
                w.value(value);
            }
        }
        w.u64(self.chain_head);
        w.u64(self.backend_clocks.len() as u64);
        for &c in &self.backend_clocks {
            w.u64(c);
        }
        w.run(&self.run);

        let payload = w.buf;
        let mut out = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = crc32(payload.iter().copied());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes and fully validates a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadSnapshot`] on any structural defect; no
    /// partially decoded state escapes.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        if bytes.len() < 20 {
            return Err(bad("container shorter than the fixed header"));
        }
        if &bytes[..6] != SNAPSHOT_MAGIC {
            return Err(bad("bad magic"));
        }
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(ServeError::BadSnapshot(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        let len64 = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        // The declared payload length is attacker-controlled: compare against
        // the actual remainder (header + trailer already bounds-checked above)
        // rather than computing `16 + len + 4`, which overflows on a lie.
        let len = bytes.len() - 20;
        if len64 != len as u64 {
            return Err(ServeError::BadSnapshot(format!(
                "container length {} does not match declared payload of {len64} bytes",
                bytes.len()
            )));
        }
        let payload = &bytes[16..16 + len];
        let stored = u32::from_le_bytes(bytes[16 + len..].try_into().expect("4 bytes"));
        let actual = crc32(payload.iter().copied());
        if stored != actual {
            return Err(ServeError::BadSnapshot(format!(
                "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }

        let mut r = Reader::new(payload);
        let campaign = r.str()?;
        let config_digest = r.u64()?;
        let trace_digest = r.u64()?;
        let monitors = r.vec(|r| r.ladder())?;
        let cache_entries = r.vec(|r| {
            Ok(CacheEntrySnapshot {
                input: r.f32s()?,
                class: r.u64()? as usize,
                confidence: r.f32()?,
                model: ModelId::new(r.u16()?),
            })
        })?;
        let chain = r.vec(|r| {
            let tag = r.str()?;
            let kind = kind_from_tag(&tag)
                .ok_or_else(|| ServeError::BadSnapshot(format!("unknown record kind {tag:?}")))?;
            let fields = r.vec(|r| Ok((r.str()?, r.value()?)))?;
            Ok(ChainEntry { kind, fields })
        })?;
        let chain_head = r.u64()?;
        let backend_clocks = r.vec(|r| r.u64())?;
        let run = r.run()?;
        r.finish()?;

        Ok(ServerSnapshot {
            campaign,
            config_digest,
            trace_digest,
            monitors,
            cache_entries,
            chain,
            chain_head,
            backend_clocks,
            run,
        })
    }

    /// The stored payload checksum of an encoded snapshot (the value the
    /// restore evidence record cites). `None` when the container is too
    /// short to carry one.
    pub fn stored_checksum(bytes: &[u8]) -> Option<u32> {
        if bytes.len() < 20 {
            return None;
        }
        let tail: [u8; 4] = bytes[bytes.len() - 4..].try_into().ok()?;
        Some(u32::from_le_bytes(tail))
    }
}

/// FNV-1a digest of an arrival trace: at-ticks, ids, tiers, deadlines,
/// pins, and exact input bits. A restored run refuses to resume against
/// a trace with a different digest.
pub fn trace_digest(trace: &ArrivalTrace) -> u64 {
    let mut f = Fnv64::new();
    for a in trace.arrivals() {
        f.write_u64(a.at);
        f.write_u64(a.request.id);
        f.write_u64(a.request.tier.index() as u64);
        f.write_u64(a.request.deadline);
        match a.request.model {
            Some(m) => {
                f.write_u64(1);
                f.write_u64(m.index() as u64);
            }
            None => f.write_u64(0),
        }
        f.write_u64(a.request.input.len() as u64);
        for &v in &a.request.input {
            f.write_u64(u64::from(v.to_bits()));
        }
    }
    f.finish()
}

fn bad(msg: &str) -> ServeError {
    ServeError::BadSnapshot(msg.into())
}

fn kind_from_tag(tag: &str) -> Option<RecordKind> {
    Some(match tag {
        "dataset_generated" => RecordKind::DatasetGenerated,
        "model_trained" => RecordKind::ModelTrained,
        "model_quantized" => RecordKind::ModelQuantized,
        "monitor_calibrated" => RecordKind::MonitorCalibrated,
        "inference_performed" => RecordKind::InferencePerformed,
        "monitor_verdict" => RecordKind::MonitorVerdict,
        "pattern_decision" => RecordKind::PatternDecision,
        "explanation_produced" => RecordKind::ExplanationProduced,
        "timing_analysis" => RecordKind::TimingAnalysis,
        "verification_outcome" => RecordKind::VerificationOutcome,
        "health_transition" => RecordKind::HealthTransition,
        "fault_corrected" => RecordKind::FaultCorrected,
        "cache_hit" => RecordKind::CacheHit,
        "runtime_restored" => RecordKind::RuntimeRestored,
        "model_swapped" => RecordKind::ModelSwapped,
        "swap_aborted" => RecordKind::SwapAborted,
        "watchdog_alarm" => RecordKind::WatchdogAlarm,
        "watchdog_escalation" => RecordKind::WatchdogEscalation,
        "watchdog_proof" => RecordKind::WatchdogProof,
        _ => return None,
    })
}

fn state_tag(state: HealthState) -> u8 {
    match state {
        HealthState::Nominal => 0,
        HealthState::Degraded => 1,
        HealthState::SafeStop => 2,
    }
}

fn state_from(tag: u8) -> Result<HealthState, ServeError> {
    Ok(match tag {
        0 => HealthState::Nominal,
        1 => HealthState::Degraded,
        2 => HealthState::SafeStop,
        _ => {
            return Err(ServeError::BadSnapshot(format!(
                "bad health state tag {tag}"
            )))
        }
    })
}

fn tier_from(tag: u8) -> Result<Tier, ServeError> {
    Ok(match tag {
        0 => Tier::Low,
        1 => Tier::Medium,
        2 => Tier::High,
        _ => return Err(ServeError::BadSnapshot(format!("bad tier tag {tag}"))),
    })
}

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f32s(&mut self, vs: &[f32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f32(v);
        }
    }

    fn u64s(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Str(s) => {
                self.u8(0);
                self.str(s);
            }
            Value::U64(n) => {
                self.u8(1);
                self.u64(*n);
            }
            Value::F64(x) => {
                self.u8(2);
                self.u64(x.to_bits());
            }
            Value::Bool(b) => {
                self.u8(3);
                self.bool(*b);
            }
            // `Value` is #[non_exhaustive]; a future variant degrades to
            // its display form rather than corrupting the container.
            other => {
                self.u8(0);
                self.str(&format!("{other:?}"));
            }
        }
    }

    fn ladder(&mut self, m: &LadderState) {
        self.u8(state_tag(m.state));
        self.u64(m.history);
        self.u64(m.warn_history);
        self.u32(m.clean_streak);
        self.u64(m.decisions);
        for &t in &m.time_in {
            self.u64(t);
        }
        self.u64(m.transitions.len() as u64);
        for t in &m.transitions {
            self.u8(state_tag(t.from));
            self.u8(state_tag(t.to));
            self.u64(t.at_decision);
        }
    }

    fn request(&mut self, rq: &Request) {
        self.u64(rq.id);
        self.f32s(&rq.input);
        self.u8(rq.tier.index() as u8);
        self.u64(rq.deadline);
        match rq.model {
            Some(m) => {
                self.u8(1);
                self.u16(m.index() as u16);
            }
            None => self.u8(0),
        }
    }

    fn pending(&mut self, p: &Pending) {
        self.request(&p.request);
        self.u64(p.queued_at);
    }

    fn outcome(&mut self, o: &Outcome) {
        match o {
            Outcome::Completed {
                class,
                confidence,
                flagged,
                level,
                model,
                cached,
            } => {
                self.u8(0);
                self.u64(*class as u64);
                self.f32(*confidence);
                self.bool(*flagged);
                self.u8(state_tag(*level));
                self.u16(model.index() as u16);
                self.bool(*cached);
            }
            Outcome::Shed(reason) => {
                self.u8(1);
                match reason {
                    ShedReason::QueueFull => self.u8(0),
                    ShedReason::Displaced { by } => {
                        self.u8(1);
                        self.u64(*by);
                    }
                    ShedReason::DegradedTier { model } => {
                        self.u8(2);
                        self.u16(model.index() as u16);
                    }
                }
            }
            Outcome::Timeout => self.u8(2),
            Outcome::SafeStop { model } => {
                self.u8(3);
                match model {
                    Some(m) => {
                        self.u8(1);
                        self.u16(m.index() as u16);
                    }
                    None => self.u8(0),
                }
            }
        }
    }

    fn verdict(&mut self, v: &BatchVerdict) {
        match v {
            BatchVerdict::Ok {
                class,
                confidence,
                flagged,
                corrected,
            } => {
                self.u8(0);
                self.u64(*class as u64);
                self.f32(*confidence);
                self.bool(*flagged);
                self.bool(*corrected);
            }
            BatchVerdict::Stop => self.u8(1),
        }
    }

    fn run(&mut self, run: &RunSnapshot) {
        self.u64(run.responses.len() as u64);
        for r in &run.responses {
            self.u64(r.id);
            self.u8(r.tier.index() as u8);
            self.u64(r.arrived_at);
            self.u64(r.resolved_at);
            self.outcome(&r.outcome);
        }
        self.u64(run.transitions.len() as u64);
        for t in &run.transitions {
            self.u16(t.model.index() as u16);
            self.u8(state_tag(t.from));
            self.u8(state_tag(t.to));
            self.u64(t.at_tick);
            self.u64(t.after_request);
        }
        // Metrics.
        let m = &run.metrics;
        self.u64s(&m.latencies);
        for tier in &m.tier_latencies {
            self.u64s(tier);
        }
        self.u64(m.batch_sizes.len() as u64);
        for (&size, &n) in &m.batch_sizes {
            self.u64(size as u64);
            self.u64(n);
        }
        for arr in [
            &m.completed,
            &m.cached,
            &m.shed_queue_full,
            &m.shed_displaced,
            &m.shed_degraded,
            &m.timeout,
            &m.safe_stop,
        ] {
            for &v in arr.iter() {
                self.u64(v);
            }
        }
        self.u64(m.peak_queue_depth as u64);
        self.u64(m.cache_lookups);
        self.u64(m.cache_hits);
        self.u64(m.models.len() as u64);
        for mc in &m.models {
            self.u64(mc.batches);
            self.u64(mc.items);
            self.u64(mc.completed);
        }
        // Queue.
        self.u64(run.queue_items.len() as u64);
        for p in &run.queue_items {
            self.pending(p);
        }
        self.u64(run.queue_cap);
        self.u64(run.queue_peak);
        // In-flight batches.
        self.u64(run.inflight.len() as u64);
        for b in &run.inflight {
            self.u16(b.model.index() as u16);
            self.u64(b.done_at);
            self.u64(b.items.len() as u64);
            for (p, v) in &b.items {
                self.pending(p);
                self.verdict(v);
            }
        }
        self.u64s(&run.free_at);
        self.u64(run.decisions);
        self.u64(run.next_arrival);
        self.u64(run.now);
        self.bool(run.stalled);
        // Watchdog.
        for &v in &run.watchdog.last_progress {
            self.u64(v);
        }
        for &v in &run.watchdog.strikes {
            self.u32(v);
        }
        self.u64(run.watchdog.next_proof);
        // Soak stats.
        self.u64(run.stats.swaps.len() as u64);
        for s in &run.stats.swaps {
            self.u16(s.model.index() as u16);
            self.u64(s.requested_at);
            self.u64(s.resolved_at);
            self.bool(s.committed);
            self.u64(s.digest);
        }
        for &v in &run.stats.watchdog_kicks {
            self.u64(v);
        }
        self.u64(run.stats.watchdog_alarms);
        self.u64(run.stats.watchdog_escalations);
        self.u64(run.stats.watchdog_proofs);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad("payload truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn finish(&self) -> Result<(), ServeError> {
        if self.pos != self.bytes.len() {
            return Err(ServeError::BadSnapshot(format!(
                "{} trailing bytes after the last field",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, ServeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn bool(&mut self) -> Result<bool, ServeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ServeError::BadSnapshot(format!("bad bool byte {other}"))),
        }
    }

    fn len(&mut self) -> Result<usize, ServeError> {
        let n = self.u64()? as usize;
        // A length can never exceed the bytes that remain; rejecting here
        // keeps a corrupted length from attempting a huge allocation.
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err(bad("length field exceeds remaining payload"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, ServeError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string field is not UTF-8"))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, ServeError> {
        let n = self.len()?;
        (0..n).map(|_| self.f32()).collect()
    }

    fn u64s(&mut self) -> Result<Vec<u64>, ServeError> {
        let n = self.len()?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn vec<T>(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<T, ServeError>,
    ) -> Result<Vec<T>, ServeError> {
        let n = self.len()?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(item(self)?);
        }
        Ok(out)
    }

    fn value(&mut self) -> Result<Value, ServeError> {
        Ok(match self.u8()? {
            0 => Value::Str(self.str()?),
            1 => Value::U64(self.u64()?),
            2 => Value::F64(f64::from_bits(self.u64()?)),
            3 => Value::Bool(self.bool()?),
            other => return Err(ServeError::BadSnapshot(format!("bad value tag {other}"))),
        })
    }

    fn ladder(&mut self) -> Result<LadderState, ServeError> {
        let state = state_from(self.u8()?)?;
        let history = self.u64()?;
        let warn_history = self.u64()?;
        let clean_streak = self.u32()?;
        let decisions = self.u64()?;
        let time_in = [self.u64()?, self.u64()?, self.u64()?];
        let transitions = self.vec(|r| {
            Ok(Transition {
                from: state_from(r.u8()?)?,
                to: state_from(r.u8()?)?,
                at_decision: r.u64()?,
            })
        })?;
        Ok(LadderState {
            state,
            history,
            warn_history,
            clean_streak,
            decisions,
            time_in,
            transitions,
        })
    }

    fn request(&mut self) -> Result<Request, ServeError> {
        let id = self.u64()?;
        let input = self.f32s()?;
        let tier = tier_from(self.u8()?)?;
        let deadline = self.u64()?;
        let model = match self.u8()? {
            0 => None,
            1 => Some(ModelId::new(self.u16()?)),
            other => return Err(ServeError::BadSnapshot(format!("bad pin tag {other}"))),
        };
        Ok(Request {
            id,
            input,
            tier,
            deadline,
            model,
        })
    }

    fn pending(&mut self) -> Result<Pending, ServeError> {
        Ok(Pending {
            request: self.request()?,
            queued_at: self.u64()?,
        })
    }

    fn outcome(&mut self) -> Result<Outcome, ServeError> {
        Ok(match self.u8()? {
            0 => Outcome::Completed {
                class: self.u64()? as usize,
                confidence: self.f32()?,
                flagged: self.bool()?,
                level: state_from(self.u8()?)?,
                model: ModelId::new(self.u16()?),
                cached: self.bool()?,
            },
            1 => Outcome::Shed(match self.u8()? {
                0 => ShedReason::QueueFull,
                1 => ShedReason::Displaced { by: self.u64()? },
                2 => ShedReason::DegradedTier {
                    model: ModelId::new(self.u16()?),
                },
                other => return Err(ServeError::BadSnapshot(format!("bad shed tag {other}"))),
            }),
            2 => Outcome::Timeout,
            3 => Outcome::SafeStop {
                model: match self.u8()? {
                    0 => None,
                    1 => Some(ModelId::new(self.u16()?)),
                    other => return Err(ServeError::BadSnapshot(format!("bad stop tag {other}"))),
                },
            },
            other => return Err(ServeError::BadSnapshot(format!("bad outcome tag {other}"))),
        })
    }

    fn verdict(&mut self) -> Result<BatchVerdict, ServeError> {
        Ok(match self.u8()? {
            0 => BatchVerdict::Ok {
                class: self.u64()? as usize,
                confidence: self.f32()?,
                flagged: self.bool()?,
                corrected: self.bool()?,
            },
            1 => BatchVerdict::Stop,
            other => return Err(ServeError::BadSnapshot(format!("bad verdict tag {other}"))),
        })
    }

    fn run(&mut self) -> Result<RunSnapshot, ServeError> {
        let responses = self.vec(|r| {
            Ok(Response {
                id: r.u64()?,
                tier: tier_from(r.u8()?)?,
                arrived_at: r.u64()?,
                resolved_at: r.u64()?,
                outcome: r.outcome()?,
            })
        })?;
        let transitions = self.vec(|r| {
            Ok(ServiceTransition {
                model: ModelId::new(r.u16()?),
                from: state_from(r.u8()?)?,
                to: state_from(r.u8()?)?,
                at_tick: r.u64()?,
                after_request: r.u64()?,
            })
        })?;
        let latencies = self.u64s()?;
        let tier_latencies = [self.u64s()?, self.u64s()?, self.u64s()?];
        let mut batch_sizes = std::collections::BTreeMap::new();
        let pairs = self.len()?;
        for _ in 0..pairs {
            let size = self.u64()? as usize;
            let n = self.u64()?;
            if batch_sizes.insert(size, n).is_some() {
                return Err(bad("duplicate batch-size key"));
            }
        }
        let mut tier3 =
            || -> Result<[u64; 3], ServeError> { Ok([self.u64()?, self.u64()?, self.u64()?]) };
        let completed = tier3()?;
        let cached = tier3()?;
        let shed_queue_full = tier3()?;
        let shed_displaced = tier3()?;
        let shed_degraded = tier3()?;
        let timeout = tier3()?;
        let safe_stop = tier3()?;
        let peak_queue_depth = self.u64()? as usize;
        let cache_lookups = self.u64()?;
        let cache_hits = self.u64()?;
        let models = self.vec(|r| {
            Ok(ModelCounters {
                batches: r.u64()?,
                items: r.u64()?,
                completed: r.u64()?,
            })
        })?;
        let metrics = Metrics {
            latencies,
            tier_latencies,
            batch_sizes,
            completed,
            cached,
            shed_queue_full,
            shed_displaced,
            shed_degraded,
            timeout,
            safe_stop,
            peak_queue_depth,
            cache_lookups,
            cache_hits,
            models,
        };
        let queue_items = self.vec(|r| r.pending())?;
        let queue_cap = self.u64()?;
        let queue_peak = self.u64()?;
        let inflight = self.vec(|r| {
            Ok(InFlightBatch {
                model: ModelId::new(r.u16()?),
                done_at: r.u64()?,
                items: r.vec(|r| Ok((r.pending()?, r.verdict()?)))?,
            })
        })?;
        let free_at = self.u64s()?;
        let decisions = self.u64()?;
        let next_arrival = self.u64()?;
        let now = self.u64()?;
        let stalled = self.bool()?;
        let watchdog = WatchdogState {
            last_progress: [self.u64()?, self.u64()?, self.u64()?, self.u64()?],
            strikes: [self.u32()?, self.u32()?, self.u32()?, self.u32()?],
            next_proof: self.u64()?,
        };
        let swaps = self.vec(|r| {
            Ok(SwapEvent {
                model: ModelId::new(r.u16()?),
                requested_at: r.u64()?,
                resolved_at: r.u64()?,
                committed: r.bool()?,
                digest: r.u64()?,
            })
        })?;
        let stats = SoakStats {
            swaps,
            watchdog_kicks: [self.u64()?, self.u64()?, self.u64()?, self.u64()?],
            watchdog_alarms: self.u64()?,
            watchdog_escalations: self.u64()?,
            watchdog_proofs: self.u64()?,
        };
        Ok(RunSnapshot {
            responses,
            transitions,
            metrics,
            queue_items,
            queue_cap,
            queue_peak,
            inflight,
            free_at,
            decisions,
            next_arrival,
            now,
            stalled,
            watchdog,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> ServerSnapshot {
        ServerSnapshot {
            campaign: "soak".into(),
            config_digest: 0xDEAD,
            trace_digest: 0xBEEF,
            monitors: vec![LadderState {
                state: HealthState::Degraded,
                history: 0b101,
                warn_history: 0b1,
                clean_streak: 2,
                decisions: 40,
                time_in: [30, 10, 0],
                transitions: vec![Transition {
                    from: HealthState::Nominal,
                    to: HealthState::Degraded,
                    at_decision: 31,
                }],
            }],
            cache_entries: vec![CacheEntrySnapshot {
                input: vec![0.25, -1.5],
                class: 3,
                confidence: 0.75,
                model: ModelId::new(0),
            }],
            chain: vec![ChainEntry {
                kind: RecordKind::HealthTransition,
                fields: vec![
                    ("server".into(), Value::Str("safex-serve".into())),
                    ("at_tick".into(), Value::U64(99)),
                    ("score".into(), Value::F64(0.5)),
                    ("ok".into(), Value::Bool(true)),
                ],
            }],
            chain_head: 0x1234,
            backend_clocks: vec![40],
            run: RunSnapshot {
                responses: vec![Response {
                    id: 0,
                    tier: Tier::High,
                    arrived_at: 1,
                    resolved_at: 5,
                    outcome: Outcome::Completed {
                        class: 1,
                        confidence: 0.9,
                        flagged: false,
                        level: HealthState::Nominal,
                        model: ModelId::new(0),
                        cached: false,
                    },
                }],
                transitions: vec![],
                metrics: Metrics::new(1),
                queue_items: vec![Pending {
                    request: Request {
                        id: 7,
                        input: vec![1.0],
                        tier: Tier::Low,
                        deadline: 400,
                        model: None,
                    },
                    queued_at: 90,
                }],
                queue_cap: 64,
                queue_peak: 3,
                inflight: vec![InFlightBatch {
                    model: ModelId::new(0),
                    done_at: 120,
                    items: vec![(
                        Pending {
                            request: Request {
                                id: 8,
                                input: vec![2.0],
                                tier: Tier::Medium,
                                deadline: 300,
                                model: Some(ModelId::new(0)),
                            },
                            queued_at: 95,
                        },
                        BatchVerdict::Ok {
                            class: 2,
                            confidence: 0.6,
                            flagged: false,
                            corrected: true,
                        },
                    )],
                }],
                free_at: vec![120],
                decisions: 11,
                next_arrival: 9,
                now: 100,
                stalled: false,
                watchdog: WatchdogState {
                    last_progress: [100, 90, 95, 80],
                    strikes: [0, 1, 0, 0],
                    next_proof: 128,
                },
                stats: SoakStats::default(),
            },
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let snap = tiny_snapshot();
        let bytes = snap.encode();
        let back = ServerSnapshot::decode(&bytes).unwrap();
        assert_eq!(snap, back);
        assert!(ServerSnapshot::stored_checksum(&bytes).is_some());
    }

    #[test]
    fn every_truncation_fails_closed() {
        let bytes = tiny_snapshot().encode();
        for len in 0..bytes.len() {
            assert!(
                ServerSnapshot::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn any_flipped_byte_fails_closed() {
        let bytes = tiny_snapshot().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                ServerSnapshot::decode(&bad).is_err(),
                "flip at byte {i} must fail"
            );
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let bytes = tiny_snapshot().encode();
        let mut wrong_version = bytes.clone();
        wrong_version[6] = 9;
        assert!(matches!(
            ServerSnapshot::decode(&wrong_version),
            Err(ServeError::BadSnapshot(msg)) if msg.contains("version")
        ));
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert!(ServerSnapshot::decode(&wrong_magic).is_err());
    }

    #[test]
    fn trace_digest_distinguishes_traces() {
        use crate::traffic::TrafficConfig;
        let inputs = vec![vec![0.1, 0.2], vec![0.3, 0.4]];
        let a = TrafficConfig::default().synthesize(&inputs).unwrap();
        let b = TrafficConfig {
            seed: 0x1234,
            ..TrafficConfig::default()
        }
        .synthesize(&inputs)
        .unwrap();
        assert_eq!(trace_digest(&a), trace_digest(&a));
        assert_ne!(trace_digest(&a), trace_digest(&b));
    }
}
