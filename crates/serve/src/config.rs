//! Server assembly configuration.

use safex_core::health::HealthConfig;

use crate::batcher::{BatchPolicy, ServiceModel};
use crate::error::ServeError;
use crate::request::Tier;

/// Everything a [`crate::server::Server`] needs besides its backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Batch formation policy (also bounds the submission queue).
    pub policy: BatchPolicy,
    /// Tick cost model for dispatched batches.
    pub service: ServiceModel,
    /// Degradation-ladder thresholds. The default latches safe stop
    /// (`resume_after: 0`): a serving deployment leaves safe stop by
    /// maintenance action, not by luck.
    pub health: HealthConfig,
    /// While `Degraded`, requests with a tier *below* this floor are
    /// shed (typed [`crate::request::ShedReason::DegradedTier`]). The
    /// default floor of [`Tier::Medium`] sheds only best-effort work.
    pub degraded_floor: Tier,
    /// Evidence-chain campaign name.
    pub campaign: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            policy: BatchPolicy::default(),
            service: ServiceModel::default(),
            health: HealthConfig::default(),
            degraded_floor: Tier::Medium,
            campaign: "serving".into(),
        }
    }
}

impl ServerConfig {
    /// Validates the assembly.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid batch policy or
    /// health configuration.
    pub fn validate(&self) -> Result<(), ServeError> {
        self.policy.validate()?;
        self.health
            .validate()
            .map_err(|e| ServeError::BadConfig(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServerConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_members_are_rejected() {
        let bad_policy = ServerConfig {
            policy: BatchPolicy {
                max_batch: 0,
                ..BatchPolicy::default()
            },
            ..ServerConfig::default()
        };
        assert!(bad_policy.validate().is_err());
        let bad_health = ServerConfig {
            health: HealthConfig {
                window: 0,
                ..HealthConfig::default()
            },
            ..ServerConfig::default()
        };
        assert!(bad_health.validate().is_err());
    }
}
