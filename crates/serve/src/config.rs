//! Server assembly configuration.

use safex_core::health::HealthConfig;

use crate::batcher::{BatchPolicy, ServiceModel};
use crate::cache::CacheConfig;
use crate::error::ServeError;
use crate::queue::FairnessPolicy;
use crate::request::Tier;
use crate::route::RoutingKind;
use crate::soak::WatchdogConfig;

/// Everything a [`crate::server::Server`] needs besides its fleet.
///
/// `#[non_exhaustive]`: construct with [`ServerConfig::default`] and the
/// `with_*` setters. The fleet redesign added three fields (`fairness`,
/// `cache`, `routing`) this way without touching a single existing
/// call site — that is the pattern for future knobs too.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Batch formation policy (also bounds the submission queue).
    pub policy: BatchPolicy,
    /// Tick cost model for dispatched batches.
    pub service: ServiceModel,
    /// Degradation-ladder thresholds, applied to *each* fleet member's
    /// own monitor. The default latches safe stop (`resume_after: 0`): a
    /// serving deployment leaves safe stop by maintenance action, not by
    /// luck.
    pub health: HealthConfig,
    /// While a member is `Degraded`, requests with a tier *below* this
    /// floor are not routed to it (and are shed with a typed
    /// [`crate::request::ShedReason::DegradedTier`] if no other member
    /// admits them). The default floor of [`Tier::Medium`] sheds only
    /// best-effort work.
    pub degraded_floor: Tier,
    /// Anti-starvation policy for batch selection (aging plus reserved
    /// per-tier batch slots).
    pub fairness: FairnessPolicy,
    /// Cross-request verified-result cache (off by default).
    pub cache: CacheConfig,
    /// Built-in routing policy selector.
    pub routing: RoutingKind,
    /// Layered watchdog knobs (disabled by default; soak runs enable
    /// per-stage liveness deadlines).
    pub watchdog: WatchdogConfig,
    /// Evidence-chain campaign name.
    pub campaign: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            policy: BatchPolicy::default(),
            service: ServiceModel::default(),
            health: HealthConfig::default(),
            degraded_floor: Tier::Medium,
            fairness: FairnessPolicy::default(),
            cache: CacheConfig::default(),
            routing: RoutingKind::default(),
            watchdog: WatchdogConfig::default(),
            campaign: "serving".into(),
        }
    }
}

impl ServerConfig {
    /// Sets the batch formation policy.
    #[must_use]
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the tick cost model.
    #[must_use]
    pub fn with_service(mut self, service: ServiceModel) -> Self {
        self.service = service;
        self
    }

    /// Sets the per-member degradation-ladder thresholds.
    #[must_use]
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Sets the degraded-mode shedding floor.
    #[must_use]
    pub fn with_degraded_floor(mut self, floor: Tier) -> Self {
        self.degraded_floor = floor;
        self
    }

    /// Sets the anti-starvation policy.
    #[must_use]
    pub fn with_fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// Sets the result-cache policy.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the built-in routing policy.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the layered-watchdog policy.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the evidence-chain campaign name.
    #[must_use]
    pub fn with_campaign(mut self, campaign: impl Into<String>) -> Self {
        self.campaign = campaign.into();
        self
    }

    /// Validates the assembly.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid batch policy,
    /// health configuration, or cache configuration.
    pub fn validate(&self) -> Result<(), ServeError> {
        self.policy.validate()?;
        self.health
            .validate()
            .map_err(|e| ServeError::BadConfig(e.to_string()))?;
        self.cache.validate()?;
        self.watchdog.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServerConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_members_are_rejected() {
        let bad_policy =
            ServerConfig::default().with_policy(BatchPolicy::default().with_max_batch(0));
        assert!(bad_policy.validate().is_err());
        let bad_health = ServerConfig::default().with_health(HealthConfig {
            window: 0,
            ..HealthConfig::default()
        });
        assert!(bad_health.validate().is_err());
        let bad_cache = ServerConfig::default().with_cache(CacheConfig::enabled(0));
        assert!(bad_cache.validate().is_err());
        let bad_watchdog = ServerConfig::default().with_watchdog(WatchdogConfig {
            enabled: true,
            stage_deadline: [0; 4],
            proof_cadence: 0,
        });
        assert!(bad_watchdog.validate().is_err());
    }

    #[test]
    fn setters_cover_every_knob() {
        let config = ServerConfig::default()
            .with_policy(BatchPolicy::default().with_max_batch(4))
            .with_service(ServiceModel {
                batch_overhead: 2,
                per_item: 1,
            })
            .with_degraded_floor(Tier::High)
            .with_fairness(FairnessPolicy::strict())
            .with_cache(CacheConfig::enabled(64))
            .with_routing(RoutingKind::RoundRobin)
            .with_watchdog(WatchdogConfig::enabled(128))
            .with_campaign("fleet");
        assert_eq!(config.policy.max_batch, 4);
        assert_eq!(config.service.per_item, 1);
        assert_eq!(config.degraded_floor, Tier::High);
        assert_eq!(config.fairness, FairnessPolicy::strict());
        assert!(config.cache.enabled);
        assert_eq!(config.routing, RoutingKind::RoundRobin);
        assert!(config.watchdog.enabled);
        assert_eq!(config.campaign, "fleet");
        assert!(config.validate().is_ok());
    }
}
