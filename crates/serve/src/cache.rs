//! The cross-request result cache: verified answers, keyed by input
//! digest, on the evidence chain.
//!
//! Fleet traffic repeats itself (sensor frames re-sampled, retries,
//! shared telemetry), and every repeated execution re-spends the
//! hardening tax — CRC sweeps, guard checks — to recompute a result the
//! fleet already produced and *verified*. The cache closes that loop
//! under three safety rules:
//!
//! 1. **Only verified results enter.** An entry is inserted only from a
//!    completed decision that was unflagged, uncorrected, and released
//!    at `Nominal` — a result the full diagnostic battery passed.
//! 2. **Exactness over the digest.** The key is the
//!    [`safex_trace::input_digest`] of the input bits, but the entry
//!    stores the input itself and a hit requires a bit-exact match — a
//!    digest collision degrades to a miss, never to a wrong answer.
//! 3. **Hits stay on the evidence chain.** Every hit emits a
//!    [`safex_trace::RecordKind::CacheHit`] record naming the request,
//!    the digest, and the model that computed the original entry, so a
//!    cached answer is as auditable as a fresh one.
//!
//! Capacity is bounded with deterministic insertion-order (FIFO)
//! eviction, so cache state — like everything else in the server — is a
//! pure function of the replayed trace.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use safex_trace::input_digest;

use crate::error::ServeError;
use crate::request::ModelId;

/// Result-cache knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheConfig {
    /// Whether the cache serves and stores at all. Off by default: the
    /// cache is an optimisation, and a deployment opts in after
    /// reviewing the evidence story above.
    pub enabled: bool,
    /// Maximum entries retained (`>= 1` when enabled); oldest-inserted
    /// evicted first.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            capacity: 1024,
        }
    }
}

impl CacheConfig {
    /// An enabled cache with the given capacity.
    pub fn enabled(capacity: usize) -> Self {
        CacheConfig {
            enabled: true,
            capacity,
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an enabled cache with zero
    /// capacity.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.enabled && self.capacity == 0 {
            return Err(ServeError::BadConfig(
                "an enabled result cache needs capacity >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// One cached, verified classification.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// Predicted class.
    pub class: usize,
    /// Winning confidence.
    pub confidence: f32,
    /// The model that computed (and verified) the entry.
    pub model: ModelId,
    /// The input digest the entry is keyed under.
    pub digest: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    input: Vec<f32>,
    result: CachedResult,
}

/// Bounded, deterministic digest-keyed result store.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    entries: BTreeMap<u64, Entry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
    capacity: usize,
    enabled: bool,
}

impl ResultCache {
    /// An empty cache per `config`.
    pub fn new(config: CacheConfig) -> Self {
        ResultCache {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity: config.capacity,
            enabled: config.enabled,
        }
    }

    /// Whether lookups and inserts do anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `input` up; a digest match with different input bits (an
    /// FNV collision) is a miss, never a wrong answer.
    pub fn lookup(&self, input: &[f32]) -> Option<&CachedResult> {
        if !self.enabled {
            return None;
        }
        let digest = input_digest(input);
        let entry = self.entries.get(&digest)?;
        (entry.input == input).then_some(&entry.result)
    }

    /// Inserts a verified result. First write wins on a digest already
    /// present (whether the same input or a colliding one): entries are
    /// immutable once verified, and a collision must not overwrite a
    /// good entry.
    pub fn insert(&mut self, input: &[f32], class: usize, confidence: f32, model: ModelId) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        let digest = input_digest(input);
        if self.entries.contains_key(&digest) {
            return;
        }
        while self.entries.len() >= self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
        }
        self.entries.insert(
            digest,
            Entry {
                input: input.to_vec(),
                result: CachedResult {
                    class,
                    confidence,
                    model,
                    digest,
                },
            },
        );
        self.order.push_back(digest);
    }

    /// Drops every entry computed by `model`, returning how many were
    /// purged. Called when a member's model is hot-swapped or its ladder
    /// reaches SafeStop: entries verified against the *old* weights (or by
    /// a member the ladder no longer trusts) must not serve further hits.
    pub fn purge_model(&mut self, model: ModelId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, entry| entry.result.model != model);
        self.order
            .retain(|digest| self.entries.contains_key(digest));
        before - self.entries.len()
    }

    /// Entries in insertion (eviction) order, for snapshotting.
    pub(crate) fn entries_in_order(&self) -> Vec<(&[f32], &CachedResult)> {
        self.order
            .iter()
            .filter_map(|digest| self.entries.get(digest))
            .map(|entry| (entry.input.as_slice(), &entry.result))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> ResultCache {
        ResultCache::new(CacheConfig::enabled(capacity))
    }

    #[test]
    fn disabled_cache_never_hits_or_stores() {
        let mut c = ResultCache::new(CacheConfig::default());
        assert!(!c.is_enabled());
        c.insert(&[1.0], 2, 0.9, ModelId::new(0));
        assert!(c.is_empty());
        assert!(c.lookup(&[1.0]).is_none());
    }

    #[test]
    fn hit_requires_bit_exact_input() {
        let mut c = cache(8);
        c.insert(&[1.0, 2.0], 3, 0.8, ModelId::new(1));
        let hit = c.lookup(&[1.0, 2.0]).unwrap();
        assert_eq!((hit.class, hit.model), (3, ModelId::new(1)));
        assert_eq!(hit.digest, input_digest(&[1.0, 2.0]));
        assert!(c.lookup(&[1.0, 2.5]).is_none());
        assert!(c.lookup(&[1.0]).is_none());
    }

    #[test]
    fn first_write_wins_and_eviction_is_fifo() {
        let mut c = cache(2);
        c.insert(&[1.0], 0, 0.5, ModelId::new(0));
        c.insert(&[1.0], 9, 0.9, ModelId::new(1));
        assert_eq!(c.lookup(&[1.0]).unwrap().class, 0, "first write wins");
        c.insert(&[2.0], 1, 0.5, ModelId::new(0));
        c.insert(&[3.0], 2, 0.5, ModelId::new(0));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&[1.0]).is_none(), "oldest entry evicted first");
        assert!(c.lookup(&[2.0]).is_some());
        assert!(c.lookup(&[3.0]).is_some());
    }

    #[test]
    fn purge_model_removes_only_that_members_entries() {
        let mut c = cache(8);
        c.insert(&[1.0], 0, 0.5, ModelId::new(0));
        c.insert(&[2.0], 1, 0.5, ModelId::new(1));
        c.insert(&[3.0], 2, 0.5, ModelId::new(0));
        assert_eq!(c.purge_model(ModelId::new(0)), 2);
        assert!(c.lookup(&[1.0]).is_none());
        assert!(c.lookup(&[3.0]).is_none());
        assert_eq!(c.lookup(&[2.0]).unwrap().class, 1);
        // Insertion order stays consistent after a purge.
        assert_eq!(c.entries_in_order().len(), 1);
        assert_eq!(c.purge_model(ModelId::new(0)), 0);
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::default().validate().is_ok());
        assert!(CacheConfig::enabled(16).validate().is_ok());
        assert!(CacheConfig::enabled(0).validate().is_err());
    }
}
