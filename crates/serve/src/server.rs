//! The fleet serving loop: admission → fairness → routing → dispatch →
//! retirement.
//!
//! [`Server::run_trace`] replays an [`ArrivalTrace`] through a
//! discrete-event simulation of a multi-model serving runtime. The clock
//! is a `u64` tick counter advanced only by trace timestamps and the
//! [`ServiceModel`]'s execution cost — never a wall clock — so the entire
//! run, including batch boundaries, routing decisions, shedding, and
//! every member's degradation-ladder walk, is a pure function of its
//! inputs and replays byte-for-byte.
//!
//! ## The event loop
//!
//! Three event kinds drive the clock, processed in strict time order
//! (and in a fixed order within a tick):
//!
//! 1. **Retirement** — a dispatched batch reaches its completion tick:
//!    its member's monitor absorbs the verdicts, responses are emitted,
//!    verified results enter the cache. Verdicts were *computed* at
//!    dispatch (the batch physically ran then), but their effects land
//!    at the completion tick, so a fault strike that arrives mid-flight
//!    cannot retroactively poison a batch that started before it.
//!    Items withheld because their member's ladder reached `SafeStop`
//!    **fail over**: an unpinned, in-deadline request whose result was
//!    withheld is re-queued and recomputed on a healthy peer — one
//!    member failing costs the fleet latency, not answers.
//! 2. **Arrival** — a request is admitted: fault-injection hook, fleet
//!    health gate, result-cache lookup, bounded queue with tier-ordered
//!    displacement.
//! 3. **Flush** — the batch policy says the queue should dispatch:
//!    fairness selects the round's requests, the routing policy places
//!    each on an eligible member, one batch per idle member starts.
//!
//! ## Per-member service levels
//!
//! Every fleet member owns a full [`HealthMonitor`] ladder fed only by
//! its *own* verdicts. A struck member walks Nominal → Degraded →
//! SafeStop and sheds its own tiers while the rest of the fleet keeps
//! serving; the fleet as a whole refuses work only when every member
//! has stopped. Every ladder transition is appended to the evidence
//! chain with the tick, the member, and the request that triggered it.

use safex_core::health::{HealthMonitor, HealthState, HealthVerdict};
use safex_trace::json::Json;
use safex_trace::{EvidenceChain, RecordKind, Value};

use crate::backend::{Backend, BatchVerdict};
use crate::batcher::{BatchPolicy, ServiceModel};
use crate::cache::ResultCache;
use crate::config::ServerConfig;
use crate::error::ServeError;
use crate::fleet::Fleet;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{Admission, AdmissionQueue, FairnessPolicy, Pending};
use crate::request::{ModelId, Outcome, Request, Response, ShedReason, Tier};
use crate::route::{admits, severity, CandidateView, RouteView, RoutingPolicy};
use crate::traffic::ArrivalTrace;

/// One recorded service-level change on one fleet member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceTransition {
    /// The member whose ladder moved.
    pub model: ModelId,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Tick at which the triggering batch completed.
    pub at_tick: u64,
    /// The request whose decision fired the transition.
    pub after_request: u64,
}

/// One fleet member's health story over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// The member's id.
    pub model: ModelId,
    /// The member's registered name.
    pub name: String,
    /// Ladder state at the end of the run.
    pub final_state: HealthState,
    /// Decisions absorbed while `Nominal`.
    pub time_nominal: u64,
    /// Decisions absorbed while `Degraded`.
    pub time_degraded: u64,
    /// Decisions absorbed while `SafeStop`.
    pub time_stopped: u64,
    /// Ladder transitions over the member's lifetime.
    pub transitions: usize,
}

/// The complete, reproducible result of one trace replay.
///
/// `#[non_exhaustive]`: reports are produced by the server and read by
/// callers; new fields (the fleet redesign added `models` and `routing`)
/// append without breaking downstream matches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeReport {
    /// One response per request, ordered by request id.
    pub responses: Vec<Response>,
    /// Service-level transitions across the fleet, in occurrence order.
    pub transitions: Vec<ServiceTransition>,
    /// Per-member health summaries, indexed by [`ModelId`].
    pub models: Vec<ModelSummary>,
    /// The routing policy that placed the batches.
    pub routing: String,
    /// Frozen metrics.
    pub snapshot: MetricsSnapshot,
    /// Head hash of the evidence chain after the run (binds the report
    /// to the recorded transition and cache-hit evidence).
    pub chain_head: u64,
}

impl ServeReport {
    /// Serialises the full report (responses, transitions, per-member
    /// summaries, metrics) to deterministic JSON — the byte-for-byte
    /// replay artefact.
    pub fn to_json(&self) -> Json {
        let responses: Vec<Json> = self
            .responses
            .iter()
            .map(|r| {
                let mut obj = Json::object();
                obj.set("id", Json::from(r.id))
                    .set("tier", Json::from(r.tier.tag()))
                    .set("arrived", Json::from(r.arrived_at))
                    .set("resolved", Json::from(r.resolved_at))
                    .set("outcome", Json::from(r.outcome.tag()));
                match &r.outcome {
                    Outcome::Completed {
                        class,
                        confidence,
                        flagged,
                        level,
                        model,
                        cached,
                    } => {
                        obj.set("class", Json::from(*class))
                            .set("confidence", Json::from(f64::from(*confidence)))
                            .set("flagged", Json::from(*flagged))
                            .set("level", Json::from(level.tag()))
                            .set("model", Json::from(model.to_string()))
                            .set("cached", Json::from(*cached));
                    }
                    Outcome::Shed(reason) => {
                        obj.set("reason", Json::from(reason.tag()));
                        match reason {
                            ShedReason::Displaced { by } => {
                                obj.set("displaced_by", Json::from(*by));
                            }
                            ShedReason::DegradedTier { model } => {
                                obj.set("model", Json::from(model.to_string()));
                            }
                            ShedReason::QueueFull => {}
                        }
                    }
                    Outcome::SafeStop { model } => {
                        if let Some(model) = model {
                            obj.set("model", Json::from(model.to_string()));
                        }
                    }
                    Outcome::Timeout => {}
                }
                obj
            })
            .collect();
        let transitions: Vec<Json> = self
            .transitions
            .iter()
            .map(|t| {
                let mut obj = Json::object();
                obj.set("model", Json::from(t.model.to_string()))
                    .set("from", Json::from(t.from.tag()))
                    .set("to", Json::from(t.to.tag()))
                    .set("at_tick", Json::from(t.at_tick))
                    .set("after_request", Json::from(t.after_request));
                obj
            })
            .collect();
        let mut models = Json::object();
        for m in &self.models {
            let mut obj = Json::object();
            obj.set("name", Json::from(m.name.as_str()))
                .set("final_state", Json::from(m.final_state.tag()))
                .set("time_nominal", Json::from(m.time_nominal))
                .set("time_degraded", Json::from(m.time_degraded))
                .set("time_stopped", Json::from(m.time_stopped))
                .set("transitions", Json::from(m.transitions));
            models.set(m.model.to_string(), obj);
        }
        let mut root = Json::object();
        root.set("responses", Json::Arr(responses))
            .set("transitions", Json::Arr(transitions))
            .set("models", models)
            .set("routing", Json::from(self.routing.as_str()))
            .set("metrics", self.snapshot.to_json())
            .set("chain_head", Json::Str(format!("{:016x}", self.chain_head)));
        root
    }
}

/// A batch that has been executed but whose effects have not yet landed:
/// verdicts are computed at dispatch, applied at `done_at`.
struct InFlight {
    model: ModelId,
    done_at: u64,
    items: Vec<(Pending, BatchVerdict)>,
}

/// The deterministic fleet serving runtime.
pub struct Server<B: Backend> {
    fleet: Fleet<B>,
    policy: BatchPolicy,
    service: ServiceModel,
    fairness: FairnessPolicy,
    degraded_floor: Tier,
    router: Box<dyn RoutingPolicy>,
    monitors: Vec<HealthMonitor>,
    cache: ResultCache,
    chain: EvidenceChain,
}

impl<B: Backend> Server<B> {
    /// Assembles a fleet server with the config's built-in routing
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid batch policy,
    /// health, or cache configuration.
    pub fn new(config: ServerConfig, fleet: Fleet<B>) -> Result<Self, ServeError> {
        let router = config.routing.policy();
        Server::with_router(config, fleet, router)
    }

    /// Assembles a one-member fleet named `"primary"` — the drop-in
    /// shape for single-model deployments (the pre-fleet `Server::new`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] as [`Server::new`] does.
    pub fn single(config: ServerConfig, backend: B) -> Result<Self, ServeError> {
        Server::new(config, Fleet::single(backend))
    }

    /// Assembles a fleet server with a custom routing policy (which must
    /// be pure in the decision index — see [`crate::route`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] as [`Server::new`] does.
    pub fn with_router(
        config: ServerConfig,
        fleet: Fleet<B>,
        router: Box<dyn RoutingPolicy>,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let monitors = fleet
            .ids()
            .map(|_| HealthMonitor::new(config.health))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ServeError::BadConfig(e.to_string()))?;
        Ok(Server {
            fleet,
            policy: config.policy,
            service: config.service,
            fairness: config.fairness,
            degraded_floor: config.degraded_floor,
            router,
            monitors,
            cache: ResultCache::new(config.cache),
            chain: EvidenceChain::new(config.campaign),
        })
    }

    /// The fleet-wide service level: the *worst* member state, so a
    /// single-member fleet reports exactly what its one ladder says.
    pub fn service_level(&self) -> HealthState {
        self.monitors
            .iter()
            .map(|m| m.state())
            .max_by_key(|s| severity(*s))
            .unwrap_or(HealthState::Nominal)
    }

    /// One member's current service level.
    pub fn model_state(&self, model: ModelId) -> Option<HealthState> {
        self.monitors.get(model.index()).map(|m| m.state())
    }

    /// The evidence chain accumulated across runs.
    pub fn evidence(&self) -> &EvidenceChain {
        &self.chain
    }

    /// The fleet registry.
    pub fn fleet(&self) -> &Fleet<B> {
        &self.fleet
    }

    /// Member 0's backend — the convenience accessor for single-model
    /// deployments built with [`Server::single`].
    pub fn backend(&self) -> &B {
        self.fleet.members()[0].backend()
    }

    /// Replays a trace to completion.
    ///
    /// # Errors
    ///
    /// Propagates backend infrastructure failures; outcome-level
    /// failures (sheds, timeouts, stops) are data, not errors.
    pub fn run_trace(&mut self, trace: &ArrivalTrace) -> Result<ServeReport, ServeError> {
        self.run_trace_with(trace, |_, _| {})
    }

    /// Replays a trace, invoking `on_arrival` for every arrival *before*
    /// admission — the deterministic hook fault-injection harnesses use
    /// to strike fleet members mid-traffic (keyed by request id, not
    /// wall time, so strikes replay exactly).
    ///
    /// # Errors
    ///
    /// Propagates backend infrastructure failures.
    pub fn run_trace_with<F>(
        &mut self,
        trace: &ArrivalTrace,
        mut on_arrival: F,
    ) -> Result<ServeReport, ServeError>
    where
        F: FnMut(&Request, &mut Fleet<B>),
    {
        let arrivals = trace.arrivals();
        let models = self.fleet.len();
        let mut responses: Vec<Response> = Vec::with_capacity(arrivals.len());
        let mut transitions: Vec<ServiceTransition> = Vec::new();
        let mut metrics = Metrics::new(models);
        let mut queue = AdmissionQueue::new(self.policy.queue_cap);
        let mut inflight: Vec<InFlight> = Vec::new();
        let mut free_at = vec![0u64; models];
        let mut decisions = 0u64;
        let mut next = 0usize;
        let mut now = 0u64;
        // Set when a flush round at the current state cannot place
        // anything (every target busy); cleared by the next retirement
        // or arrival, which are the only events that change that state.
        let mut stalled = false;

        while next < arrivals.len() || !queue.is_empty() || !inflight.is_empty() {
            let next_arrival = arrivals.get(next).map(|a| a.at);
            let next_retire = inflight.iter().map(|b| b.done_at).min();
            let next_flush = if queue.is_empty() || stalled {
                None
            } else if self.all_stopped() {
                // Nothing can ever serve the queued work: drain it now.
                Some(now)
            } else {
                let fleet_free = self
                    .monitors
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.state() != HealthState::SafeStop)
                    .map(|(i, _)| free_at[i])
                    .min()
                    .expect("non-stopped member exists");
                self.policy
                    .flush_at(queue.items(), fleet_free)
                    .map(|f| f.max(now))
            };
            let Some(tick) = [next_arrival, next_retire, next_flush]
                .into_iter()
                .flatten()
                .min()
            else {
                unreachable!("loop invariant: pending work implies a pending event");
            };
            now = tick;

            // 1. Retire every batch completing at this tick, in dispatch
            //    order, before anything at this tick observes health.
            if next_retire == Some(now) {
                let mut retiring = Vec::new();
                let mut rest = Vec::new();
                for batch in inflight.drain(..) {
                    if batch.done_at <= now {
                        retiring.push(batch);
                    } else {
                        rest.push(batch);
                    }
                }
                inflight = rest;
                for batch in retiring {
                    self.retire(
                        batch,
                        &mut queue,
                        &mut responses,
                        &mut transitions,
                        &mut metrics,
                    );
                }
                stalled = false;
            }

            // 2. Admit every arrival at this tick.
            while next < arrivals.len() && arrivals[next].at == now {
                let arrival = arrivals[next].clone();
                next += 1;
                self.admit(
                    arrival.request,
                    now,
                    &mut queue,
                    &mut responses,
                    &mut metrics,
                    &mut on_arrival,
                );
                stalled = false;
            }

            // 3. Dispatch when the (recomputed) flush tick has come.
            if !queue.is_empty() && !stalled {
                let due = if self.all_stopped() {
                    true
                } else {
                    let fleet_free = self
                        .monitors
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.state() != HealthState::SafeStop)
                        .map(|(i, _)| free_at[i])
                        .min()
                        .expect("non-stopped member exists");
                    self.policy
                        .flush_at(queue.items(), fleet_free)
                        .is_some_and(|f| f <= now)
                };
                if due {
                    let progressed = self.dispatch_round(
                        now,
                        &mut queue,
                        &mut free_at,
                        &mut decisions,
                        &mut inflight,
                        &mut responses,
                        &mut metrics,
                    )?;
                    if !progressed {
                        stalled = true;
                    }
                }
            }
        }

        debug_assert_eq!(responses.len(), arrivals.len(), "one response per request");
        metrics.record_peak_queue(queue.peak());
        responses.sort_by_key(|r| r.id);
        let summaries = self
            .fleet
            .members()
            .iter()
            .zip(&self.monitors)
            .enumerate()
            .map(|(i, (member, monitor))| ModelSummary {
                model: ModelId::new(i as u16),
                name: member.name().to_string(),
                final_state: monitor.state(),
                time_nominal: monitor.time_in(HealthState::Nominal),
                time_degraded: monitor.time_in(HealthState::Degraded),
                time_stopped: monitor.time_in(HealthState::SafeStop),
                transitions: monitor.transitions().len(),
            })
            .collect();
        Ok(ServeReport {
            responses,
            transitions,
            models: summaries,
            routing: self.router.name().to_string(),
            snapshot: metrics.snapshot(),
            chain_head: self.chain.head_hash(),
        })
    }

    fn all_stopped(&self) -> bool {
        self.monitors
            .iter()
            .all(|m| m.state() == HealthState::SafeStop)
    }

    /// The representative member for an anonymous refusal: the
    /// least-loaded non-stopped member (ties by id) — the one the router
    /// would most plausibly have chosen had health allowed.
    fn refusing_member(&self, free_at: &[u64]) -> ModelId {
        self.monitors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.state() != HealthState::SafeStop)
            .min_by_key(|(i, _)| (free_at[*i], *i))
            .map(|(i, _)| ModelId::new(i as u16))
            .unwrap_or(ModelId::new(0))
    }

    /// Admits one arrival (hook → fleet health gate → cache → queue).
    #[allow(clippy::too_many_arguments)]
    fn admit<F>(
        &mut self,
        request: Request,
        now: u64,
        queue: &mut AdmissionQueue,
        responses: &mut Vec<Response>,
        metrics: &mut Metrics,
        on_arrival: &mut F,
    ) where
        F: FnMut(&Request, &mut Fleet<B>),
    {
        on_arrival(&request, &mut self.fleet);
        let respond = |outcome: Outcome, responses: &mut Vec<Response>, metrics: &mut Metrics| {
            let response = Response {
                id: request.id,
                tier: request.tier,
                arrived_at: now,
                resolved_at: now,
                outcome,
            };
            metrics.record_response(&response);
            responses.push(response);
        };
        // Fleet health gate. A pinned request lives and dies with its
        // pin; a routable one is refused only when *no* member admits
        // its tier.
        if let Some(pin) = request.model {
            match self.monitors.get(pin.index()).map(|m| m.state()) {
                None => {
                    respond(Outcome::SafeStop { model: Some(pin) }, responses, metrics);
                    return;
                }
                Some(HealthState::SafeStop) => {
                    respond(Outcome::SafeStop { model: Some(pin) }, responses, metrics);
                    return;
                }
                Some(state) => {
                    if !admits(state, request.tier, self.degraded_floor) {
                        respond(
                            Outcome::Shed(ShedReason::DegradedTier { model: pin }),
                            responses,
                            metrics,
                        );
                        return;
                    }
                }
            }
        } else if self.all_stopped() {
            respond(Outcome::SafeStop { model: None }, responses, metrics);
            return;
        } else if !self
            .monitors
            .iter()
            .any(|m| admits(m.state(), request.tier, self.degraded_floor))
        {
            // Some member is still running, but every running member is
            // degraded below this tier's floor.
            let model = self
                .monitors
                .iter()
                .enumerate()
                .filter(|(_, m)| m.state() != HealthState::SafeStop)
                .map(|(i, _)| ModelId::new(i as u16))
                .next()
                .unwrap_or(ModelId::new(0));
            respond(
                Outcome::Shed(ShedReason::DegradedTier { model }),
                responses,
                metrics,
            );
            return;
        }
        // Verified-result cache: a hit answers immediately, on evidence.
        if self.cache.is_enabled() {
            metrics.record_cache_lookup();
            if let Some(hit) = self.cache.lookup(&request.input) {
                let (class, confidence, model, digest) =
                    (hit.class, hit.confidence, hit.model, hit.digest);
                metrics.record_cache_hit();
                self.chain.append(
                    RecordKind::CacheHit,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("at_tick".into(), Value::U64(now)),
                        ("request".into(), Value::U64(request.id)),
                        ("digest".into(), Value::Str(format!("{digest:016x}"))),
                        ("model".into(), Value::Str(model.to_string())),
                    ],
                );
                respond(
                    Outcome::Completed {
                        class,
                        confidence,
                        flagged: false,
                        level: HealthState::Nominal,
                        model,
                        cached: true,
                    },
                    responses,
                    metrics,
                );
                return;
            }
        }
        let (id, tier) = (request.id, request.tier);
        match queue.offer(request, now) {
            Admission::Accepted => {}
            Admission::Displaced(victim) => {
                let response = Response {
                    id: victim.request.id,
                    tier: victim.request.tier,
                    arrived_at: victim.queued_at,
                    resolved_at: now,
                    outcome: Outcome::Shed(ShedReason::Displaced { by: id }),
                };
                metrics.record_response(&response);
                responses.push(response);
            }
            Admission::Rejected => {
                let response = Response {
                    id,
                    tier,
                    arrived_at: now,
                    resolved_at: now,
                    outcome: Outcome::Shed(ShedReason::QueueFull),
                };
                metrics.record_response(&response);
                responses.push(response);
            }
        }
        metrics.record_peak_queue(queue.len());
    }

    /// Runs one dispatch round at `now`: fairness selects, gates refuse,
    /// the routing policy places, one batch per idle member executes.
    /// Returns `false` when the round made no progress (everything
    /// selected was put back).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_round(
        &mut self,
        now: u64,
        queue: &mut AdmissionQueue,
        free_at: &mut [u64],
        decisions: &mut u64,
        inflight: &mut Vec<InFlight>,
        responses: &mut Vec<Response>,
        metrics: &mut Metrics,
    ) -> Result<bool, ServeError> {
        let models = self.fleet.len();
        // Members that can *start* a batch this round: running and idle.
        let idle: Vec<bool> = (0..models)
            .map(|i| self.monitors[i].state() != HealthState::SafeStop && free_at[i] <= now)
            .collect();
        let capacity: usize = idle.iter().filter(|&&b| b).count() * self.policy.max_batch;
        let selected = if self.all_stopped() {
            // Drain: every queued entry resolves to a typed refusal.
            queue.take(queue.len())
        } else {
            queue.select(capacity.max(1), now, &self.fairness)
        };
        if selected.is_empty() {
            return Ok(false);
        }
        let mut assigned: Vec<Vec<Pending>> = vec![Vec::new(); models];
        let mut put_back: Vec<Pending> = Vec::new();
        let mut progressed = false;
        for pending in selected {
            let request = &pending.request;
            let mut respond = |outcome: Outcome, pending: &Pending| {
                let response = Response {
                    id: pending.request.id,
                    tier: pending.request.tier,
                    arrived_at: pending.queued_at,
                    resolved_at: now,
                    outcome,
                };
                metrics.record_response(&response);
                responses.push(response);
            };
            if self.all_stopped() {
                respond(Outcome::SafeStop { model: None }, &pending);
                progressed = true;
                continue;
            }
            if request.deadline <= now {
                // Expired at batch formation: the result could only be
                // stale, so it is never computed.
                respond(Outcome::Timeout, &pending);
                progressed = true;
                continue;
            }
            if let Some(pin) = request.model {
                // Pinned: the pin's fate is the request's fate.
                match self.monitors.get(pin.index()).map(|m| m.state()) {
                    None | Some(HealthState::SafeStop) => {
                        respond(Outcome::SafeStop { model: Some(pin) }, &pending);
                        progressed = true;
                    }
                    Some(state) if !admits(state, request.tier, self.degraded_floor) => {
                        respond(
                            Outcome::Shed(ShedReason::DegradedTier { model: pin }),
                            &pending,
                        );
                        progressed = true;
                    }
                    Some(_) => {
                        if idle[pin.index()] && assigned[pin.index()].len() < self.policy.max_batch
                        {
                            assigned[pin.index()].push(pending);
                        } else {
                            put_back.push(pending);
                        }
                    }
                }
                continue;
            }
            // Routable: build the candidate view (health-admitting, idle,
            // with batch capacity) and let the policy pick.
            let candidates: Vec<CandidateView> = (0..models)
                .filter(|&i| {
                    idle[i]
                        && assigned[i].len() < self.policy.max_batch
                        && admits(self.monitors[i].state(), request.tier, self.degraded_floor)
                })
                .map(|i| CandidateView {
                    id: ModelId::new(i as u16),
                    state: self.monitors[i].state(),
                    free_at: now + self.service.duration(assigned[i].len() + 1),
                    assigned: assigned[i].len(),
                })
                .collect();
            if candidates.is_empty() {
                // No member can take it *now*. If some running member
                // admits the tier (just busy or full), the request waits;
                // otherwise every running member refuses it by health.
                let eventually = (0..models).any(|i| {
                    self.monitors[i].state() != HealthState::SafeStop
                        && admits(self.monitors[i].state(), request.tier, self.degraded_floor)
                });
                if eventually {
                    put_back.push(pending);
                } else {
                    respond(
                        Outcome::Shed(ShedReason::DegradedTier {
                            model: self.refusing_member(free_at),
                        }),
                        &pending,
                    );
                    progressed = true;
                }
                continue;
            }
            let view = RouteView {
                request,
                decision: *decisions,
                now,
                candidates: &candidates,
            };
            *decisions += 1;
            let choice = self.router.route(&view);
            // A policy returning a non-candidate is a bug; fall back to
            // the first candidate rather than violate the health gate.
            let target = if candidates.iter().any(|c| c.id == choice) {
                choice
            } else {
                candidates[0].id
            };
            assigned[target.index()].push(pending);
        }
        // Execute one batch per member, in member order. Verdicts are
        // computed now (the batch runs now); effects land at retirement.
        for (i, batch) in assigned.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            progressed = true;
            let model = ModelId::new(i as u16);
            let done_at = now + self.service.duration(batch.len());
            free_at[i] = done_at;
            metrics.record_batch(model, batch.len());
            let inputs: Vec<&[f32]> = batch.iter().map(|p| p.request.input.as_slice()).collect();
            let backend = self
                .fleet
                .backend_mut(model)
                .expect("assigned member exists");
            let verdicts = backend.serve(&inputs)?;
            debug_assert_eq!(verdicts.len(), batch.len(), "backend verdict count");
            inflight.push(InFlight {
                model,
                done_at,
                items: batch.into_iter().zip(verdicts).collect(),
            });
        }
        queue.put_back(put_back);
        Ok(progressed)
    }

    /// Applies one completed batch's effects at its completion tick:
    /// monitor stepping, evidence, response release (or fail-over),
    /// cache insertion.
    fn retire(
        &mut self,
        batch: InFlight,
        queue: &mut AdmissionQueue,
        responses: &mut Vec<Response>,
        transitions: &mut Vec<ServiceTransition>,
        metrics: &mut Metrics,
    ) {
        let InFlight {
            model,
            done_at,
            items,
        } = batch;
        let mut failover: Vec<Pending> = Vec::new();
        for (pending, verdict) in items {
            let (stop, flagged, corrected, class, confidence) = match verdict {
                BatchVerdict::Stop => (true, true, false, 0, 0.0),
                BatchVerdict::Ok {
                    class,
                    confidence,
                    flagged,
                    corrected,
                } => (false, flagged, corrected, class, confidence),
            };
            // Corrected faults are warnings: the ladder only walks when
            // the bounded warning budget is exhausted.
            let health = if stop || flagged {
                HealthVerdict::Unhealthy
            } else if corrected {
                HealthVerdict::Warning
            } else {
                HealthVerdict::Clean
            };
            if corrected && !flagged && !stop {
                self.chain.append(
                    RecordKind::FaultCorrected,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("model".into(), Value::Str(model.to_string())),
                        ("at_tick".into(), Value::U64(done_at)),
                        ("request".into(), Value::U64(pending.request.id)),
                    ],
                );
            }
            let monitor = &mut self.monitors[model.index()];
            if let Some(t) = monitor.step_verdict(health) {
                let transition = ServiceTransition {
                    model,
                    from: t.from,
                    to: t.to,
                    at_tick: done_at,
                    after_request: pending.request.id,
                };
                transitions.push(transition);
                self.chain.append(
                    RecordKind::HealthTransition,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("model".into(), Value::Str(model.to_string())),
                        ("from".into(), Value::Str(t.from.tag().into())),
                        ("to".into(), Value::Str(t.to.tag().into())),
                        ("at_tick".into(), Value::U64(done_at)),
                        ("after_request".into(), Value::U64(pending.request.id)),
                    ],
                );
            }
            // Release gate: a result is returned only when (a) the
            // backend did not demand a stop, (b) the member's ladder has
            // not reached safe stop, and (c) the deadline still holds.
            // Anything else is a typed non-answer — a stale or suspect
            // result is never released.
            let state = self.monitors[model.index()].state();
            let outcome = if stop || state == HealthState::SafeStop {
                // Fail-over: when the *ladder* (not the backend verdict
                // for this very item) withheld the result, an unpinned
                // request whose deadline still holds is recomputed on a
                // healthy peer rather than failed — one stopping member
                // costs the fleet latency, not answers. A pinned request
                // dies with its pin, and a backend-demanded stop is
                // honoured as a per-item safety verdict.
                let ladder_only = !stop && state == HealthState::SafeStop;
                let peer_alive = self
                    .monitors
                    .iter()
                    .enumerate()
                    .any(|(i, m)| i != model.index() && m.state() != HealthState::SafeStop);
                if ladder_only
                    && pending.request.model.is_none()
                    && pending.request.deadline > done_at
                    && peer_alive
                {
                    failover.push(pending);
                    continue;
                }
                Outcome::SafeStop { model: Some(model) }
            } else if pending.request.deadline < done_at {
                Outcome::Timeout
            } else {
                // A fully verified decision — unflagged, uncorrected,
                // released at Nominal — is the only thing the result
                // cache may learn.
                if !flagged && !corrected && state == HealthState::Nominal {
                    self.cache
                        .insert(&pending.request.input, class, confidence, model);
                }
                Outcome::Completed {
                    class,
                    confidence,
                    flagged,
                    level: state,
                    model,
                    cached: false,
                }
            };
            let response = Response {
                id: pending.request.id,
                tier: pending.request.tier,
                arrived_at: pending.queued_at,
                resolved_at: done_at,
                outcome,
            };
            metrics.record_response(&response);
            responses.push(response);
        }
        if !failover.is_empty() {
            queue.put_back(failover);
        }
    }
}
