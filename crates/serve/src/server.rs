//! The fleet serving loop: admission → fairness → routing → dispatch →
//! retirement — plus the soak runtime wrapped around it.
//!
//! [`Server::run_trace`] replays an [`ArrivalTrace`] through a
//! discrete-event simulation of a multi-model serving runtime. The clock
//! is a `u64` tick counter advanced only by trace timestamps and the
//! [`ServiceModel`]'s execution cost — never a wall clock — so the entire
//! run, including batch boundaries, routing decisions, shedding, and
//! every member's degradation-ladder walk, is a pure function of its
//! inputs and replays byte-for-byte. [`Server::run_soak`] is the same
//! loop paced by a pluggable [`ClockSource`] (a real soak run uses
//! [`crate::clock::WallClock`]; tests use the free-running sim clock) and
//! driven by an [`OpsPlan`] of scripted operational events.
//!
//! ## The event loop
//!
//! Four event kinds drive the clock, processed in strict time order
//! (and in a fixed order within a tick):
//!
//! 1. **Retirement** — a dispatched batch reaches its completion tick:
//!    its member's monitor absorbs the verdicts, responses are emitted,
//!    verified results enter the cache. Verdicts were *computed* at
//!    dispatch (the batch physically ran then), but their effects land
//!    at the completion tick, so a fault strike that arrives mid-flight
//!    cannot retroactively poison a batch that started before it.
//!    Items withheld because their member's ladder reached `SafeStop`
//!    **fail over**: an unpinned, in-deadline request whose result was
//!    withheld is re-queued and recomputed on a healthy peer — one
//!    member failing costs the fleet latency, not answers.
//! 2. **Arrival** — a request is admitted: fault-injection hook, fleet
//!    health gate, result-cache lookup, bounded queue with tier-ordered
//!    displacement. Scripted soak events (snapshot capture, hot-swap
//!    requests) trigger on request ids, immediately before admission.
//! 3. **Flush** — the batch policy says the queue should dispatch:
//!    fairness selects the round's requests, the routing policy places
//!    each on an eligible member, one batch per idle member starts.
//! 4. **Watchdog** — when enabled, a per-stage liveness deadline or
//!    proof cadence comes due (see [`crate::soak`]). With the watchdog
//!    disabled this source contributes no events and the loop is
//!    tick-for-tick the plain replay loop.
//!
//! ## Soak runtime: snapshot, restore, hot swap
//!
//! A soak run can capture a [`ServerSnapshot`] immediately before a
//! scripted request id: ladder states, queue residue, in-flight batches,
//! metrics counters, the evidence chain, the result cache, and backend
//! work clocks. [`Server::restore`] rebuilds a server from those bytes
//! (failing closed on any corruption) and resumes the same trace
//! mid-stream; the resumed run's [`ServeReport::replay_json`] is
//! byte-identical to the uninterrupted run's. The chains differ by
//! exactly one `runtime_restored` record — restores are themselves
//! evidence — which is why fidelity is defined over `replay_json` (the
//! report minus `chain_head`) rather than the full JSON.
//!
//! A hot swap ([`SwapOp`]) quiesces one member: the member stops taking
//! new batches, its in-flight batches retire, then the incoming backend
//! re-goldens and verifies its weights ([`Backend::prepare_swap`]), the
//! digest gate checks any pinned expectation, and the swap commits —
//! fresh Nominal ladder, member's cache entries purged, `model_swapped`
//! on the chain. Any verification failure aborts the swap with the old
//! model still serving, untouched.

use safex_core::health::{HealthMonitor, HealthState, HealthVerdict};
use safex_trace::json::Json;
use safex_trace::{EvidenceChain, Fnv64, RecordKind, Value};

use crate::backend::{Backend, BatchVerdict};
use crate::batcher::ServiceModel;
use crate::cache::ResultCache;
use crate::clock::{ClockSource, SimClock};
use crate::config::ServerConfig;
use crate::error::ServeError;
use crate::fleet::Fleet;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{Admission, AdmissionQueue, Pending};
use crate::request::{ModelId, Outcome, Request, Response, ShedReason};
use crate::route::{admits, severity, CandidateView, RouteView, RoutingPolicy};
use crate::snapshot::{trace_digest, CacheEntrySnapshot, ChainEntry, RunSnapshot, ServerSnapshot};
use crate::soak::{
    OpsPlan, SoakOutcome, SoakStats, StallOp, SwapEvent, SwapOp, WatchStage, WatchdogState,
};
use crate::traffic::ArrivalTrace;

/// One recorded service-level change on one fleet member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceTransition {
    /// The member whose ladder moved.
    pub model: ModelId,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Tick at which the triggering batch completed.
    pub at_tick: u64,
    /// The request whose decision fired the transition.
    pub after_request: u64,
}

/// One fleet member's health story over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// The member's id.
    pub model: ModelId,
    /// The member's registered name.
    pub name: String,
    /// Ladder state at the end of the run.
    pub final_state: HealthState,
    /// Decisions absorbed while `Nominal`.
    pub time_nominal: u64,
    /// Decisions absorbed while `Degraded`.
    pub time_degraded: u64,
    /// Decisions absorbed while `SafeStop`.
    pub time_stopped: u64,
    /// Ladder transitions over the member's lifetime.
    pub transitions: usize,
}

/// The complete, reproducible result of one trace replay.
///
/// `#[non_exhaustive]`: reports are produced by the server and read by
/// callers; new fields (the fleet redesign added `models` and `routing`,
/// the soak runtime added `soak`) append without breaking downstream
/// matches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeReport {
    /// One response per request, ordered by request id.
    pub responses: Vec<Response>,
    /// Service-level transitions across the fleet, in occurrence order.
    pub transitions: Vec<ServiceTransition>,
    /// Per-member health summaries, indexed by [`ModelId`].
    pub models: Vec<ModelSummary>,
    /// The routing policy that placed the batches.
    pub routing: String,
    /// Frozen metrics.
    pub snapshot: MetricsSnapshot,
    /// Head hash of the evidence chain after the run (binds the report
    /// to the recorded transition and cache-hit evidence).
    pub chain_head: u64,
    /// Soak-runtime counters (swaps, watchdog activity); stays at
    /// `Default` — and out of the JSON — for plain replay runs.
    pub soak: SoakStats,
}

impl ServeReport {
    /// Serialises the full report (responses, transitions, per-member
    /// summaries, metrics) to deterministic JSON — the byte-for-byte
    /// replay artefact.
    pub fn to_json(&self) -> Json {
        let mut root = self.replay_json();
        root.set("chain_head", Json::Str(format!("{:016x}", self.chain_head)));
        root
    }

    /// The report JSON *minus* `chain_head` — the restore-fidelity
    /// artefact. A restored run's chain carries one extra
    /// `runtime_restored` record (the restore itself is evidence), so its
    /// head hash legitimately differs from the uninterrupted run's; every
    /// observable serving outcome must still match byte-for-byte, and
    /// this projection is what that claim is checked against.
    pub fn replay_json(&self) -> Json {
        let responses: Vec<Json> = self
            .responses
            .iter()
            .map(|r| {
                let mut obj = Json::object();
                obj.set("id", Json::from(r.id))
                    .set("tier", Json::from(r.tier.tag()))
                    .set("arrived", Json::from(r.arrived_at))
                    .set("resolved", Json::from(r.resolved_at))
                    .set("outcome", Json::from(r.outcome.tag()));
                match &r.outcome {
                    Outcome::Completed {
                        class,
                        confidence,
                        flagged,
                        level,
                        model,
                        cached,
                    } => {
                        obj.set("class", Json::from(*class))
                            .set("confidence", Json::from(f64::from(*confidence)))
                            .set("flagged", Json::from(*flagged))
                            .set("level", Json::from(level.tag()))
                            .set("model", Json::from(model.to_string()))
                            .set("cached", Json::from(*cached));
                    }
                    Outcome::Shed(reason) => {
                        obj.set("reason", Json::from(reason.tag()));
                        match reason {
                            ShedReason::Displaced { by } => {
                                obj.set("displaced_by", Json::from(*by));
                            }
                            ShedReason::DegradedTier { model } => {
                                obj.set("model", Json::from(model.to_string()));
                            }
                            ShedReason::QueueFull => {}
                        }
                    }
                    Outcome::SafeStop { model } => {
                        if let Some(model) = model {
                            obj.set("model", Json::from(model.to_string()));
                        }
                    }
                    Outcome::Timeout => {}
                }
                obj
            })
            .collect();
        let transitions: Vec<Json> = self
            .transitions
            .iter()
            .map(|t| {
                let mut obj = Json::object();
                obj.set("model", Json::from(t.model.to_string()))
                    .set("from", Json::from(t.from.tag()))
                    .set("to", Json::from(t.to.tag()))
                    .set("at_tick", Json::from(t.at_tick))
                    .set("after_request", Json::from(t.after_request));
                obj
            })
            .collect();
        let mut models = Json::object();
        for m in &self.models {
            let mut obj = Json::object();
            obj.set("name", Json::from(m.name.as_str()))
                .set("final_state", Json::from(m.final_state.tag()))
                .set("time_nominal", Json::from(m.time_nominal))
                .set("time_degraded", Json::from(m.time_degraded))
                .set("time_stopped", Json::from(m.time_stopped))
                .set("transitions", Json::from(m.transitions));
            models.set(m.model.to_string(), obj);
        }
        let mut root = Json::object();
        root.set("responses", Json::Arr(responses))
            .set("transitions", Json::Arr(transitions))
            .set("models", models)
            .set("routing", Json::from(self.routing.as_str()))
            .set("metrics", self.snapshot.to_json());
        if !self.soak.is_default() {
            root.set("soak", self.soak.to_json());
        }
        root
    }

    /// FNV-1a digest of [`ServeReport::replay_json`] — the compact form
    /// of the restore-fidelity comparison.
    pub fn replay_digest(&self) -> u64 {
        let mut fnv = Fnv64::new();
        fnv.write_bytes(self.replay_json().to_string_compact().as_bytes());
        fnv.finish()
    }
}

/// A batch that has been executed but whose effects have not yet landed:
/// verdicts are computed at dispatch, applied at `done_at`. Public so
/// snapshots can carry mid-flight batches across a restore.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlightBatch {
    /// The member executing the batch.
    pub model: ModelId,
    /// Tick at which the batch's effects land.
    pub done_at: u64,
    /// The batch items with their precomputed verdicts.
    pub items: Vec<(Pending, BatchVerdict)>,
}

/// Everything the event loop mutates while replaying a trace. Factored
/// out of the loop body so a snapshot can freeze it mid-run and a
/// restore can resume from it.
pub(crate) struct RunState {
    responses: Vec<Response>,
    transitions: Vec<ServiceTransition>,
    metrics: Metrics,
    queue: AdmissionQueue,
    inflight: Vec<InFlightBatch>,
    free_at: Vec<u64>,
    decisions: u64,
    next: usize,
    now: u64,
    /// Set when a flush round at the current state cannot place
    /// anything (every target busy); cleared by the next retirement
    /// or arrival, which are the only events that change that state.
    stalled: bool,
    watchdog: WatchdogState,
    stats: SoakStats,
}

impl RunState {
    fn fresh(models: usize, queue_cap: usize, arrivals: usize) -> Self {
        RunState {
            responses: Vec::with_capacity(arrivals),
            transitions: Vec::new(),
            metrics: Metrics::new(models),
            queue: AdmissionQueue::new(queue_cap),
            inflight: Vec::new(),
            free_at: vec![0u64; models],
            decisions: 0,
            next: 0,
            now: 0,
            stalled: false,
            watchdog: WatchdogState::default(),
            stats: SoakStats::default(),
        }
    }

    fn to_snapshot(&self) -> RunSnapshot {
        RunSnapshot {
            responses: self.responses.clone(),
            transitions: self.transitions.clone(),
            metrics: self.metrics.clone(),
            queue_items: self.queue.items().to_vec(),
            queue_cap: self.queue.cap() as u64,
            queue_peak: self.queue.peak() as u64,
            inflight: self.inflight.clone(),
            free_at: self.free_at.clone(),
            decisions: self.decisions,
            next_arrival: self.next as u64,
            now: self.now,
            stalled: self.stalled,
            watchdog: self.watchdog,
            stats: self.stats.clone(),
        }
    }

    fn from_snapshot(snap: RunSnapshot) -> Self {
        RunState {
            responses: snap.responses,
            transitions: snap.transitions,
            metrics: snap.metrics,
            queue: AdmissionQueue::from_parts(
                snap.queue_items,
                snap.queue_cap as usize,
                snap.queue_peak as usize,
            ),
            inflight: snap.inflight,
            free_at: snap.free_at,
            decisions: snap.decisions,
            next: snap.next_arrival as usize,
            now: snap.now,
            stalled: snap.stalled,
            watchdog: snap.watchdog,
            stats: snap.stats,
        }
    }
}

/// A hot swap whose member is draining its in-flight batches.
struct DrainingSwap<B> {
    op: SwapOp<B>,
    requested_at: u64,
}

/// Scripted-operations bookkeeping for one soak run.
struct SoakCtx<B> {
    swaps: Vec<SwapOp<B>>,
    stalls: Vec<StallOp>,
    snapshot_at: Option<u64>,
    draining: Vec<DrainingSwap<B>>,
    captured: Option<Vec<u8>>,
}

/// Repeatedly bumps `t` out of any `stage` stall window containing it.
fn stall_clamp(stalls: &[StallOp], stage: WatchStage, mut t: u64) -> u64 {
    loop {
        let mut bumped = false;
        for stall in stalls {
            if stall.stage == stage && stall.from <= t && t < stall.until {
                t = stall.until;
                bumped = true;
            }
        }
        if !bumped {
            return t;
        }
    }
}

/// The deterministic fleet serving runtime.
pub struct Server<B: Backend> {
    fleet: Fleet<B>,
    config: ServerConfig,
    router: Box<dyn RoutingPolicy>,
    monitors: Vec<HealthMonitor>,
    cache: ResultCache,
    chain: EvidenceChain,
    /// Set by [`Server::restore`]: the trace digest the restored state
    /// belongs to, plus the state itself. Consumed by the next run.
    resume: Option<(u64, RunState)>,
}

impl<B: Backend> Server<B> {
    /// Assembles a fleet server with the config's built-in routing
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid batch policy,
    /// health, cache, or watchdog configuration, and
    /// [`ServeError::DuplicateMember`] when two members share a name.
    pub fn new(config: ServerConfig, fleet: Fleet<B>) -> Result<Self, ServeError> {
        let router = config.routing.policy();
        Server::with_router(config, fleet, router)
    }

    /// Assembles a one-member fleet named `"primary"` — the drop-in
    /// shape for single-model deployments (the pre-fleet `Server::new`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] as [`Server::new`] does.
    pub fn single(config: ServerConfig, backend: B) -> Result<Self, ServeError> {
        Server::new(config, Fleet::single(backend))
    }

    /// Assembles a fleet server with a custom routing policy (which must
    /// be pure in the decision index — see [`crate::route`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] as [`Server::new`] does, and
    /// [`ServeError::DuplicateMember`] for aliased member names (the
    /// builder already rejects them; this guards fleets assembled
    /// through other paths).
    pub fn with_router(
        config: ServerConfig,
        fleet: Fleet<B>,
        router: Box<dyn RoutingPolicy>,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        for (i, member) in fleet.members().iter().enumerate() {
            if fleet.members()[..i]
                .iter()
                .any(|p| p.name() == member.name())
            {
                return Err(ServeError::DuplicateMember(member.name().to_string()));
            }
        }
        let monitors = fleet
            .ids()
            .map(|_| HealthMonitor::new(config.health))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ServeError::BadConfig(e.to_string()))?;
        Ok(Server {
            cache: ResultCache::new(config.cache),
            chain: EvidenceChain::new(config.campaign.clone()),
            fleet,
            config,
            router,
            monitors,
            resume: None,
        })
    }

    /// Rebuilds a server from snapshot bytes and arms it to resume the
    /// interrupted run: the next `run_trace`/`run_soak` against the same
    /// trace continues from the captured tick instead of starting fresh.
    ///
    /// The caller supplies `fleet` with the same weights the snapshot was
    /// captured under (weights live in the backends, not the snapshot);
    /// backend work clocks are resynced from the snapshot. The restore
    /// appends a `runtime_restored` evidence record — restores are
    /// auditable events, not silent ones.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadSnapshot`] on any corruption, version or
    /// checksum mismatch, configuration/fleet-shape mismatch, invalid
    /// ladder state, or evidence-chain head mismatch. Restores fail
    /// closed: on error the snapshot is fully rejected, no partial state
    /// is applied.
    pub fn restore(
        config: ServerConfig,
        fleet: Fleet<B>,
        bytes: &[u8],
    ) -> Result<Self, ServeError> {
        let snap = ServerSnapshot::decode(bytes)?;
        let mut server = Server::new(config, fleet)?;
        if server.config_digest() != snap.config_digest {
            return Err(ServeError::BadSnapshot(
                "server configuration does not match the snapshot's".into(),
            ));
        }
        let members = server.fleet.len();
        if snap.monitors.len() != members
            || snap.backend_clocks.len() != members
            || snap.run.free_at.len() != members
        {
            return Err(ServeError::BadSnapshot(format!(
                "snapshot shape ({} monitors, {} clocks) does not fit a fleet of {members}",
                snap.monitors.len(),
                snap.backend_clocks.len()
            )));
        }
        // Stage everything fallible before committing any of it.
        let monitors = snap
            .monitors
            .iter()
            .map(|ladder| HealthMonitor::restore(server.config.health, ladder.clone()))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ServeError::BadSnapshot(e.to_string()))?;
        let mut chain = EvidenceChain::new(server.config.campaign.clone());
        for entry in &snap.chain {
            chain.append(entry.kind, entry.fields.clone());
        }
        if chain.head_hash() != snap.chain_head {
            return Err(ServeError::BadSnapshot(
                "re-appended evidence chain does not reproduce the snapshot head".into(),
            ));
        }
        let mut cache = ResultCache::new(server.config.cache);
        for entry in &snap.cache_entries {
            cache.insert(&entry.input, entry.class, entry.confidence, entry.model);
        }
        // Commit.
        server.monitors = monitors;
        server.chain = chain;
        server.cache = cache;
        for (i, &work) in snap.backend_clocks.iter().enumerate() {
            server
                .fleet
                .backend_mut(ModelId::new(i as u16))
                .expect("shape checked above")
                .resync(work);
        }
        let checksum = ServerSnapshot::stored_checksum(bytes).unwrap_or(0);
        server.chain.append(
            RecordKind::RuntimeRestored,
            vec![
                ("server".into(), Value::Str("safex-serve".into())),
                ("at_tick".into(), Value::U64(snap.run.now)),
                ("checksum".into(), Value::Str(format!("{checksum:08x}"))),
                ("records".into(), Value::U64(snap.chain.len() as u64)),
                ("members".into(), Value::U64(members as u64)),
            ],
        );
        server.resume = Some((snap.trace_digest, RunState::from_snapshot(snap.run)));
        Ok(server)
    }

    /// `true` when this server holds restored mid-run state waiting for
    /// its trace to be re-run.
    pub fn pending_restore(&self) -> bool {
        self.resume.is_some()
    }

    /// The fleet-wide service level: the *worst* member state, so a
    /// single-member fleet reports exactly what its one ladder says.
    pub fn service_level(&self) -> HealthState {
        self.monitors
            .iter()
            .map(|m| m.state())
            .max_by_key(|s| severity(*s))
            .unwrap_or(HealthState::Nominal)
    }

    /// One member's current service level.
    pub fn model_state(&self, model: ModelId) -> Option<HealthState> {
        self.monitors.get(model.index()).map(|m| m.state())
    }

    /// The evidence chain accumulated across runs.
    pub fn evidence(&self) -> &EvidenceChain {
        &self.chain
    }

    /// The fleet registry.
    pub fn fleet(&self) -> &Fleet<B> {
        &self.fleet
    }

    /// Member 0's backend — the convenience accessor for single-model
    /// deployments built with [`Server::single`].
    pub fn backend(&self) -> &B {
        self.fleet.members()[0].backend()
    }

    /// FNV-1a digest of every behaviour-relevant configuration knob plus
    /// the router name. Snapshots carry it so a restore against a
    /// different configuration fails closed instead of resuming a run
    /// the new configuration would never have produced.
    pub fn config_digest(&self) -> u64 {
        let c = &self.config;
        let mut fnv = Fnv64::new();
        fnv.write_u64(c.policy.max_batch as u64);
        fnv.write_u64(c.policy.flush_slack);
        fnv.write_u64(c.policy.max_linger);
        fnv.write_u64(c.policy.queue_cap as u64);
        fnv.write_u64(c.service.batch_overhead);
        fnv.write_u64(c.service.per_item);
        for v in [
            c.health.window,
            c.health.degrade_events,
            c.health.stop_events,
            c.health.recover_after,
            c.health.resume_after,
            c.health.warn_budget,
        ] {
            fnv.write_u64(u64::from(v));
        }
        fnv.write_u64(c.degraded_floor.index() as u64);
        fnv.write_u64(c.fairness.age_step);
        for r in c.fairness.reserved {
            fnv.write_u64(r as u64);
        }
        fnv.write_u64(u64::from(c.cache.enabled));
        fnv.write_u64(c.cache.capacity as u64);
        fnv.write_u64(u64::from(c.watchdog.enabled));
        for d in c.watchdog.stage_deadline {
            fnv.write_u64(d);
        }
        fnv.write_u64(c.watchdog.proof_cadence);
        fnv.write_bytes(c.campaign.as_bytes());
        fnv.write_bytes(self.router.name().as_bytes());
        fnv.finish()
    }

    /// Replays a trace to completion.
    ///
    /// # Errors
    ///
    /// Propagates backend infrastructure failures; outcome-level
    /// failures (sheds, timeouts, stops) are data, not errors.
    pub fn run_trace(&mut self, trace: &ArrivalTrace) -> Result<ServeReport, ServeError> {
        self.run_trace_with(trace, |_, _| {})
    }

    /// Replays a trace, invoking `on_arrival` for every arrival *before*
    /// admission — the deterministic hook fault-injection harnesses use
    /// to strike fleet members mid-traffic (keyed by request id, not
    /// wall time, so strikes replay exactly).
    ///
    /// # Errors
    ///
    /// Propagates backend infrastructure failures.
    pub fn run_trace_with<F>(
        &mut self,
        trace: &ArrivalTrace,
        on_arrival: F,
    ) -> Result<ServeReport, ServeError>
    where
        F: FnMut(&Request, &mut Fleet<B>),
    {
        let mut clock = SimClock;
        self.run_inner(trace, OpsPlan::none(), &mut clock, on_arrival)
            .map(|outcome| outcome.report)
    }

    /// Runs the trace as a soak: the replay loop paced by `clock` and
    /// driven by the scripted [`OpsPlan`] (hot swaps, stage stalls, a
    /// snapshot capture point). With an empty plan, a disabled watchdog,
    /// and the sim clock, this is byte-identical to [`Server::run_trace`].
    ///
    /// # Errors
    ///
    /// Propagates backend infrastructure failures, an invalid plan, and
    /// [`ServeError::BadSnapshot`] when a capture point lands while a
    /// hot swap is still draining (snapshots of half-performed swaps are
    /// not representable, by design).
    pub fn run_soak(
        &mut self,
        trace: &ArrivalTrace,
        ops: OpsPlan<B>,
        clock: &mut dyn ClockSource,
    ) -> Result<SoakOutcome, ServeError> {
        self.run_inner(trace, ops, clock, |_, _| {})
    }

    /// [`Server::run_soak`] with a fault-injection hook, so soak
    /// campaigns can combine scripted operations with weight strikes.
    ///
    /// # Errors
    ///
    /// As [`Server::run_soak`].
    pub fn run_soak_with<F>(
        &mut self,
        trace: &ArrivalTrace,
        ops: OpsPlan<B>,
        clock: &mut dyn ClockSource,
        on_arrival: F,
    ) -> Result<SoakOutcome, ServeError>
    where
        F: FnMut(&Request, &mut Fleet<B>),
    {
        self.run_inner(trace, ops, clock, on_arrival)
    }

    /// The unified event loop behind both `run_trace` and `run_soak`.
    fn run_inner<F>(
        &mut self,
        trace: &ArrivalTrace,
        ops: OpsPlan<B>,
        clock: &mut dyn ClockSource,
        mut on_arrival: F,
    ) -> Result<SoakOutcome, ServeError>
    where
        F: FnMut(&Request, &mut Fleet<B>),
    {
        ops.validate(self.fleet.len())?;
        let arrivals = trace.arrivals();
        let mut run = match self.resume.take() {
            Some((digest, run)) => {
                if digest != trace_digest(trace) {
                    return Err(ServeError::BadSnapshot(
                        "restored run state belongs to a different arrival trace".into(),
                    ));
                }
                run
            }
            None => {
                let mut fresh = RunState::fresh(
                    self.fleet.len(),
                    self.config.policy.queue_cap,
                    arrivals.len(),
                );
                if self.config.watchdog.enabled && self.config.watchdog.proof_cadence > 0 {
                    fresh.watchdog.next_proof = self.config.watchdog.proof_cadence;
                }
                fresh
            }
        };
        let mut ctx = SoakCtx {
            swaps: ops.swaps,
            stalls: ops.stalls,
            snapshot_at: ops.snapshot_at,
            draining: Vec::new(),
            captured: None,
        };

        while run.next < arrivals.len() || !run.queue.is_empty() || !run.inflight.is_empty() {
            let next_arrival = arrivals.get(run.next).map(|a| a.at);
            let next_retire = run.inflight.iter().map(|b| b.done_at).min();
            let next_flush = self.next_flush_tick(&run, &ctx.stalls);
            let next_watchdog = if self.config.watchdog.enabled {
                self.next_watchdog_tick(&run, arrivals.len())
            } else {
                None
            };
            let Some(tick) = [next_arrival, next_retire, next_flush, next_watchdog]
                .into_iter()
                .flatten()
                .min()
            else {
                unreachable!("loop invariant: pending work implies a pending event");
            };
            run.now = tick;
            clock.pace(tick);

            // 0. Watchdog checks precede the pipeline stages they judge:
            //    a stage is late only relative to the tick being entered.
            if self.config.watchdog.enabled {
                self.watchdog_tick(&mut run, arrivals.len());
            }

            // 1. Retire every batch completing at this tick, in dispatch
            //    order, before anything at this tick observes health.
            if next_retire == Some(run.now) {
                let mut retiring = Vec::new();
                let mut rest = Vec::new();
                for batch in run.inflight.drain(..) {
                    if batch.done_at <= run.now {
                        retiring.push(batch);
                    } else {
                        rest.push(batch);
                    }
                }
                run.inflight = rest;
                let watched = self.config.watchdog.enabled;
                for batch in retiring {
                    self.retire(batch, &mut run);
                    if watched {
                        Self::kick(&mut run, WatchStage::Backend);
                        Self::kick(&mut run, WatchStage::Release);
                    }
                }
                run.stalled = false;
                // A draining member whose last batch just retired is now
                // quiesced: its swap can resolve.
                if !ctx.draining.is_empty() {
                    self.try_commit_swaps(&mut run, &mut ctx);
                }
            }

            // 2. Admit every arrival at this tick; scripted soak events
            //    keyed on a request id fire immediately before it is
            //    admitted.
            while run.next < arrivals.len() && arrivals[run.next].at == run.now {
                let rid = arrivals[run.next].request.id;
                if ctx.snapshot_at == Some(rid) && ctx.captured.is_none() {
                    if !ctx.draining.is_empty() {
                        return Err(ServeError::BadSnapshot(
                            "cannot snapshot during a pending hot swap".into(),
                        ));
                    }
                    ctx.captured = Some(self.capture_snapshot(trace, &run));
                }
                let mut i = 0;
                while i < ctx.swaps.len() {
                    if ctx.swaps[i].at_request == rid {
                        let op = ctx.swaps.remove(i);
                        ctx.draining.push(DrainingSwap {
                            op,
                            requested_at: run.now,
                        });
                    } else {
                        i += 1;
                    }
                }
                if !ctx.draining.is_empty() {
                    // An idle member swaps instantly; a busy one drains.
                    self.try_commit_swaps(&mut run, &mut ctx);
                }
                let arrival = arrivals[run.next].clone();
                run.next += 1;
                self.admit(arrival.request, &mut run, &mut on_arrival);
                if self.config.watchdog.enabled {
                    Self::kick(&mut run, WatchStage::Admission);
                }
                run.stalled = false;
            }

            // 3. Dispatch when the (recomputed) flush tick has come.
            if !run.queue.is_empty() && !run.stalled {
                let due = self
                    .next_flush_tick(&run, &ctx.stalls)
                    .is_some_and(|f| f <= run.now);
                if due {
                    let progressed = self.dispatch_round(&mut run, &ctx.draining, &ctx.stalls)?;
                    if !progressed {
                        run.stalled = true;
                    }
                }
            }
        }

        // Safety net: a swap whose member idled out exactly at trace end.
        if !ctx.draining.is_empty() {
            self.try_commit_swaps(&mut run, &mut ctx);
        }
        debug_assert_eq!(
            run.responses.len(),
            arrivals.len(),
            "one response per request"
        );
        let report = self.finish_report(run);
        Ok(SoakOutcome {
            report,
            snapshot: ctx.captured,
        })
    }

    /// The tick at which the current queue should flush, if any:
    /// `None` while the queue is empty or the last round stalled;
    /// the current tick when the whole fleet is stopped (drain);
    /// otherwise the batch policy's flush tick, clamped forward out of
    /// any scripted batcher stall.
    fn next_flush_tick(&self, run: &RunState, stalls: &[StallOp]) -> Option<u64> {
        if run.queue.is_empty() || run.stalled {
            return None;
        }
        let flush = if self.all_stopped() {
            // Nothing can ever serve the queued work: drain it now.
            run.now
        } else {
            let fleet_free = self
                .monitors
                .iter()
                .enumerate()
                .filter(|(_, m)| m.state() != HealthState::SafeStop)
                .map(|(i, _)| run.free_at[i])
                .min()
                .expect("non-stopped member exists");
            self.config.policy.flush_at(run.queue.items(), fleet_free)?
        };
        Some(stall_clamp(stalls, WatchStage::Batcher, flush.max(run.now)))
    }

    /// Records one stage's liveness heartbeat: progress resets its
    /// strike ladder.
    fn kick(run: &mut RunState, stage: WatchStage) {
        let i = stage.index();
        run.watchdog.last_progress[i] = run.now;
        run.watchdog.strikes[i] = 0;
        run.stats.watchdog_kicks[i] += 1;
    }

    /// Whether a stage currently has work it must be making progress on.
    fn stage_armed(run: &RunState, stage: WatchStage, total_arrivals: usize) -> bool {
        match stage {
            WatchStage::Admission => run.next < total_arrivals,
            WatchStage::Batcher => !run.queue.is_empty(),
            WatchStage::Backend | WatchStage::Release => !run.inflight.is_empty(),
        }
    }

    /// The next tick at which the watchdog itself needs to run: the
    /// earliest stage strike deadline, or the proof cadence.
    fn next_watchdog_tick(&self, run: &RunState, total_arrivals: usize) -> Option<u64> {
        let cfg = &self.config.watchdog;
        let mut next: Option<u64> = None;
        for stage in WatchStage::ALL {
            let i = stage.index();
            if !Self::stage_armed(run, stage, total_arrivals) || run.watchdog.strikes[i] >= 3 {
                continue;
            }
            let due = run.watchdog.last_progress[i]
                + cfg.stage_deadline[i] * (u64::from(run.watchdog.strikes[i]) + 1);
            next = Some(next.map_or(due, |n: u64| n.min(due)));
        }
        if cfg.proof_cadence > 0 {
            next = Some(next.map_or(run.watchdog.next_proof, |n| n.min(run.watchdog.next_proof)));
        }
        next.map(|t| t.max(run.now))
    }

    /// One watchdog pass at the tick being entered: unarmed stages are
    /// refreshed, armed stages past their deadline take a strike, and
    /// strikes walk the escalation ladder — warning alarm, fleet
    /// Degraded, fleet SafeStop — each step on the evidence chain.
    fn watchdog_tick(&mut self, run: &mut RunState, total_arrivals: usize) {
        let cfg = self.config.watchdog;
        let now = run.now;
        for stage in WatchStage::ALL {
            let i = stage.index();
            if !Self::stage_armed(run, stage, total_arrivals) {
                // Nothing to prove: an idle stage is trivially live.
                run.watchdog.last_progress[i] = now;
                run.watchdog.strikes[i] = 0;
                continue;
            }
            if run.watchdog.strikes[i] >= 3 {
                continue;
            }
            let due = run.watchdog.last_progress[i]
                + cfg.stage_deadline[i] * (u64::from(run.watchdog.strikes[i]) + 1);
            if now < due {
                continue;
            }
            run.watchdog.strikes[i] += 1;
            let stalled_for = now - run.watchdog.last_progress[i];
            match run.watchdog.strikes[i] {
                1 => {
                    self.chain.append(
                        RecordKind::WatchdogAlarm,
                        vec![
                            ("server".into(), Value::Str("safex-serve".into())),
                            ("stage".into(), Value::Str(stage.tag().into())),
                            ("at_tick".into(), Value::U64(now)),
                            ("stalled_for".into(), Value::U64(stalled_for)),
                            ("strike".into(), Value::U64(1)),
                        ],
                    );
                    run.stats.watchdog_alarms += 1;
                }
                2 => {
                    self.chain.append(
                        RecordKind::WatchdogEscalation,
                        vec![
                            ("server".into(), Value::Str("safex-serve".into())),
                            ("stage".into(), Value::Str(stage.tag().into())),
                            ("at_tick".into(), Value::U64(now)),
                            ("action".into(), Value::Str("degrade_fleet".into())),
                            ("strike".into(), Value::U64(2)),
                        ],
                    );
                    run.stats.watchdog_escalations += 1;
                    self.force_fleet(run, HealthState::Nominal, HealthState::Degraded);
                }
                _ => {
                    self.chain.append(
                        RecordKind::WatchdogEscalation,
                        vec![
                            ("server".into(), Value::Str("safex-serve".into())),
                            ("stage".into(), Value::Str(stage.tag().into())),
                            ("at_tick".into(), Value::U64(now)),
                            ("action".into(), Value::Str("safe_stop_fleet".into())),
                            ("strike".into(), Value::U64(3)),
                        ],
                    );
                    run.stats.watchdog_escalations += 1;
                    self.force_fleet(run, HealthState::Nominal, HealthState::SafeStop);
                    self.force_fleet(run, HealthState::Degraded, HealthState::SafeStop);
                    // The drain path must run even if the last dispatch
                    // round stalled: everything queued now resolves to a
                    // typed refusal.
                    run.stalled = false;
                }
            }
        }
        if cfg.proof_cadence > 0 && now >= run.watchdog.next_proof {
            while run.watchdog.next_proof <= now {
                run.watchdog.next_proof += cfg.proof_cadence;
            }
            let age = |i: usize| now - run.watchdog.last_progress[i].min(now);
            self.chain.append(
                RecordKind::WatchdogProof,
                vec![
                    ("server".into(), Value::Str("safex-serve".into())),
                    ("at_tick".into(), Value::U64(now)),
                    ("admission_age".into(), Value::U64(age(0))),
                    ("batcher_age".into(), Value::U64(age(1))),
                    ("backend_age".into(), Value::U64(age(2))),
                    ("release_age".into(), Value::U64(age(3))),
                ],
            );
            run.stats.watchdog_proofs += 1;
        }
    }

    /// Forces every member currently in `from` to `to`, recording the
    /// transitions exactly as verdict-driven ones are recorded. Members
    /// forced to SafeStop also lose their cache entries: the ladder no
    /// longer vouches for them.
    fn force_fleet(&mut self, run: &mut RunState, from: HealthState, to: HealthState) {
        let after_request = (run.next as u64).saturating_sub(1);
        for i in 0..self.monitors.len() {
            if self.monitors[i].state() != from {
                continue;
            }
            let model = ModelId::new(i as u16);
            if let Some(t) = self.monitors[i].force(to) {
                run.transitions.push(ServiceTransition {
                    model,
                    from: t.from,
                    to: t.to,
                    at_tick: run.now,
                    after_request,
                });
                self.chain.append(
                    RecordKind::HealthTransition,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("model".into(), Value::Str(model.to_string())),
                        ("from".into(), Value::Str(t.from.tag().into())),
                        ("to".into(), Value::Str(t.to.tag().into())),
                        ("at_tick".into(), Value::U64(run.now)),
                        ("after_request".into(), Value::U64(after_request)),
                    ],
                );
                if t.to == HealthState::SafeStop {
                    self.cache.purge_model(model);
                }
            }
        }
    }

    /// Resolves every draining swap whose member has quiesced (no batch
    /// in flight): verify the incoming backend, then commit or abort.
    fn try_commit_swaps(&mut self, run: &mut RunState, ctx: &mut SoakCtx<B>) {
        let mut i = 0;
        while i < ctx.draining.len() {
            let member = ctx.draining[i].op.model;
            if run.inflight.iter().any(|b| b.model == member) {
                i += 1;
                continue;
            }
            let draining = ctx.draining.remove(i);
            self.resolve_swap(run, draining);
        }
    }

    /// The commit point of one quiesced hot swap: re-golden and verify
    /// the incoming weights, check the digest gate, then atomically
    /// replace the backend — or abort with the old model untouched.
    fn resolve_swap(&mut self, run: &mut RunState, draining: DrainingSwap<B>) {
        let DrainingSwap { op, requested_at } = draining;
        let SwapOp {
            model,
            mut incoming,
            expected_digest,
            ..
        } = op;
        let now = run.now;
        let verdict: Result<u64, String> = match incoming.prepare_swap() {
            Err(e) => Err(e.to_string()),
            Ok(()) => match (expected_digest, incoming.swap_digest()) {
                (Some(want), Some(got)) if want != got => Err(format!(
                    "weight digest mismatch: expected {want:016x}, got {got:016x}"
                )),
                (Some(_), None) => Err("incoming backend cannot attest its weights".into()),
                (_, got) => Ok(got.unwrap_or(0)),
            },
        };
        match verdict {
            Err(reason) => {
                self.chain.append(
                    RecordKind::SwapAborted,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("model".into(), Value::Str(model.to_string())),
                        ("at_tick".into(), Value::U64(now)),
                        ("requested_at".into(), Value::U64(requested_at)),
                        ("reason".into(), Value::Str(reason)),
                    ],
                );
                run.stats.swaps.push(SwapEvent {
                    model,
                    requested_at,
                    resolved_at: now,
                    committed: false,
                    digest: 0,
                });
            }
            Ok(digest) => {
                let old_state = self.monitors[model.index()].state();
                self.fleet.replace_backend(model, incoming);
                self.monitors[model.index()] =
                    HealthMonitor::new(self.config.health).expect("config validated at assembly");
                if old_state != HealthState::Nominal {
                    // The ladder was replaced, not stepped: the service
                    // level change is recorded, but it is the swap — not a
                    // health verdict — that explains it.
                    run.transitions.push(ServiceTransition {
                        model,
                        from: old_state,
                        to: HealthState::Nominal,
                        at_tick: now,
                        after_request: (run.next as u64).saturating_sub(1),
                    });
                }
                let purged = self.cache.purge_model(model);
                self.chain.append(
                    RecordKind::ModelSwapped,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("model".into(), Value::Str(model.to_string())),
                        ("at_tick".into(), Value::U64(now)),
                        ("requested_at".into(), Value::U64(requested_at)),
                        ("digest".into(), Value::Str(format!("{digest:016x}"))),
                        ("purged_cache_entries".into(), Value::U64(purged as u64)),
                        ("ladder_was".into(), Value::Str(old_state.tag().into())),
                    ],
                );
                run.stats.swaps.push(SwapEvent {
                    model,
                    requested_at,
                    resolved_at: now,
                    committed: true,
                    digest,
                });
            }
        }
        // Either way the member serves again (old or new weights), which
        // may unblock a stalled dispatch round.
        run.stalled = false;
    }

    /// Freezes the full runtime — ladders, cache, chain, backend clocks,
    /// mid-run loop state — into versioned, checksummed snapshot bytes.
    fn capture_snapshot(&self, trace: &ArrivalTrace, run: &RunState) -> Vec<u8> {
        let snap = ServerSnapshot {
            campaign: self.config.campaign.clone(),
            config_digest: self.config_digest(),
            trace_digest: trace_digest(trace),
            monitors: self.monitors.iter().map(|m| m.export_state()).collect(),
            cache_entries: self
                .cache
                .entries_in_order()
                .into_iter()
                .map(|(input, result)| CacheEntrySnapshot {
                    input: input.to_vec(),
                    class: result.class,
                    confidence: result.confidence,
                    model: result.model,
                })
                .collect(),
            chain: self
                .chain
                .records()
                .iter()
                .map(|r| ChainEntry {
                    kind: r.kind,
                    fields: r.fields.clone(),
                })
                .collect(),
            chain_head: self.chain.head_hash(),
            backend_clocks: self
                .fleet
                .members()
                .iter()
                .map(|m| m.backend().clock())
                .collect(),
            run: run.to_snapshot(),
        };
        snap.encode()
    }

    /// Seals a finished run into its report.
    fn finish_report(&self, run: RunState) -> ServeReport {
        let RunState {
            mut responses,
            transitions,
            mut metrics,
            queue,
            stats,
            ..
        } = run;
        metrics.record_peak_queue(queue.peak());
        responses.sort_by_key(|r| r.id);
        let summaries = self
            .fleet
            .members()
            .iter()
            .zip(&self.monitors)
            .enumerate()
            .map(|(i, (member, monitor))| ModelSummary {
                model: ModelId::new(i as u16),
                name: member.name().to_string(),
                final_state: monitor.state(),
                time_nominal: monitor.time_in(HealthState::Nominal),
                time_degraded: monitor.time_in(HealthState::Degraded),
                time_stopped: monitor.time_in(HealthState::SafeStop),
                transitions: monitor.transitions().len(),
            })
            .collect();
        ServeReport {
            responses,
            transitions,
            models: summaries,
            routing: self.router.name().to_string(),
            snapshot: metrics.snapshot(),
            chain_head: self.chain.head_hash(),
            soak: stats,
        }
    }

    fn all_stopped(&self) -> bool {
        self.monitors
            .iter()
            .all(|m| m.state() == HealthState::SafeStop)
    }

    /// The representative member for an anonymous refusal: the
    /// least-loaded non-stopped member (ties by id) — the one the router
    /// would most plausibly have chosen had health allowed.
    fn refusing_member(&self, free_at: &[u64]) -> ModelId {
        self.monitors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.state() != HealthState::SafeStop)
            .min_by_key(|(i, _)| (free_at[*i], *i))
            .map(|(i, _)| ModelId::new(i as u16))
            .unwrap_or(ModelId::new(0))
    }

    /// Admits one arrival (hook → fleet health gate → cache → queue).
    fn admit<F>(&mut self, request: Request, run: &mut RunState, on_arrival: &mut F)
    where
        F: FnMut(&Request, &mut Fleet<B>),
    {
        let now = run.now;
        let RunState {
            queue,
            responses,
            metrics,
            ..
        } = run;
        on_arrival(&request, &mut self.fleet);
        let respond = |outcome: Outcome, responses: &mut Vec<Response>, metrics: &mut Metrics| {
            let response = Response {
                id: request.id,
                tier: request.tier,
                arrived_at: now,
                resolved_at: now,
                outcome,
            };
            metrics.record_response(&response);
            responses.push(response);
        };
        // Fleet health gate. A pinned request lives and dies with its
        // pin; a routable one is refused only when *no* member admits
        // its tier.
        if let Some(pin) = request.model {
            match self.monitors.get(pin.index()).map(|m| m.state()) {
                None => {
                    respond(Outcome::SafeStop { model: Some(pin) }, responses, metrics);
                    return;
                }
                Some(HealthState::SafeStop) => {
                    respond(Outcome::SafeStop { model: Some(pin) }, responses, metrics);
                    return;
                }
                Some(state) => {
                    if !admits(state, request.tier, self.config.degraded_floor) {
                        respond(
                            Outcome::Shed(ShedReason::DegradedTier { model: pin }),
                            responses,
                            metrics,
                        );
                        return;
                    }
                }
            }
        } else if self.all_stopped() {
            respond(Outcome::SafeStop { model: None }, responses, metrics);
            return;
        } else if !self
            .monitors
            .iter()
            .any(|m| admits(m.state(), request.tier, self.config.degraded_floor))
        {
            // Some member is still running, but every running member is
            // degraded below this tier's floor.
            let model = self
                .monitors
                .iter()
                .enumerate()
                .filter(|(_, m)| m.state() != HealthState::SafeStop)
                .map(|(i, _)| ModelId::new(i as u16))
                .next()
                .unwrap_or(ModelId::new(0));
            respond(
                Outcome::Shed(ShedReason::DegradedTier { model }),
                responses,
                metrics,
            );
            return;
        }
        // Verified-result cache: a hit answers immediately, on evidence.
        if self.cache.is_enabled() {
            metrics.record_cache_lookup();
            if let Some(hit) = self.cache.lookup(&request.input) {
                let (class, confidence, model, digest) =
                    (hit.class, hit.confidence, hit.model, hit.digest);
                metrics.record_cache_hit();
                self.chain.append(
                    RecordKind::CacheHit,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("at_tick".into(), Value::U64(now)),
                        ("request".into(), Value::U64(request.id)),
                        ("digest".into(), Value::Str(format!("{digest:016x}"))),
                        ("model".into(), Value::Str(model.to_string())),
                    ],
                );
                respond(
                    Outcome::Completed {
                        class,
                        confidence,
                        flagged: false,
                        level: HealthState::Nominal,
                        model,
                        cached: true,
                    },
                    responses,
                    metrics,
                );
                return;
            }
        }
        let (id, tier) = (request.id, request.tier);
        match queue.offer(request, now) {
            Admission::Accepted => {}
            Admission::Displaced(victim) => {
                let response = Response {
                    id: victim.request.id,
                    tier: victim.request.tier,
                    arrived_at: victim.queued_at,
                    resolved_at: now,
                    outcome: Outcome::Shed(ShedReason::Displaced { by: id }),
                };
                metrics.record_response(&response);
                responses.push(response);
            }
            Admission::Rejected => {
                let response = Response {
                    id,
                    tier,
                    arrived_at: now,
                    resolved_at: now,
                    outcome: Outcome::Shed(ShedReason::QueueFull),
                };
                metrics.record_response(&response);
                responses.push(response);
            }
        }
        metrics.record_peak_queue(queue.len());
    }

    /// Runs one dispatch round at the current tick: fairness selects,
    /// gates refuse, the routing policy places, one batch per idle
    /// member executes. Draining members (mid hot swap) take no new
    /// batches; release stalls push completion ticks forward. Returns
    /// `false` when the round made no progress (everything selected was
    /// put back).
    fn dispatch_round(
        &mut self,
        run: &mut RunState,
        draining: &[DrainingSwap<B>],
        stalls: &[StallOp],
    ) -> Result<bool, ServeError> {
        let now = run.now;
        let models = self.fleet.len();
        let service: ServiceModel = self.config.service;
        let max_batch = self.config.policy.max_batch;
        let RunState {
            queue,
            inflight,
            free_at,
            decisions,
            responses,
            metrics,
            ..
        } = run;
        // Members that can *start* a batch this round: running, idle, and
        // not quiescing for a swap.
        let idle: Vec<bool> = (0..models)
            .map(|i| {
                self.monitors[i].state() != HealthState::SafeStop
                    && free_at[i] <= now
                    && !draining.iter().any(|d| d.op.model.index() == i)
            })
            .collect();
        let capacity: usize = idle.iter().filter(|&&b| b).count() * max_batch;
        let selected = if self.all_stopped() {
            // Drain: every queued entry resolves to a typed refusal.
            queue.take(queue.len())
        } else {
            queue.select(capacity.max(1), now, &self.config.fairness)
        };
        if selected.is_empty() {
            return Ok(false);
        }
        let mut assigned: Vec<Vec<Pending>> = vec![Vec::new(); models];
        let mut put_back: Vec<Pending> = Vec::new();
        let mut progressed = false;
        for pending in selected {
            let request = &pending.request;
            let mut respond = |outcome: Outcome, pending: &Pending| {
                let response = Response {
                    id: pending.request.id,
                    tier: pending.request.tier,
                    arrived_at: pending.queued_at,
                    resolved_at: now,
                    outcome,
                };
                metrics.record_response(&response);
                responses.push(response);
            };
            if self.all_stopped() {
                respond(Outcome::SafeStop { model: None }, &pending);
                progressed = true;
                continue;
            }
            if request.deadline <= now {
                // Expired at batch formation: the result could only be
                // stale, so it is never computed.
                respond(Outcome::Timeout, &pending);
                progressed = true;
                continue;
            }
            if let Some(pin) = request.model {
                // Pinned: the pin's fate is the request's fate.
                match self.monitors.get(pin.index()).map(|m| m.state()) {
                    None | Some(HealthState::SafeStop) => {
                        respond(Outcome::SafeStop { model: Some(pin) }, &pending);
                        progressed = true;
                    }
                    Some(state) if !admits(state, request.tier, self.config.degraded_floor) => {
                        respond(
                            Outcome::Shed(ShedReason::DegradedTier { model: pin }),
                            &pending,
                        );
                        progressed = true;
                    }
                    Some(_) => {
                        if idle[pin.index()] && assigned[pin.index()].len() < max_batch {
                            assigned[pin.index()].push(pending);
                        } else {
                            put_back.push(pending);
                        }
                    }
                }
                continue;
            }
            // Routable: build the candidate view (health-admitting, idle,
            // with batch capacity) and let the policy pick.
            let candidates: Vec<CandidateView> = (0..models)
                .filter(|&i| {
                    idle[i]
                        && assigned[i].len() < max_batch
                        && admits(
                            self.monitors[i].state(),
                            request.tier,
                            self.config.degraded_floor,
                        )
                })
                .map(|i| CandidateView {
                    id: ModelId::new(i as u16),
                    state: self.monitors[i].state(),
                    free_at: now + service.duration(assigned[i].len() + 1),
                    assigned: assigned[i].len(),
                })
                .collect();
            if candidates.is_empty() {
                // No member can take it *now*. If some running member
                // admits the tier (just busy or full), the request waits;
                // otherwise every running member refuses it by health.
                let eventually = (0..models).any(|i| {
                    self.monitors[i].state() != HealthState::SafeStop
                        && admits(
                            self.monitors[i].state(),
                            request.tier,
                            self.config.degraded_floor,
                        )
                });
                if eventually {
                    put_back.push(pending);
                } else {
                    respond(
                        Outcome::Shed(ShedReason::DegradedTier {
                            model: self.refusing_member(free_at),
                        }),
                        &pending,
                    );
                    progressed = true;
                }
                continue;
            }
            let view = RouteView {
                request,
                decision: *decisions,
                now,
                candidates: &candidates,
            };
            *decisions += 1;
            let choice = self.router.route(&view);
            // A policy returning a non-candidate is a bug; fall back to
            // the first candidate rather than violate the health gate.
            let target = if candidates.iter().any(|c| c.id == choice) {
                choice
            } else {
                candidates[0].id
            };
            assigned[target.index()].push(pending);
        }
        // Execute one batch per member, in member order. Verdicts are
        // computed now (the batch runs now); effects land at retirement.
        let mut batches_launched = 0u32;
        for (i, batch) in assigned.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            progressed = true;
            batches_launched += 1;
            let model = ModelId::new(i as u16);
            let done_at = stall_clamp(
                stalls,
                WatchStage::Release,
                now + service.duration(batch.len()),
            );
            free_at[i] = done_at;
            metrics.record_batch(model, batch.len());
            let inputs: Vec<&[f32]> = batch.iter().map(|p| p.request.input.as_slice()).collect();
            let backend = self
                .fleet
                .backend_mut(model)
                .expect("assigned member exists");
            let verdicts = backend.serve(&inputs)?;
            debug_assert_eq!(verdicts.len(), batch.len(), "backend verdict count");
            inflight.push(InFlightBatch {
                model,
                done_at,
                items: batch.into_iter().zip(verdicts).collect(),
            });
        }
        queue.put_back(put_back);
        if self.config.watchdog.enabled && batches_launched > 0 {
            for _ in 0..batches_launched {
                Self::kick(run, WatchStage::Backend);
            }
            Self::kick(run, WatchStage::Batcher);
        }
        Ok(progressed)
    }

    /// Applies one completed batch's effects at its completion tick:
    /// monitor stepping, evidence, response release (or fail-over),
    /// cache insertion — and, when a ladder reaches SafeStop, the purge
    /// of that member's cache entries.
    fn retire(&mut self, batch: InFlightBatch, run: &mut RunState) {
        let InFlightBatch {
            model,
            done_at,
            items,
        } = batch;
        let RunState {
            queue,
            responses,
            transitions,
            metrics,
            ..
        } = run;
        let mut failover: Vec<Pending> = Vec::new();
        for (pending, verdict) in items {
            let (stop, flagged, corrected, class, confidence) = match verdict {
                BatchVerdict::Stop => (true, true, false, 0, 0.0),
                BatchVerdict::Ok {
                    class,
                    confidence,
                    flagged,
                    corrected,
                } => (false, flagged, corrected, class, confidence),
            };
            // Corrected faults are warnings: the ladder only walks when
            // the bounded warning budget is exhausted.
            let health = if stop || flagged {
                HealthVerdict::Unhealthy
            } else if corrected {
                HealthVerdict::Warning
            } else {
                HealthVerdict::Clean
            };
            if corrected && !flagged && !stop {
                self.chain.append(
                    RecordKind::FaultCorrected,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("model".into(), Value::Str(model.to_string())),
                        ("at_tick".into(), Value::U64(done_at)),
                        ("request".into(), Value::U64(pending.request.id)),
                    ],
                );
            }
            let monitor = &mut self.monitors[model.index()];
            if let Some(t) = monitor.step_verdict(health) {
                let transition = ServiceTransition {
                    model,
                    from: t.from,
                    to: t.to,
                    at_tick: done_at,
                    after_request: pending.request.id,
                };
                transitions.push(transition);
                self.chain.append(
                    RecordKind::HealthTransition,
                    vec![
                        ("server".into(), Value::Str("safex-serve".into())),
                        ("model".into(), Value::Str(model.to_string())),
                        ("from".into(), Value::Str(t.from.tag().into())),
                        ("to".into(), Value::Str(t.to.tag().into())),
                        ("at_tick".into(), Value::U64(done_at)),
                        ("after_request".into(), Value::U64(pending.request.id)),
                    ],
                );
                if t.to == HealthState::SafeStop {
                    // A stopped ladder no longer vouches for the results
                    // its member computed: they must not serve hits.
                    self.cache.purge_model(model);
                }
            }
            // Release gate: a result is returned only when (a) the
            // backend did not demand a stop, (b) the member's ladder has
            // not reached safe stop, and (c) the deadline still holds.
            // Anything else is a typed non-answer — a stale or suspect
            // result is never released.
            let state = self.monitors[model.index()].state();
            let outcome = if stop || state == HealthState::SafeStop {
                // Fail-over: when the *ladder* (not the backend verdict
                // for this very item) withheld the result, an unpinned
                // request whose deadline still holds is recomputed on a
                // healthy peer rather than failed — one stopping member
                // costs the fleet latency, not answers. A pinned request
                // dies with its pin, and a backend-demanded stop is
                // honoured as a per-item safety verdict.
                let ladder_only = !stop && state == HealthState::SafeStop;
                let peer_alive = self
                    .monitors
                    .iter()
                    .enumerate()
                    .any(|(i, m)| i != model.index() && m.state() != HealthState::SafeStop);
                if ladder_only
                    && pending.request.model.is_none()
                    && pending.request.deadline > done_at
                    && peer_alive
                {
                    failover.push(pending);
                    continue;
                }
                Outcome::SafeStop { model: Some(model) }
            } else if pending.request.deadline < done_at {
                Outcome::Timeout
            } else {
                // A fully verified decision — unflagged, uncorrected,
                // released at Nominal — is the only thing the result
                // cache may learn.
                if !flagged && !corrected && state == HealthState::Nominal {
                    self.cache
                        .insert(&pending.request.input, class, confidence, model);
                }
                Outcome::Completed {
                    class,
                    confidence,
                    flagged,
                    level: state,
                    model,
                    cached: false,
                }
            };
            let response = Response {
                id: pending.request.id,
                tier: pending.request.tier,
                arrived_at: pending.queued_at,
                resolved_at: done_at,
                outcome,
            };
            metrics.record_response(&response);
            responses.push(response);
        }
        if !failover.is_empty() {
            queue.put_back(failover);
        }
    }
}
