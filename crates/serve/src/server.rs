//! The serving loop: admission → batching → dispatch → health gating.
//!
//! [`Server::run_trace`] replays an [`ArrivalTrace`] through a
//! discrete-event simulation of the serving runtime. The clock is a
//! `u64` tick counter advanced only by trace timestamps and the
//! [`ServiceModel`]'s execution cost — never a wall clock — so the entire
//! run, including batch boundaries, shedding decisions, and
//! degradation-ladder walks, is a pure function of its inputs and
//! replays byte-for-byte.
//!
//! ## Service levels
//!
//! The server owns a [`HealthMonitor`] and feeds it one boolean per
//! executed request (`flagged` — the hardened backend raised events, or
//! the pattern fell back). The ladder gates admission and release:
//!
//! | health state | admission                    | release                      |
//! |--------------|------------------------------|------------------------------|
//! | Nominal      | all tiers                    | results released             |
//! | Degraded     | tiers ≥ the configured floor | results released (flagged)   |
//! | SafeStop     | nothing (typed `SafeStop`)   | results withheld (`SafeStop`)|
//!
//! Every ladder transition is appended to the evidence chain with the
//! tick and the request that triggered it.

use safex_core::health::{HealthMonitor, HealthState, HealthVerdict};
use safex_trace::json::Json;
use safex_trace::{EvidenceChain, RecordKind, Value};

use crate::backend::{Backend, BatchVerdict};
use crate::batcher::{BatchPolicy, ServiceModel};
use crate::config::ServerConfig;
use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{Admission, AdmissionQueue};
use crate::request::{Outcome, Request, Response, ShedReason};
use crate::traffic::ArrivalTrace;

/// One recorded service-level change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceTransition {
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Tick at which the triggering batch completed.
    pub at_tick: u64,
    /// The request whose decision fired the transition.
    pub after_request: u64,
}

/// The complete, reproducible result of one trace replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One response per request, ordered by request id.
    pub responses: Vec<Response>,
    /// Service-level transitions, in occurrence order.
    pub transitions: Vec<ServiceTransition>,
    /// Frozen metrics.
    pub snapshot: MetricsSnapshot,
    /// Head hash of the evidence chain after the run (binds the report
    /// to the recorded transition evidence).
    pub chain_head: u64,
}

impl ServeReport {
    /// Serialises the full report (responses, transitions, metrics) to
    /// deterministic JSON — the byte-for-byte replay artefact.
    pub fn to_json(&self) -> Json {
        let responses: Vec<Json> = self
            .responses
            .iter()
            .map(|r| {
                let mut obj = Json::object();
                obj.set("id", Json::from(r.id))
                    .set("tier", Json::from(r.tier.tag()))
                    .set("arrived", Json::from(r.arrived_at))
                    .set("resolved", Json::from(r.resolved_at))
                    .set("outcome", Json::from(r.outcome.tag()));
                match &r.outcome {
                    Outcome::Completed {
                        class,
                        confidence,
                        flagged,
                        level,
                    } => {
                        obj.set("class", Json::from(*class))
                            .set("confidence", Json::from(f64::from(*confidence)))
                            .set("flagged", Json::from(*flagged))
                            .set("level", Json::from(level.tag()));
                    }
                    Outcome::Shed(reason) => {
                        obj.set("reason", Json::from(reason.tag()));
                        if let ShedReason::Displaced { by } = reason {
                            obj.set("displaced_by", Json::from(*by));
                        }
                    }
                    Outcome::Timeout | Outcome::SafeStop => {}
                }
                obj
            })
            .collect();
        let transitions: Vec<Json> = self
            .transitions
            .iter()
            .map(|t| {
                let mut obj = Json::object();
                obj.set("from", Json::from(t.from.tag()))
                    .set("to", Json::from(t.to.tag()))
                    .set("at_tick", Json::from(t.at_tick))
                    .set("after_request", Json::from(t.after_request));
                obj
            })
            .collect();
        let mut root = Json::object();
        root.set("responses", Json::Arr(responses))
            .set("transitions", Json::Arr(transitions))
            .set("metrics", self.snapshot.to_json())
            .set("chain_head", Json::Str(format!("{:016x}", self.chain_head)));
        root
    }
}

/// The deterministic micro-batching inference server.
pub struct Server<B: Backend> {
    backend: B,
    policy: BatchPolicy,
    service: ServiceModel,
    degraded_floor: crate::request::Tier,
    monitor: HealthMonitor,
    chain: EvidenceChain,
}

impl<B: Backend> Server<B> {
    /// Assembles a server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid batch policy or
    /// health configuration.
    pub fn new(config: ServerConfig, backend: B) -> Result<Self, ServeError> {
        config.validate()?;
        let monitor =
            HealthMonitor::new(config.health).map_err(|e| ServeError::BadConfig(e.to_string()))?;
        Ok(Server {
            backend,
            policy: config.policy,
            service: config.service,
            degraded_floor: config.degraded_floor,
            monitor,
            chain: EvidenceChain::new(config.campaign),
        })
    }

    /// The current service level.
    pub fn service_level(&self) -> HealthState {
        self.monitor.state()
    }

    /// The evidence chain accumulated across runs.
    pub fn evidence(&self) -> &EvidenceChain {
        &self.chain
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Replays a trace to completion.
    ///
    /// # Errors
    ///
    /// Propagates backend infrastructure failures; outcome-level
    /// failures (sheds, timeouts, stops) are data, not errors.
    pub fn run_trace(&mut self, trace: &ArrivalTrace) -> Result<ServeReport, ServeError> {
        self.run_trace_with(trace, |_, _| {})
    }

    /// Replays a trace, invoking `on_arrival` for every arrival *before*
    /// admission — the deterministic hook fault-injection harnesses use
    /// to strike the backend mid-traffic (keyed by request id, not wall
    /// time, so strikes replay exactly).
    ///
    /// # Errors
    ///
    /// Propagates backend infrastructure failures.
    pub fn run_trace_with<F>(
        &mut self,
        trace: &ArrivalTrace,
        mut on_arrival: F,
    ) -> Result<ServeReport, ServeError>
    where
        F: FnMut(&Request, &mut B),
    {
        let arrivals = trace.arrivals();
        let mut responses: Vec<Response> = Vec::with_capacity(arrivals.len());
        let mut transitions: Vec<ServiceTransition> = Vec::new();
        let mut metrics = Metrics::new();
        let mut queue = AdmissionQueue::new(self.policy.queue_cap);
        let mut free_at = 0u64;
        let mut next = 0usize;

        while next < arrivals.len() || !queue.is_empty() {
            if queue.is_empty() {
                let arrival = &arrivals[next];
                next += 1;
                self.admit(
                    arrival.request.clone(),
                    arrival.at,
                    &mut queue,
                    &mut responses,
                    &mut metrics,
                    &mut on_arrival,
                );
                continue;
            }
            // Admit everything that arrives before the queue's flush
            // tick; each admission can change the queue (displacement)
            // and therefore the flush tick, so recompute per arrival.
            let flush = loop {
                let flush = self
                    .policy
                    .flush_at(queue.items(), free_at)
                    .expect("flush_at on non-empty queue");
                match arrivals.get(next) {
                    Some(arrival) if arrival.at <= flush => {
                        let arrival = arrival.clone();
                        next += 1;
                        self.admit(
                            arrival.request,
                            arrival.at,
                            &mut queue,
                            &mut responses,
                            &mut metrics,
                            &mut on_arrival,
                        );
                        if queue.is_empty() {
                            break None;
                        }
                    }
                    _ => break Some(flush),
                }
            };
            let Some(now) = flush else { continue };

            // Form the batch: expired entries time out *before*
            // execution, and the service level gates what runs at all.
            let taken = queue.take(self.policy.max_batch);
            let mut live = Vec::new();
            for pending in taken {
                let state = self.monitor.state();
                let outcome = if state == HealthState::SafeStop {
                    Some(Outcome::SafeStop)
                } else if pending.request.deadline <= now {
                    Some(Outcome::Timeout)
                } else if state == HealthState::Degraded
                    && pending.request.tier < self.degraded_floor
                {
                    Some(Outcome::Shed(ShedReason::DegradedTier))
                } else {
                    None
                };
                match outcome {
                    Some(outcome) => {
                        let response = Response {
                            id: pending.request.id,
                            tier: pending.request.tier,
                            arrived_at: pending.queued_at,
                            resolved_at: now,
                            outcome,
                        };
                        metrics.record_response(&response);
                        responses.push(response);
                    }
                    None => live.push(pending),
                }
            }
            if live.is_empty() {
                continue;
            }

            metrics.record_batch(live.len());
            let inputs: Vec<&[f32]> = live.iter().map(|p| p.request.input.as_slice()).collect();
            let verdicts = self.backend.serve(&inputs)?;
            debug_assert_eq!(verdicts.len(), live.len(), "backend verdict count");
            let done_at = now + self.service.duration(live.len());
            free_at = done_at;

            for (pending, verdict) in live.into_iter().zip(verdicts) {
                let (stop, flagged, corrected, class, confidence) = match verdict {
                    BatchVerdict::Stop => (true, true, false, 0, 0.0),
                    BatchVerdict::Ok {
                        class,
                        confidence,
                        flagged,
                        corrected,
                    } => (false, flagged, corrected, class, confidence),
                };
                // Corrected faults are warnings: the ladder only walks
                // when the bounded warning budget is exhausted.
                let health = if stop || flagged {
                    HealthVerdict::Unhealthy
                } else if corrected {
                    HealthVerdict::Warning
                } else {
                    HealthVerdict::Clean
                };
                if corrected && !flagged && !stop {
                    self.chain.append(
                        RecordKind::FaultCorrected,
                        vec![
                            ("server".into(), Value::Str("safex-serve".into())),
                            ("at_tick".into(), Value::U64(done_at)),
                            ("request".into(), Value::U64(pending.request.id)),
                        ],
                    );
                }
                if let Some(t) = self.monitor.step_verdict(health) {
                    let transition = ServiceTransition {
                        from: t.from,
                        to: t.to,
                        at_tick: done_at,
                        after_request: pending.request.id,
                    };
                    transitions.push(transition);
                    self.chain.append(
                        RecordKind::HealthTransition,
                        vec![
                            ("server".into(), Value::Str("safex-serve".into())),
                            ("from".into(), Value::Str(t.from.tag().into())),
                            ("to".into(), Value::Str(t.to.tag().into())),
                            ("at_tick".into(), Value::U64(done_at)),
                            ("after_request".into(), Value::U64(pending.request.id)),
                        ],
                    );
                }
                // Release gate: a result is returned only when (a) the
                // backend did not demand a stop, (b) the ladder has not
                // reached safe stop, and (c) the deadline still holds.
                // Anything else is a typed non-answer — a stale or
                // suspect result is never released.
                let state = self.monitor.state();
                let outcome = if stop || state == HealthState::SafeStop {
                    Outcome::SafeStop
                } else if pending.request.deadline < done_at {
                    Outcome::Timeout
                } else {
                    Outcome::Completed {
                        class,
                        confidence,
                        flagged,
                        level: state,
                    }
                };
                let response = Response {
                    id: pending.request.id,
                    tier: pending.request.tier,
                    arrived_at: pending.queued_at,
                    resolved_at: done_at,
                    outcome,
                };
                metrics.record_response(&response);
                responses.push(response);
            }
        }

        debug_assert_eq!(responses.len(), arrivals.len(), "one response per request");
        metrics.record_peak_queue(queue.peak());
        responses.sort_by_key(|r| r.id);
        Ok(ServeReport {
            responses,
            transitions,
            snapshot: metrics.snapshot(),
            chain_head: self.chain.head_hash(),
        })
    }

    /// Admits one arrival (hook → service-level gate → bounded queue).
    #[allow(clippy::too_many_arguments)]
    fn admit<F>(
        &mut self,
        request: Request,
        now: u64,
        queue: &mut AdmissionQueue,
        responses: &mut Vec<Response>,
        metrics: &mut Metrics,
        on_arrival: &mut F,
    ) where
        F: FnMut(&Request, &mut B),
    {
        on_arrival(&request, &mut self.backend);
        let state = self.monitor.state();
        let refusal = if state == HealthState::SafeStop {
            Some(Outcome::SafeStop)
        } else if state == HealthState::Degraded && request.tier < self.degraded_floor {
            Some(Outcome::Shed(ShedReason::DegradedTier))
        } else {
            None
        };
        if let Some(outcome) = refusal {
            let response = Response {
                id: request.id,
                tier: request.tier,
                arrived_at: now,
                resolved_at: now,
                outcome,
            };
            metrics.record_response(&response);
            responses.push(response);
            return;
        }
        let (id, tier) = (request.id, request.tier);
        match queue.offer(request, now) {
            Admission::Accepted => {}
            Admission::Displaced(victim) => {
                let response = Response {
                    id: victim.request.id,
                    tier: victim.request.tier,
                    arrived_at: victim.queued_at,
                    resolved_at: now,
                    outcome: Outcome::Shed(ShedReason::Displaced { by: id }),
                };
                metrics.record_response(&response);
                responses.push(response);
            }
            Admission::Rejected => {
                let response = Response {
                    id,
                    tier,
                    arrived_at: now,
                    resolved_at: now,
                    outcome: Outcome::Shed(ShedReason::QueueFull),
                };
                metrics.record_response(&response);
                responses.push(response);
            }
        }
        metrics.record_peak_queue(queue.len());
    }
}
