//! Serving metrics: latency percentiles (fleet-wide and per tier),
//! shedding accounting, per-model usage, cache effectiveness.
//!
//! Metrics use exact nearest-rank percentiles over the full latency
//! population (not streaming sketches): serving runs are bounded traces,
//! so exactness is affordable, and the snapshot being a pure function of
//! the run is what keeps reports byte-reproducible.
//!
//! The fleet redesign split the accounting three ways:
//!
//! * **per tier** — the fairness story: a starvation argument needs
//!   high-tier p99 *and* low-tier completion counts, not a blended
//!   number;
//! * **per model** — the health story: which member carried the load,
//!   and how much work a struck member shed onto its peers;
//! * **cache** — lookups vs hits, with cached completions also counted
//!   per tier so a hit-rate claim can be audited against the tier mix.

use std::collections::BTreeMap;

use safex_trace::json::Json;

use crate::request::{ModelId, Outcome, Response, ShedReason, Tier};

/// Aggregated counters for one serving run.
///
/// Fields are crate-visible so the snapshot codec can serialize and
/// rebuild mid-run counters bit-for-bit; outside the crate the only
/// window is [`Metrics::snapshot`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    pub(crate) latencies: Vec<u64>,
    pub(crate) tier_latencies: [Vec<u64>; 3],
    pub(crate) batch_sizes: BTreeMap<usize, u64>,
    pub(crate) completed: [u64; 3],
    pub(crate) cached: [u64; 3],
    pub(crate) shed_queue_full: [u64; 3],
    pub(crate) shed_displaced: [u64; 3],
    pub(crate) shed_degraded: [u64; 3],
    pub(crate) timeout: [u64; 3],
    pub(crate) safe_stop: [u64; 3],
    pub(crate) peak_queue_depth: usize,
    pub(crate) cache_lookups: u64,
    pub(crate) cache_hits: u64,
    pub(crate) models: Vec<ModelCounters>,
}

#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct ModelCounters {
    pub(crate) batches: u64,
    pub(crate) items: u64,
    pub(crate) completed: u64,
}

impl Metrics {
    /// Creates empty metrics for a fleet of `models` members.
    pub fn new(models: usize) -> Self {
        Metrics {
            models: vec![ModelCounters::default(); models],
            ..Metrics::default()
        }
    }

    /// Absorbs one terminal response.
    pub fn record_response(&mut self, response: &Response) {
        let t = response.tier.index();
        match &response.outcome {
            Outcome::Completed { model, cached, .. } => {
                self.completed[t] += 1;
                let latency = response.resolved_at - response.arrived_at;
                self.latencies.push(latency);
                self.tier_latencies[t].push(latency);
                if let Some(m) = self.models.get_mut(model.index()) {
                    m.completed += 1;
                }
                if *cached {
                    self.cached[t] += 1;
                }
            }
            Outcome::Shed(ShedReason::QueueFull) => self.shed_queue_full[t] += 1,
            Outcome::Shed(ShedReason::Displaced { .. }) => self.shed_displaced[t] += 1,
            Outcome::Shed(ShedReason::DegradedTier { .. }) => self.shed_degraded[t] += 1,
            Outcome::Timeout => self.timeout[t] += 1,
            Outcome::SafeStop { .. } => self.safe_stop[t] += 1,
        }
    }

    /// Records one batch dispatched to `model`.
    pub fn record_batch(&mut self, model: ModelId, size: usize) {
        *self.batch_sizes.entry(size).or_insert(0) += 1;
        if let Some(m) = self.models.get_mut(model.index()) {
            m.batches += 1;
            m.items += size as u64;
        }
    }

    /// Records one result-cache lookup (one per admitted request when
    /// the cache is enabled).
    pub fn record_cache_lookup(&mut self) {
        self.cache_lookups += 1;
    }

    /// Records one result-cache hit.
    pub fn record_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Records the deepest queue observed.
    pub fn record_peak_queue(&mut self, depth: usize) {
        self.peak_queue_depth = self.peak_queue_depth.max(depth);
    }

    /// Freezes the counters into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let fleet = LatencyStats::from_population(&self.latencies);
        let tier_latency = [
            LatencyStats::from_population(&self.tier_latencies[0]),
            LatencyStats::from_population(&self.tier_latencies[1]),
            LatencyStats::from_population(&self.tier_latencies[2]),
        ];
        MetricsSnapshot {
            completed: self.completed,
            cached: self.cached,
            shed_queue_full: self.shed_queue_full,
            shed_displaced: self.shed_displaced,
            shed_degraded: self.shed_degraded,
            timeout: self.timeout,
            safe_stop: self.safe_stop,
            latency_p50: fleet.p50,
            latency_p95: fleet.p95,
            latency_p99: fleet.p99,
            latency_max: fleet.max,
            tier_latency,
            batch_sizes: self.batch_sizes.clone(),
            peak_queue_depth: self.peak_queue_depth,
            cache_lookups: self.cache_lookups,
            cache_hits: self.cache_hits,
            models: self
                .models
                .iter()
                .map(|m| ModelUsage {
                    batches: m.batches,
                    items: m.items,
                    completed: m.completed,
                })
                .collect(),
        }
    }
}

/// Nearest-rank latency percentiles over one population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Median latency in ticks.
    pub p50: u64,
    /// 95th percentile in ticks.
    pub p95: u64,
    /// 99th percentile in ticks.
    pub p99: u64,
    /// Worst latency in ticks.
    pub max: u64,
}

impl LatencyStats {
    fn from_population(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        // Nearest-rank: smallest value with at least p% of the
        // population at or below it.
        let pct = |p: f64| -> u64 {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        LatencyStats {
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }

    fn to_json(self) -> Json {
        let mut obj = Json::object();
        obj.set("p50", Json::from(self.p50))
            .set("p95", Json::from(self.p95))
            .set("p99", Json::from(self.p99))
            .set("max", Json::from(self.max));
        obj
    }
}

/// How much work one fleet member carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelUsage {
    /// Batches dispatched to the member.
    pub batches: u64,
    /// Requests executed by the member (sum of its batch sizes).
    pub items: u64,
    /// Completed responses attributed to the member (includes cache
    /// hits on entries it originally computed).
    pub completed: u64,
}

/// Frozen metrics for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Completed responses per tier `[low, medium, high]`.
    pub completed: [u64; 3],
    /// Of the completed responses, how many were served from the
    /// verified-result cache, per tier.
    pub cached: [u64; 3],
    /// Queue-full rejections per tier.
    pub shed_queue_full: [u64; 3],
    /// Displacement evictions per tier.
    pub shed_displaced: [u64; 3],
    /// Degraded-mode sheds per tier.
    pub shed_degraded: [u64; 3],
    /// Deadline misses per tier.
    pub timeout: [u64; 3],
    /// Safe-stop refusals per tier.
    pub safe_stop: [u64; 3],
    /// Median completed latency in ticks (fleet-wide).
    pub latency_p50: u64,
    /// 95th-percentile completed latency in ticks (fleet-wide).
    pub latency_p95: u64,
    /// 99th-percentile completed latency in ticks (fleet-wide).
    pub latency_p99: u64,
    /// Worst completed latency in ticks (fleet-wide).
    pub latency_max: u64,
    /// Completed-latency percentiles per tier `[low, medium, high]` —
    /// the numbers a starvation or deadline argument is made from.
    pub tier_latency: [LatencyStats; 3],
    /// Dispatched batch-size distribution (size → count).
    pub batch_sizes: BTreeMap<usize, u64>,
    /// Deepest submission queue observed.
    pub peak_queue_depth: usize,
    /// Result-cache lookups (admitted requests while the cache was on).
    pub cache_lookups: u64,
    /// Result-cache hits (every one has a `cache_hit` evidence record).
    pub cache_hits: u64,
    /// Per-member usage, indexed by [`ModelId`].
    pub models: Vec<ModelUsage>,
}

impl MetricsSnapshot {
    /// Total responses of any kind.
    pub fn total(&self) -> u64 {
        [
            &self.completed,
            &self.shed_queue_full,
            &self.shed_displaced,
            &self.shed_degraded,
            &self.timeout,
            &self.safe_stop,
        ]
        .iter()
        .map(|a| a.iter().sum::<u64>())
        .sum()
    }

    /// Completed responses across tiers.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }

    /// Cache-served completions across tiers.
    pub fn total_cached(&self) -> u64 {
        self.cached.iter().sum()
    }

    /// Shed responses across tiers and reasons.
    pub fn total_shed(&self) -> u64 {
        self.shed_queue_full.iter().sum::<u64>()
            + self.shed_displaced.iter().sum::<u64>()
            + self.shed_degraded.iter().sum::<u64>()
    }

    /// Cache hit rate over lookups (`0.0` when the cache never ran).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Serialises to deterministic JSON.
    pub fn to_json(&self) -> Json {
        let per_tier = |counts: &[u64; 3]| {
            let mut obj = Json::object();
            for tier in Tier::all() {
                obj.set(tier.tag(), Json::from(counts[tier.index()]));
            }
            obj
        };
        let mut batches = Json::object();
        for (&size, &count) in &self.batch_sizes {
            batches.set(format!("{size}"), Json::from(count));
        }
        let mut tier_latency = Json::object();
        for tier in Tier::all() {
            tier_latency.set(tier.tag(), self.tier_latency[tier.index()].to_json());
        }
        let mut cache = Json::object();
        cache
            .set("lookups", Json::from(self.cache_lookups))
            .set("hits", Json::from(self.cache_hits));
        let mut models = Json::object();
        for (i, usage) in self.models.iter().enumerate() {
            let mut m = Json::object();
            m.set("batches", Json::from(usage.batches))
                .set("items", Json::from(usage.items))
                .set("completed", Json::from(usage.completed));
            models.set(ModelId::new(i as u16).to_string(), m);
        }
        let mut root = Json::object();
        root.set("completed", per_tier(&self.completed))
            .set("cached", per_tier(&self.cached))
            .set("shed_queue_full", per_tier(&self.shed_queue_full))
            .set("shed_displaced", per_tier(&self.shed_displaced))
            .set("shed_degraded", per_tier(&self.shed_degraded))
            .set("timeout", per_tier(&self.timeout))
            .set("safe_stop", per_tier(&self.safe_stop))
            .set("latency_p50", Json::from(self.latency_p50))
            .set("latency_p95", Json::from(self.latency_p95))
            .set("latency_p99", Json::from(self.latency_p99))
            .set("latency_max", Json::from(self.latency_max))
            .set("tier_latency", tier_latency)
            .set("batch_sizes", batches)
            .set("peak_queue_depth", Json::from(self.peak_queue_depth))
            .set("cache", cache)
            .set("models", models);
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_core::health::HealthState;

    fn completed(id: u64, arrived: u64, resolved: u64) -> Response {
        Response {
            id,
            tier: Tier::Medium,
            arrived_at: arrived,
            resolved_at: resolved,
            outcome: Outcome::Completed {
                class: 0,
                confidence: 1.0,
                flagged: false,
                level: HealthState::Nominal,
                model: ModelId::new(0),
                cached: false,
            },
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut m = Metrics::new(1);
        for lat in 1..=100u64 {
            m.record_response(&completed(lat, 0, lat));
        }
        let s = m.snapshot();
        assert_eq!(s.latency_p50, 50);
        assert_eq!(s.latency_p95, 95);
        assert_eq!(s.latency_p99, 99);
        assert_eq!(s.latency_max, 100);
        assert_eq!(s.total_completed(), 100);
        // All responses were Medium tier, so the Medium population is
        // the full population and the other tiers are empty.
        assert_eq!(s.tier_latency[Tier::Medium.index()].p99, 99);
        assert_eq!(s.tier_latency[Tier::Low.index()], LatencyStats::default());
        assert_eq!(s.models[0].completed, 100);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = Metrics::new(0).snapshot();
        assert_eq!(s.latency_p99, 0);
        assert_eq!(s.total(), 0);
        assert_eq!(s.total_shed(), 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert!(s.models.is_empty());
    }

    #[test]
    fn sheds_count_by_reason_and_tier() {
        let mut m = Metrics::new(1);
        m.record_response(&Response {
            id: 0,
            tier: Tier::Low,
            arrived_at: 0,
            resolved_at: 0,
            outcome: Outcome::Shed(ShedReason::QueueFull),
        });
        m.record_response(&Response {
            id: 1,
            tier: Tier::High,
            arrived_at: 0,
            resolved_at: 5,
            outcome: Outcome::Timeout,
        });
        m.record_response(&Response {
            id: 2,
            tier: Tier::Low,
            arrived_at: 0,
            resolved_at: 1,
            outcome: Outcome::Shed(ShedReason::DegradedTier {
                model: ModelId::new(0),
            }),
        });
        let s = m.snapshot();
        assert_eq!(s.shed_queue_full[Tier::Low.index()], 1);
        assert_eq!(s.shed_degraded[Tier::Low.index()], 1);
        assert_eq!(s.timeout[Tier::High.index()], 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn cache_and_model_accounting() {
        let mut m = Metrics::new(2);
        m.record_batch(ModelId::new(1), 3);
        m.record_cache_lookup();
        m.record_cache_lookup();
        m.record_cache_hit();
        let mut hit = completed(0, 10, 10);
        if let Outcome::Completed { cached, model, .. } = &mut hit.outcome {
            *cached = true;
            *model = ModelId::new(1);
        }
        m.record_response(&hit);
        let s = m.snapshot();
        assert_eq!((s.cache_lookups, s.cache_hits), (2, 1));
        assert_eq!(s.cache_hit_rate(), 0.5);
        assert_eq!(s.total_cached(), 1);
        assert_eq!(
            s.models[1],
            ModelUsage {
                batches: 1,
                items: 3,
                completed: 1
            }
        );
        assert_eq!(s.models[0], ModelUsage::default());
    }

    #[test]
    fn json_is_deterministic() {
        let mut m = Metrics::new(1);
        m.record_batch(ModelId::new(0), 4);
        m.record_batch(ModelId::new(0), 4);
        m.record_batch(ModelId::new(0), 1);
        m.record_peak_queue(7);
        m.record_response(&completed(0, 10, 25));
        let a = m.snapshot().to_json().to_string_compact();
        let b = m.snapshot().to_json().to_string_compact();
        assert_eq!(a, b);
        assert!(a.contains("\"batch_sizes\":{\"1\":1,\"4\":2}"));
        assert!(a.contains("\"peak_queue_depth\":7"));
        assert!(a.contains("\"latency_p50\":15"));
        assert!(a.contains("\"cache\":{\"hits\":0,\"lookups\":0}"));
        assert!(a.contains("\"m0\":{\"batches\":3,\"completed\":1,\"items\":9}"));
    }
}
