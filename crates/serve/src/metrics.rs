//! Serving metrics: latency percentiles, shedding accounting, batch
//! shapes.
//!
//! Metrics use exact nearest-rank percentiles over the full latency
//! population (not streaming sketches): serving runs are bounded traces,
//! so exactness is affordable, and the snapshot being a pure function of
//! the run is what keeps reports byte-reproducible.

use std::collections::BTreeMap;

use safex_trace::json::Json;

use crate::request::{Outcome, Response, ShedReason, Tier};

/// Aggregated counters for one serving run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    latencies: Vec<u64>,
    batch_sizes: BTreeMap<usize, u64>,
    completed: [u64; 3],
    shed_queue_full: [u64; 3],
    shed_displaced: [u64; 3],
    shed_degraded: [u64; 3],
    timeout: [u64; 3],
    safe_stop: [u64; 3],
    peak_queue_depth: usize,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Absorbs one terminal response.
    pub fn record_response(&mut self, response: &Response) {
        let t = response.tier.index();
        match &response.outcome {
            Outcome::Completed { .. } => {
                self.completed[t] += 1;
                self.latencies
                    .push(response.resolved_at - response.arrived_at);
            }
            Outcome::Shed(ShedReason::QueueFull) => self.shed_queue_full[t] += 1,
            Outcome::Shed(ShedReason::Displaced { .. }) => self.shed_displaced[t] += 1,
            Outcome::Shed(ShedReason::DegradedTier) => self.shed_degraded[t] += 1,
            Outcome::Timeout => self.timeout[t] += 1,
            Outcome::SafeStop => self.safe_stop[t] += 1,
        }
    }

    /// Records one dispatched batch's size.
    pub fn record_batch(&mut self, size: usize) {
        *self.batch_sizes.entry(size).or_insert(0) += 1;
    }

    /// Records the deepest queue observed.
    pub fn record_peak_queue(&mut self, depth: usize) {
        self.peak_queue_depth = self.peak_queue_depth.max(depth);
    }

    /// Freezes the counters into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            // Nearest-rank: smallest value with at least p% of the
            // population at or below it.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        MetricsSnapshot {
            completed: self.completed,
            shed_queue_full: self.shed_queue_full,
            shed_displaced: self.shed_displaced,
            shed_degraded: self.shed_degraded,
            timeout: self.timeout,
            safe_stop: self.safe_stop,
            latency_p50: pct(50.0),
            latency_p95: pct(95.0),
            latency_p99: pct(99.0),
            latency_max: sorted.last().copied().unwrap_or(0),
            batch_sizes: self.batch_sizes.clone(),
            peak_queue_depth: self.peak_queue_depth,
        }
    }
}

/// Frozen metrics for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Completed responses per tier `[low, medium, high]`.
    pub completed: [u64; 3],
    /// Queue-full rejections per tier.
    pub shed_queue_full: [u64; 3],
    /// Displacement evictions per tier.
    pub shed_displaced: [u64; 3],
    /// Degraded-mode sheds per tier.
    pub shed_degraded: [u64; 3],
    /// Deadline misses per tier.
    pub timeout: [u64; 3],
    /// Safe-stop refusals per tier.
    pub safe_stop: [u64; 3],
    /// Median completed latency in ticks.
    pub latency_p50: u64,
    /// 95th-percentile completed latency in ticks.
    pub latency_p95: u64,
    /// 99th-percentile completed latency in ticks.
    pub latency_p99: u64,
    /// Worst completed latency in ticks.
    pub latency_max: u64,
    /// Dispatched batch-size distribution (size → count).
    pub batch_sizes: BTreeMap<usize, u64>,
    /// Deepest submission queue observed.
    pub peak_queue_depth: usize,
}

impl MetricsSnapshot {
    /// Total responses of any kind.
    pub fn total(&self) -> u64 {
        [
            &self.completed,
            &self.shed_queue_full,
            &self.shed_displaced,
            &self.shed_degraded,
            &self.timeout,
            &self.safe_stop,
        ]
        .iter()
        .map(|a| a.iter().sum::<u64>())
        .sum()
    }

    /// Completed responses across tiers.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }

    /// Shed responses across tiers and reasons.
    pub fn total_shed(&self) -> u64 {
        self.shed_queue_full.iter().sum::<u64>()
            + self.shed_displaced.iter().sum::<u64>()
            + self.shed_degraded.iter().sum::<u64>()
    }

    /// Serialises to deterministic JSON.
    pub fn to_json(&self) -> Json {
        let per_tier = |counts: &[u64; 3]| {
            let mut obj = Json::object();
            for tier in Tier::all() {
                obj.set(tier.tag(), Json::from(counts[tier.index()]));
            }
            obj
        };
        let mut batches = Json::object();
        for (&size, &count) in &self.batch_sizes {
            batches.set(format!("{size}"), Json::from(count));
        }
        let mut root = Json::object();
        root.set("completed", per_tier(&self.completed))
            .set("shed_queue_full", per_tier(&self.shed_queue_full))
            .set("shed_displaced", per_tier(&self.shed_displaced))
            .set("shed_degraded", per_tier(&self.shed_degraded))
            .set("timeout", per_tier(&self.timeout))
            .set("safe_stop", per_tier(&self.safe_stop))
            .set("latency_p50", Json::from(self.latency_p50))
            .set("latency_p95", Json::from(self.latency_p95))
            .set("latency_p99", Json::from(self.latency_p99))
            .set("latency_max", Json::from(self.latency_max))
            .set("batch_sizes", batches)
            .set("peak_queue_depth", Json::from(self.peak_queue_depth));
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_core::health::HealthState;

    fn completed(id: u64, arrived: u64, resolved: u64) -> Response {
        Response {
            id,
            tier: Tier::Medium,
            arrived_at: arrived,
            resolved_at: resolved,
            outcome: Outcome::Completed {
                class: 0,
                confidence: 1.0,
                flagged: false,
                level: HealthState::Nominal,
            },
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut m = Metrics::new();
        for lat in 1..=100u64 {
            m.record_response(&completed(lat, 0, lat));
        }
        let s = m.snapshot();
        assert_eq!(s.latency_p50, 50);
        assert_eq!(s.latency_p95, 95);
        assert_eq!(s.latency_p99, 99);
        assert_eq!(s.latency_max, 100);
        assert_eq!(s.total_completed(), 100);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.latency_p99, 0);
        assert_eq!(s.total(), 0);
        assert_eq!(s.total_shed(), 0);
    }

    #[test]
    fn sheds_count_by_reason_and_tier() {
        let mut m = Metrics::new();
        m.record_response(&Response {
            id: 0,
            tier: Tier::Low,
            arrived_at: 0,
            resolved_at: 0,
            outcome: Outcome::Shed(ShedReason::QueueFull),
        });
        m.record_response(&Response {
            id: 1,
            tier: Tier::High,
            arrived_at: 0,
            resolved_at: 5,
            outcome: Outcome::Timeout,
        });
        let s = m.snapshot();
        assert_eq!(s.shed_queue_full[Tier::Low.index()], 1);
        assert_eq!(s.timeout[Tier::High.index()], 1);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn json_is_deterministic() {
        let mut m = Metrics::new();
        m.record_batch(4);
        m.record_batch(4);
        m.record_batch(1);
        m.record_peak_queue(7);
        m.record_response(&completed(0, 10, 25));
        let a = m.snapshot().to_json().to_string_compact();
        let b = m.snapshot().to_json().to_string_compact();
        assert_eq!(a, b);
        assert!(a.contains("\"batch_sizes\":{\"1\":1,\"4\":2}"));
        assert!(a.contains("\"peak_queue_depth\":7"));
        assert!(a.contains("\"latency_p50\":15"));
    }
}
