//! Routing: which fleet member serves which request.
//!
//! The server filters candidates *before* the policy runs: a
//! [`RouteView`] only ever contains members whose health ladder admits
//! the request's tier, that honour the request's pin, and that still
//! have batch capacity in the current dispatch round. The policy's only
//! job is to pick among the survivors — which keeps every policy safe by
//! construction (a policy cannot route onto a stopped model) and keeps
//! the safety argument in one place (the server's gate).
//!
//! ## Determinism
//!
//! Policies are **pure in the decision index**: the only mutable input a
//! policy sees is the monotone `decision` counter the server threads
//! through the view, plus member state that is itself a pure function of
//! the replayed trace. No wall clock, no RNG, no worker-count-dependent
//! state — so the routing sequence, and therefore the whole
//! [`crate::server::ServeReport`], is byte-identical for any pool worker
//! count and across reruns.

use safex_core::health::HealthState;

use crate::request::{ModelId, Request, Tier};

/// One candidate member, as visible to a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateView {
    /// The member's id.
    pub id: ModelId,
    /// The member's current health state (never `SafeStop`: stopped
    /// members are filtered out before the policy runs).
    pub state: HealthState,
    /// Tick at which the member frees, including batches already
    /// assigned earlier in this dispatch round — the least-loaded signal.
    pub free_at: u64,
    /// Items already assigned to the member in this dispatch round.
    pub assigned: usize,
}

/// Everything one routing decision may depend on.
#[derive(Debug, Clone, Copy)]
pub struct RouteView<'a> {
    /// The request being routed.
    pub request: &'a Request,
    /// Monotone routing-decision index (fleet-global, starts at 0).
    pub decision: u64,
    /// The current tick.
    pub now: u64,
    /// Eligible members (non-empty; health-, pin-, and capacity-filtered).
    pub candidates: &'a [CandidateView],
}

/// A deterministic routing policy.
///
/// Implementations must be pure functions of the [`RouteView`] — see the
/// module docs for why. Returning an id that is not among
/// `view.candidates` is a policy bug; the server falls back to the first
/// candidate rather than violating the health gate.
pub trait RoutingPolicy {
    /// Stable name for reports and bench labels.
    fn name(&self) -> &'static str;

    /// Picks one of `view.candidates` (guaranteed non-empty).
    fn route(&self, view: &RouteView<'_>) -> ModelId;
}

pub(crate) fn severity(state: HealthState) -> u8 {
    match state {
        HealthState::Nominal => 0,
        HealthState::Degraded => 1,
        HealthState::SafeStop => 2,
    }
}

/// The default policy: healthiest member first, then least-loaded, then
/// lowest id.
///
/// High-criticality work additionally refuses to share a degraded member
/// while a nominal one exists (the severity key handles that), and the
/// `free_at`/`assigned` keys spread a burst across the fleet instead of
/// convoying it onto one member.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierLeastLoaded;

impl RoutingPolicy for TierLeastLoaded {
    fn name(&self) -> &'static str {
        "tier_least_loaded"
    }

    fn route(&self, view: &RouteView<'_>) -> ModelId {
        view.candidates
            .iter()
            .min_by_key(|c| (severity(c.state), c.free_at, c.assigned, c.id))
            .map(|c| c.id)
            .expect("route called with empty candidate set")
    }
}

/// Round-robin over the eligible candidates, keyed by the decision
/// index: decision `d` takes candidate `d % candidates.len()`.
///
/// Ignores load, so it is mainly a determinism foil for
/// [`TierLeastLoaded`] in the golden-report matrix — but high tiers
/// still never land on a stopped or floor-refusing member, because the
/// server filters candidates first.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn route(&self, view: &RouteView<'_>) -> ModelId {
        view.candidates[(view.decision % view.candidates.len() as u64) as usize].id
    }
}

/// Built-in policy selector for [`crate::config::ServerConfig`] (config
/// stays `Clone + PartialEq`; custom trait objects go through
/// [`crate::server::Server::with_router`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum RoutingKind {
    /// [`TierLeastLoaded`].
    #[default]
    TierLeastLoaded,
    /// [`RoundRobin`].
    RoundRobin,
}

impl RoutingKind {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            RoutingKind::TierLeastLoaded => "tier_least_loaded",
            RoutingKind::RoundRobin => "round_robin",
        }
    }

    /// Instantiates the built-in policy.
    pub(crate) fn policy(&self) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingKind::TierLeastLoaded => Box::new(TierLeastLoaded),
            RoutingKind::RoundRobin => Box::new(RoundRobin),
        }
    }
}

/// `true` when `state` admits `tier` under the degraded shedding floor.
pub(crate) fn admits(state: HealthState, tier: Tier, floor: Tier) -> bool {
    match state {
        HealthState::Nominal => true,
        HealthState::Degraded => tier >= floor,
        HealthState::SafeStop => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Request {
        Request::new(0, vec![0.0], Tier::Medium, 100)
    }

    fn candidate(id: u16, state: HealthState, free_at: u64) -> CandidateView {
        CandidateView {
            id: ModelId::new(id),
            state,
            free_at,
            assigned: 0,
        }
    }

    #[test]
    fn least_loaded_prefers_health_then_load_then_id() {
        let request = request();
        let candidates = [
            candidate(0, HealthState::Degraded, 0),
            candidate(1, HealthState::Nominal, 50),
            candidate(2, HealthState::Nominal, 10),
        ];
        let view = RouteView {
            request: &request,
            decision: 0,
            now: 0,
            candidates: &candidates,
        };
        // A nominal member beats an idle degraded one; among nominal
        // members the earliest-free wins.
        assert_eq!(TierLeastLoaded.route(&view), ModelId::new(2));
        // Ties break by id.
        let tied = [
            candidate(1, HealthState::Nominal, 10),
            candidate(0, HealthState::Nominal, 10),
        ];
        let view = RouteView {
            request: &request,
            decision: 9,
            now: 0,
            candidates: &tied,
        };
        assert_eq!(TierLeastLoaded.route(&view), ModelId::new(0));
    }

    #[test]
    fn round_robin_is_pure_in_the_decision_index() {
        let request = request();
        let candidates = [
            candidate(0, HealthState::Nominal, 0),
            candidate(1, HealthState::Nominal, 0),
            candidate(2, HealthState::Nominal, 0),
        ];
        let ids: Vec<ModelId> = (0..6)
            .map(|decision| {
                RoundRobin.route(&RouteView {
                    request: &request,
                    decision,
                    now: 0,
                    candidates: &candidates,
                })
            })
            .collect();
        assert_eq!(ids, [0u16, 1, 2, 0, 1, 2].map(ModelId::new).to_vec());
    }

    #[test]
    fn admission_matrix() {
        use HealthState::*;
        // Nominal admits everything; Degraded only at/above the floor;
        // SafeStop nothing.
        for tier in Tier::iter() {
            assert!(admits(Nominal, tier, Tier::Medium));
            assert!(!admits(SafeStop, tier, Tier::Low));
        }
        assert!(!admits(Degraded, Tier::Low, Tier::Medium));
        assert!(admits(Degraded, Tier::Medium, Tier::Medium));
        assert!(admits(Degraded, Tier::High, Tier::Medium));
    }

    #[test]
    fn kind_tags_and_default() {
        assert_eq!(RoutingKind::default(), RoutingKind::TierLeastLoaded);
        assert_eq!(RoutingKind::TierLeastLoaded.tag(), "tier_least_loaded");
        assert_eq!(RoutingKind::RoundRobin.tag(), "round_robin");
        assert_eq!(
            RoutingKind::TierLeastLoaded.policy().name(),
            "tier_least_loaded"
        );
        assert_eq!(RoutingKind::RoundRobin.policy().name(), "round_robin");
    }
}
