//! Recorded arrival traces and deterministic traffic synthesis.
//!
//! The server never reads a wall clock: it replays an [`ArrivalTrace`]
//! under a simulated tick clock, so batch formation — and therefore every
//! response — is a pure function of `(trace, config, model)`. Replaying
//! the same trace reproduces the full report byte for byte, which is what
//! turns a load test into certification evidence.

use safex_tensor::DetRng;

use crate::error::ServeError;
use crate::request::{Request, Tier};

/// One timestamped arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival tick (non-decreasing along the trace).
    pub at: u64,
    /// The request that arrived.
    pub request: Request,
}

/// A recorded request stream: the replayable unit of serving load.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// Builds a trace from explicit arrivals.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadTrace`] when arrival times decrease, an
    /// id differs from its position, or a deadline precedes its arrival.
    pub fn from_arrivals(arrivals: Vec<Arrival>) -> Result<Self, ServeError> {
        let mut last = 0u64;
        for (i, a) in arrivals.iter().enumerate() {
            if a.at < last {
                return Err(ServeError::BadTrace(format!(
                    "arrival {i} at tick {} after tick {last}",
                    a.at
                )));
            }
            if a.request.id != i as u64 {
                return Err(ServeError::BadTrace(format!(
                    "arrival {i} carries id {} (ids must equal position)",
                    a.request.id
                )));
            }
            if a.request.deadline <= a.at {
                return Err(ServeError::BadTrace(format!(
                    "request {i} deadline {} not after arrival {}",
                    a.request.deadline, a.at
                )));
            }
            last = a.at;
        }
        Ok(ArrivalTrace { arrivals })
    }

    /// The arrivals, in time order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Parameters for synthetic Poisson-like traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Seed for the inter-arrival and tier streams.
    pub seed: u64,
    /// Number of requests to synthesise.
    pub requests: usize,
    /// Mean inter-arrival gap in ticks (exponential, rounded, min 1).
    pub mean_interarrival: f64,
    /// Relative deadline in ticks (absolute deadline = arrival + this).
    pub deadline: u64,
    /// Relative weights for drawing `[Low, Medium, High]` tiers.
    pub tier_weights: [u32; 3],
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x5EEB,
            requests: 256,
            mean_interarrival: 8.0,
            deadline: 200,
            tier_weights: [2, 1, 1],
        }
    }
}

impl TrafficConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero requests, a
    /// non-positive mean gap, a zero deadline, or all-zero tier weights.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |msg: String| Err(ServeError::BadConfig(msg));
        if self.requests == 0 {
            return bad("traffic needs at least one request".into());
        }
        if !self.mean_interarrival.is_finite() || self.mean_interarrival <= 0.0 {
            return bad(format!(
                "mean inter-arrival must be positive, got {}",
                self.mean_interarrival
            ));
        }
        if self.deadline == 0 {
            return bad("relative deadline must be at least one tick".into());
        }
        if self.tier_weights.iter().all(|&w| w == 0) {
            return bad("tier weights must not all be zero".into());
        }
        Ok(())
    }

    /// Synthesises a trace, cycling `inputs` by request index.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an invalid config or empty
    /// inputs.
    pub fn synthesize(&self, inputs: &[Vec<f32>]) -> Result<ArrivalTrace, ServeError> {
        self.validate()?;
        if inputs.is_empty() {
            return Err(ServeError::BadConfig(
                "traffic needs inputs to cycle".into(),
            ));
        }
        let mut rng = DetRng::new(self.seed);
        let rate = 1.0 / self.mean_interarrival;
        let total: u64 = self.tier_weights.iter().map(|&w| u64::from(w)).sum();
        let mut at = 0u64;
        let arrivals = (0..self.requests)
            .map(|i| {
                let gap = rng.exponential(rate).round().max(1.0) as u64;
                at += gap;
                let draw = rng.below_usize(total as usize) as u64;
                let tier = if draw < u64::from(self.tier_weights[0]) {
                    Tier::Low
                } else if draw < u64::from(self.tier_weights[0] + self.tier_weights[1]) {
                    Tier::Medium
                } else {
                    Tier::High
                };
                Arrival {
                    at,
                    request: Request::new(
                        i as u64,
                        inputs[i % inputs.len()].clone(),
                        tier,
                        at + self.deadline,
                    ),
                }
            })
            .collect();
        ArrivalTrace::from_arrivals(arrivals)
    }
}

/// A deterministic shape for replaying a recorded payload sequence —
/// e.g. the observation stream of a falsifier counterexample episode —
/// as serving load.
///
/// Unlike [`TrafficConfig`], nothing is drawn from an RNG and inputs are
/// not cycled: request `i` carries payload `i` exactly, so a temporal
/// workload's frame order survives the trip through the server. The
/// shape only decides *pacing*: requests arrive in bursts of `burst`
/// sharing one tick, consecutive bursts `gap` ticks apart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficShape {
    /// Tick of the first burst (the trace's earliest arrival).
    pub start: u64,
    /// Requests per burst; a whole burst shares one arrival tick.
    pub burst: usize,
    /// Gap in ticks between consecutive bursts.
    pub gap: u64,
    /// Tier every shaped request carries.
    pub tier: Tier,
    /// Relative deadline in ticks (absolute deadline = arrival + this).
    pub deadline: u64,
}

impl Default for TrafficShape {
    fn default() -> Self {
        TrafficShape {
            start: 1,
            burst: 1,
            gap: 4,
            tier: Tier::High,
            deadline: 200,
        }
    }
}

impl TrafficShape {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero burst, gap, or
    /// deadline.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |msg: &str| Err(ServeError::BadConfig(msg.into()));
        if self.burst == 0 {
            return bad("burst must contain at least one request");
        }
        if self.gap == 0 {
            return bad("burst gap must be at least one tick");
        }
        if self.deadline == 0 {
            return bad("relative deadline must be at least one tick");
        }
        Ok(())
    }

    /// Shapes the payload sequence into a trace: one request per input,
    /// in order, paced by the burst structure. A pure function of
    /// `(shape, inputs)` — replaying the same pair reproduces the trace
    /// byte for byte.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for invalid parameters or an
    /// empty payload sequence.
    pub fn shape(&self, inputs: &[Vec<f32>]) -> Result<ArrivalTrace, ServeError> {
        self.validate()?;
        if inputs.is_empty() {
            return Err(ServeError::BadConfig(
                "a traffic shape needs payloads to carry".into(),
            ));
        }
        let arrivals = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let at = self.start + (i / self.burst) as u64 * self.gap;
                Arrival {
                    at,
                    request: Request::new(i as u64, input.clone(), self.tier, at + self.deadline),
                }
            })
            .collect();
        ArrivalTrace::from_arrivals(arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> Vec<Vec<f32>> {
        vec![vec![0.1, 0.2], vec![0.3, 0.4]]
    }

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = TrafficConfig::default();
        let a = cfg.synthesize(&inputs()).unwrap();
        let b = cfg.synthesize(&inputs()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.requests);
        let other = TrafficConfig { seed: 1, ..cfg }
            .synthesize(&inputs())
            .unwrap();
        assert_ne!(a, other, "a different seed must change the trace");
    }

    #[test]
    fn synthesis_draws_every_tier() {
        let trace = TrafficConfig::default().synthesize(&inputs()).unwrap();
        for tier in Tier::all() {
            assert!(
                trace.arrivals().iter().any(|a| a.request.tier == tier),
                "default weights should draw {tier}"
            );
        }
    }

    #[test]
    fn bad_traces_are_rejected() {
        let mk = |id, at, deadline| Arrival {
            at,
            request: Request::new(id, vec![0.0], Tier::Low, deadline),
        };
        // Decreasing time.
        assert!(ArrivalTrace::from_arrivals(vec![mk(0, 5, 10), mk(1, 3, 10)]).is_err());
        // Wrong id.
        assert!(ArrivalTrace::from_arrivals(vec![mk(1, 1, 10)]).is_err());
        // Deadline at/before arrival.
        assert!(ArrivalTrace::from_arrivals(vec![mk(0, 5, 5)]).is_err());
        // Valid.
        assert!(ArrivalTrace::from_arrivals(vec![mk(0, 1, 10), mk(1, 1, 12)]).is_ok());
    }

    #[test]
    fn shaping_preserves_payload_order_and_paces_in_bursts() {
        let payloads: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32]).collect();
        let shape = TrafficShape {
            start: 10,
            burst: 2,
            gap: 7,
            ..TrafficShape::default()
        };
        let trace = shape.shape(&payloads).unwrap();
        assert_eq!(trace.len(), 5);
        for (i, a) in trace.arrivals().iter().enumerate() {
            assert_eq!(a.request.input, payloads[i], "payload {i} not cycled");
            assert_eq!(a.at, 10 + (i as u64 / 2) * 7);
            assert_eq!(a.request.deadline, a.at + shape.deadline);
            assert_eq!(a.request.tier, shape.tier);
        }
        assert_eq!(shape.shape(&payloads).unwrap(), trace, "pure function");
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let base = TrafficShape::default();
        for bad in [
            TrafficShape { burst: 0, ..base },
            TrafficShape { gap: 0, ..base },
            TrafficShape {
                deadline: 0,
                ..base
            },
        ] {
            assert!(bad.validate().is_err());
        }
        assert!(base.shape(&[]).is_err(), "empty payloads are rejected");
    }

    #[test]
    fn bad_configs_are_rejected() {
        for bad in [
            TrafficConfig {
                requests: 0,
                ..TrafficConfig::default()
            },
            TrafficConfig {
                mean_interarrival: 0.0,
                ..TrafficConfig::default()
            },
            TrafficConfig {
                deadline: 0,
                ..TrafficConfig::default()
            },
            TrafficConfig {
                tier_weights: [0, 0, 0],
                ..TrafficConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        assert!(TrafficConfig::default().synthesize(&Vec::new()).is_err());
    }
}
