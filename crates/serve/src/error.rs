//! Error type for the serving runtime.

use std::fmt;

use safex_core::CoreError;
use safex_nn::NnError;

/// Anything the serving runtime can fail with.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A configuration failed validation (message explains which knob).
    BadConfig(String),
    /// An arrival trace violated its invariants (ordering, ids).
    BadTrace(String),
    /// The inference backend failed (wrong input shape, pool error, ...).
    Nn(NnError),
    /// A pipeline-backed deployment failed below the serving layer.
    Core(CoreError),
    /// A snapshot failed to decode or did not match the restoring server.
    ///
    /// Restores fail closed: no partial state is ever applied.
    BadSnapshot(String),
    /// A fleet was constructed with two members claiming the same identity.
    DuplicateMember(String),
    /// A hot model swap could not be prepared or verified.
    SwapFailed(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadConfig(msg) => write!(f, "bad serving config: {msg}"),
            ServeError::BadTrace(msg) => write!(f, "bad arrival trace: {msg}"),
            ServeError::Nn(e) => write!(f, "backend failure: {e}"),
            ServeError::Core(e) => write!(f, "pipeline failure: {e}"),
            ServeError::BadSnapshot(msg) => write!(f, "bad snapshot: {msg}"),
            ServeError::DuplicateMember(name) => {
                write!(f, "duplicate fleet member: {name}")
            }
            ServeError::SwapFailed(msg) => write!(f, "hot swap failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Nn(e) => Some(e),
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}
