//! Bounded admission queue with criticality-aware displacement and
//! fairness-aware batch selection.
//!
//! Admission control is where a safety-oriented server differs most from
//! a throughput-oriented one: when the queue is full, something must
//! give, and *which* request gives must be a stated policy, not a race.
//! The displacement policy is strict criticality order — an arrival may
//! displace a queued request only if that request's tier is strictly
//! lower, and among displaceable requests the lowest tier, most recently
//! queued one is sacrificed.
//!
//! **Batch selection** is where strict tier order stops being enough.
//! Always serving the highest tier first lets a high-tier burst starve
//! best-effort work forever; always serving FIFO lets a low-tier flood
//! push high-tier latency past its deadline. [`FairnessPolicy`] bounds
//! both failure modes:
//!
//! * **Reserved slots** guarantee each tier a slice of every formed
//!   batch (when work of that tier is queued), so a flood of one tier
//!   cannot monopolise dispatch.
//! * **Aging** promotes a waiting entry one effective tier every
//!   `age_step` ticks, so even with zero reserved slots a queued
//!   request's priority eventually rises to the point where it must be
//!   selected — starvation is bounded, not just unlikely.
//!
//! Both mechanisms are pure functions of queue contents and the
//! simulated clock, so selection — like everything else in the server —
//! replays byte-for-byte.

use std::cmp::Reverse;

use crate::request::{Request, Tier};

/// A queued request plus its admission tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Pending {
    /// The request.
    pub request: Request,
    /// Tick at which it was admitted.
    pub queued_at: u64,
}

/// What happened when an arrival hit the queue.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Queued; capacity remained.
    Accepted,
    /// Queued; the returned lower-tier entry was evicted to make room.
    Displaced(Pending),
    /// Refused; every queued entry has equal or higher criticality.
    Rejected,
}

/// Anti-starvation knobs for batch selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct FairnessPolicy {
    /// Ticks of queue wait that promote an entry one effective tier
    /// (`0` disables aging). With aging enabled, a Low entry that has
    /// waited `2 * age_step` ticks competes as High — FIFO order breaks
    /// the tie among equals, so old work eventually wins.
    pub age_step: u64,
    /// Guaranteed batch slots per tier `[low, medium, high]`: each
    /// formed batch first reserves up to this many slots for queued work
    /// of that tier (highest tier first when slots run short), then
    /// fills the rest by aged priority.
    pub reserved: [usize; 3],
}

impl Default for FairnessPolicy {
    fn default() -> Self {
        FairnessPolicy {
            age_step: 64,
            reserved: [1, 1, 2],
        }
    }
}

impl FairnessPolicy {
    /// Strict priority order, no aging, no reserved slots — the
    /// pre-fleet behaviour, kept for comparison runs.
    pub fn strict() -> Self {
        FairnessPolicy {
            age_step: 0,
            reserved: [0, 0, 0],
        }
    }

    /// The tier an entry competes at after waiting `waited` ticks.
    fn effective_level(&self, tier: Tier, waited: u64) -> u64 {
        let base = tier.index() as u64;
        match waited.checked_div(self.age_step) {
            Some(promoted) => base.saturating_add(promoted),
            None => base,
        }
    }
}

/// FIFO queue bounded at `cap`, with tier-ordered displacement.
///
/// Entries are kept in admission order — equivalently, sorted by
/// `(queued_at, id)`, since arrivals are time-ordered — and every
/// operation preserves that invariant, which is what makes "oldest" and
/// "most recently queued" well-defined policies rather than accidents
/// of container layout.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    items: Vec<Pending>,
    cap: usize,
    peak: usize,
}

impl AdmissionQueue {
    /// Creates an empty queue bounded at `cap` entries (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        AdmissionQueue {
            items: Vec::with_capacity(cap),
            cap: cap.max(1),
            peak: 0,
        }
    }

    /// Rebuilds a queue from snapshotted parts, preserving admission
    /// order and the historical peak.
    pub(crate) fn from_parts(items: Vec<Pending>, cap: usize, peak: usize) -> Self {
        AdmissionQueue {
            items,
            cap: cap.max(1),
            peak,
        }
    }

    /// Configured capacity bound.
    pub(crate) fn cap(&self) -> usize {
        self.cap
    }

    /// Queued entries in admission order (front is oldest).
    pub fn items(&self) -> &[Pending] {
        &self.items
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Deepest the queue has ever been.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Offers `request` at tick `now`.
    pub fn offer(&mut self, request: Request, now: u64) -> Admission {
        if self.items.len() < self.cap {
            self.items.push(Pending {
                request,
                queued_at: now,
            });
            self.peak = self.peak.max(self.items.len());
            return Admission::Accepted;
        }
        // Full: find the lowest-tier, most-recently-queued victim that is
        // *strictly* below the incoming tier. Equal tiers never displace
        // each other — that would just trade one miss for another while
        // losing FIFO fairness.
        let victim = self
            .items
            .iter()
            .enumerate()
            .filter(|(_, p)| p.request.tier < request.tier)
            .min_by_key(|(i, p)| (p.request.tier, Reverse(*i)))
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let evicted = self.items.remove(i);
                self.items.push(Pending {
                    request,
                    queued_at: now,
                });
                Admission::Displaced(evicted)
            }
            None => Admission::Rejected,
        }
    }

    /// Removes and returns up to `n` entries from the front (admission
    /// order), ignoring fairness — the raw FIFO drain.
    pub fn take(&mut self, n: usize) -> Vec<Pending> {
        let n = n.min(self.items.len());
        self.items.drain(..n).collect()
    }

    /// Removes and returns up to `n` entries for a dispatch round at
    /// tick `now`, honouring `fairness` (reserved slots first, then aged
    /// priority). The returned entries are in admission order.
    pub fn select(&mut self, n: usize, now: u64, fairness: &FairnessPolicy) -> Vec<Pending> {
        let n = n.min(self.items.len());
        if n == 0 {
            return Vec::new();
        }
        let mut chosen = vec![false; self.items.len()];
        let mut slots = n;
        // Phase 1: reserved slots, highest tier first (when slots run
        // short the safety-relevant guarantee wins), oldest first within
        // a tier.
        for tier in Tier::all().into_iter().rev() {
            let mut quota = fairness.reserved[tier.index()].min(slots);
            for (i, p) in self.items.iter().enumerate() {
                if quota == 0 {
                    break;
                }
                if !chosen[i] && p.request.tier == tier {
                    chosen[i] = true;
                    quota -= 1;
                    slots -= 1;
                }
            }
        }
        // Phase 2: fill by aged priority; FIFO breaks ties.
        if slots > 0 {
            let mut rest: Vec<usize> = (0..self.items.len()).filter(|&i| !chosen[i]).collect();
            rest.sort_by_key(|&i| {
                let p = &self.items[i];
                let waited = now.saturating_sub(p.queued_at);
                (
                    Reverse(fairness.effective_level(p.request.tier, waited)),
                    p.queued_at,
                    p.request.id,
                )
            });
            for &i in rest.iter().take(slots) {
                chosen[i] = true;
            }
        }
        let mut selected = Vec::with_capacity(n);
        let mut kept = Vec::with_capacity(self.items.len() - n);
        for (i, p) in std::mem::take(&mut self.items).into_iter().enumerate() {
            if chosen[i] {
                selected.push(p);
            } else {
                kept.push(p);
            }
        }
        self.items = kept;
        selected
    }

    /// Returns entries a dispatch round could not place (every eligible
    /// member already at batch capacity) to the queue, restoring
    /// admission order. Their original `queued_at` is preserved, so
    /// aging keeps accruing.
    pub fn put_back(&mut self, pending: Vec<Pending>) {
        if pending.is_empty() {
            return;
        }
        self.items.extend(pending);
        self.items.sort_by_key(|p| (p.queued_at, p.request.id));
    }

    /// The lowest tier currently queued, if any.
    pub fn min_tier(&self) -> Option<Tier> {
        self.items.iter().map(|p| p.request.tier).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, tier: Tier) -> Request {
        Request::new(id, vec![0.0], tier, 1_000)
    }

    #[test]
    fn accepts_until_full_then_rejects_equal_tiers() {
        let mut q = AdmissionQueue::new(2);
        assert_eq!(q.offer(req(0, Tier::Low), 0), Admission::Accepted);
        assert_eq!(q.offer(req(1, Tier::Low), 1), Admission::Accepted);
        assert_eq!(q.offer(req(2, Tier::Low), 2), Admission::Rejected);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn displacement_evicts_lowest_tier_most_recent() {
        let mut q = AdmissionQueue::new(3);
        q.offer(req(0, Tier::Low), 0);
        q.offer(req(1, Tier::Medium), 1);
        q.offer(req(2, Tier::Low), 2);
        // High arrival: two Low entries are displaceable; the most
        // recently queued one (id 2) goes.
        match q.offer(req(3, Tier::High), 3) {
            Admission::Displaced(p) => assert_eq!(p.request.id, 2),
            other => panic!("expected displacement, got {other:?}"),
        }
        // Next High displaces the remaining Low, then the Medium.
        match q.offer(req(4, Tier::High), 4) {
            Admission::Displaced(p) => assert_eq!(p.request.id, 0),
            other => panic!("expected displacement, got {other:?}"),
        }
        match q.offer(req(5, Tier::High), 5) {
            Admission::Displaced(p) => assert_eq!(p.request.id, 1),
            other => panic!("expected displacement, got {other:?}"),
        }
        // All-High queue: nothing left to sacrifice.
        assert_eq!(q.offer(req(6, Tier::High), 6), Admission::Rejected);
        assert!(q.items().iter().all(|p| p.request.tier == Tier::High));
    }

    #[test]
    fn take_preserves_admission_order() {
        let mut q = AdmissionQueue::new(4);
        for i in 0..4 {
            q.offer(req(i, Tier::Medium), i);
        }
        let batch = q.take(3);
        assert_eq!(
            batch.iter().map(|p| p.request.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.min_tier(), Some(Tier::Medium));
    }

    #[test]
    fn strict_selection_is_priority_then_fifo() {
        let mut q = AdmissionQueue::new(8);
        q.offer(req(0, Tier::Low), 0);
        q.offer(req(1, Tier::High), 1);
        q.offer(req(2, Tier::Medium), 2);
        q.offer(req(3, Tier::High), 3);
        let batch = q.select(3, 10, &FairnessPolicy::strict());
        assert_eq!(
            batch.iter().map(|p| p.request.id).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "strict fairness picks by tier, FIFO within a tier"
        );
        assert_eq!(q.items()[0].request.id, 0);
    }

    #[test]
    fn reserved_slots_guarantee_low_tier_a_slice() {
        let mut q = AdmissionQueue::new(16);
        // Twelve High entries and one Low at the back.
        for i in 0..12 {
            q.offer(req(i, Tier::High), i);
        }
        q.offer(req(12, Tier::Low), 12);
        let fairness = FairnessPolicy {
            age_step: 0,
            reserved: [1, 0, 0],
        };
        let batch = q.select(4, 20, &fairness);
        assert!(
            batch.iter().any(|p| p.request.id == 12),
            "the reserved slot must carry the Low entry despite the High flood"
        );
        assert_eq!(batch.len(), 4);
        // The remaining slots went to the oldest High work.
        assert_eq!(
            batch.iter().map(|p| p.request.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 12]
        );
    }

    #[test]
    fn aging_promotes_waiting_low_tier_work() {
        let mut q = AdmissionQueue::new(8);
        q.offer(req(0, Tier::Low), 0);
        // Fresh High arrivals much later.
        q.offer(req(1, Tier::High), 200);
        q.offer(req(2, Tier::High), 200);
        let fairness = FairnessPolicy {
            age_step: 50,
            reserved: [0, 0, 0],
        };
        // At tick 200 the Low entry has waited 200 ticks = 4 promotions:
        // effective level 4 beats the fresh Highs' 2.
        let batch = q.select(1, 200, &fairness);
        assert_eq!(batch[0].request.id, 0, "aged Low must outrank fresh High");
        // Without aging the fresh High wins.
        let mut q = AdmissionQueue::new(8);
        q.offer(req(0, Tier::Low), 0);
        q.offer(req(1, Tier::High), 200);
        let batch = q.select(1, 200, &FairnessPolicy::strict());
        assert_eq!(batch[0].request.id, 1);
    }

    #[test]
    fn put_back_restores_admission_order() {
        let mut q = AdmissionQueue::new(8);
        for i in 0..4 {
            q.offer(req(i, Tier::Medium), i);
        }
        let mut batch = q.select(3, 10, &FairnessPolicy::default());
        assert_eq!(q.len(), 1);
        // Return two of the three; the queue must interleave them back
        // into (queued_at, id) order.
        batch.remove(0);
        q.put_back(batch);
        assert_eq!(
            q.items().iter().map(|p| p.request.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }
}
