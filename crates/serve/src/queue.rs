//! Bounded admission queue with criticality-aware displacement.
//!
//! Admission control is where a safety-oriented server differs most from
//! a throughput-oriented one: when the queue is full, something must
//! give, and *which* request gives must be a stated policy, not a race.
//! The policy here is strict criticality order — an arrival may displace
//! a queued request only if that request's tier is strictly lower, and
//! among displaceable requests the lowest tier, most recently queued one
//! is sacrificed (oldest low-tier work has waited longest and is closest
//! to its deadline; re-queuing it elsewhere is the operator's job, the
//! server just reports the typed eviction).

use crate::request::{Request, Tier};

/// A queued request plus its admission tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Pending {
    /// The request.
    pub request: Request,
    /// Tick at which it was admitted.
    pub queued_at: u64,
}

/// What happened when an arrival hit the queue.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Queued; capacity remained.
    Accepted,
    /// Queued; the returned lower-tier entry was evicted to make room.
    Displaced(Pending),
    /// Refused; every queued entry has equal or higher criticality.
    Rejected,
}

/// FIFO queue bounded at `cap`, with tier-ordered displacement.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    items: Vec<Pending>,
    cap: usize,
    peak: usize,
}

impl AdmissionQueue {
    /// Creates an empty queue bounded at `cap` entries (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        AdmissionQueue {
            items: Vec::with_capacity(cap),
            cap: cap.max(1),
            peak: 0,
        }
    }

    /// Queued entries in admission order (front is oldest).
    pub fn items(&self) -> &[Pending] {
        &self.items
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Deepest the queue has ever been.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Offers `request` at tick `now`.
    pub fn offer(&mut self, request: Request, now: u64) -> Admission {
        if self.items.len() < self.cap {
            self.items.push(Pending {
                request,
                queued_at: now,
            });
            self.peak = self.peak.max(self.items.len());
            return Admission::Accepted;
        }
        // Full: find the lowest-tier, most-recently-queued victim that is
        // *strictly* below the incoming tier. Equal tiers never displace
        // each other — that would just trade one miss for another while
        // losing FIFO fairness.
        let victim = self
            .items
            .iter()
            .enumerate()
            .filter(|(_, p)| p.request.tier < request.tier)
            .min_by_key(|(i, p)| (p.request.tier, std::cmp::Reverse(*i)))
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let evicted = self.items.remove(i);
                self.items.push(Pending {
                    request,
                    queued_at: now,
                });
                Admission::Displaced(evicted)
            }
            None => Admission::Rejected,
        }
    }

    /// Removes and returns up to `n` entries from the front (admission
    /// order).
    pub fn take(&mut self, n: usize) -> Vec<Pending> {
        let n = n.min(self.items.len());
        self.items.drain(..n).collect()
    }

    /// The lowest tier currently queued, if any.
    pub fn min_tier(&self) -> Option<Tier> {
        self.items.iter().map(|p| p.request.tier).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, tier: Tier) -> Request {
        Request {
            id,
            input: vec![0.0],
            tier,
            deadline: 1_000,
        }
    }

    #[test]
    fn accepts_until_full_then_rejects_equal_tiers() {
        let mut q = AdmissionQueue::new(2);
        assert_eq!(q.offer(req(0, Tier::Low), 0), Admission::Accepted);
        assert_eq!(q.offer(req(1, Tier::Low), 1), Admission::Accepted);
        assert_eq!(q.offer(req(2, Tier::Low), 2), Admission::Rejected);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn displacement_evicts_lowest_tier_most_recent() {
        let mut q = AdmissionQueue::new(3);
        q.offer(req(0, Tier::Low), 0);
        q.offer(req(1, Tier::Medium), 1);
        q.offer(req(2, Tier::Low), 2);
        // High arrival: two Low entries are displaceable; the most
        // recently queued one (id 2) goes.
        match q.offer(req(3, Tier::High), 3) {
            Admission::Displaced(p) => assert_eq!(p.request.id, 2),
            other => panic!("expected displacement, got {other:?}"),
        }
        // Next High displaces the remaining Low, then the Medium.
        match q.offer(req(4, Tier::High), 4) {
            Admission::Displaced(p) => assert_eq!(p.request.id, 0),
            other => panic!("expected displacement, got {other:?}"),
        }
        match q.offer(req(5, Tier::High), 5) {
            Admission::Displaced(p) => assert_eq!(p.request.id, 1),
            other => panic!("expected displacement, got {other:?}"),
        }
        // All-High queue: nothing left to sacrifice.
        assert_eq!(q.offer(req(6, Tier::High), 6), Admission::Rejected);
        assert!(q.items().iter().all(|p| p.request.tier == Tier::High));
    }

    #[test]
    fn take_preserves_admission_order() {
        let mut q = AdmissionQueue::new(4);
        for i in 0..4 {
            q.offer(req(i, Tier::Medium), i);
        }
        let batch = q.take(3);
        assert_eq!(
            batch.iter().map(|p| p.request.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.min_tier(), Some(Tier::Medium));
    }
}
