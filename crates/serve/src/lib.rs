#![forbid(unsafe_code)]
//! # safex-serve
//!
//! A deterministic, deadline-aware, multi-model fleet inference server
//! for the SAFEXPLAIN runtime: the deployment shell around the hardened
//! engines (`safex-nn`) and safe pipelines (`safex-core`).
//!
//! Mainstream inference servers optimise tail latency under a best-effort
//! contract: under overload they drop, under faults they serve whatever
//! the accelerator returns. A safety-critical deployment inverts both
//! defaults:
//!
//! * **No silent drops.** Admission is a bounded queue with typed
//!   rejection ([`ShedReason`]): every request that enters the system
//!   leaves it with exactly one [`Response`], and anything short of a
//!   completed in-deadline result says *why* — and, since the fleet
//!   redesign, names the [`ModelId`] it happened on.
//! * **Criticality-ordered sacrifice, bounded starvation.** Overload
//!   displaces strictly lower-[`Tier`] work first, but batch selection
//!   adds [`FairnessPolicy`] aging and reserved per-tier slots so a
//!   high-tier flood cannot starve best-effort work forever.
//! * **No stale results.** A result that misses its deadline is
//!   discarded and reported as [`Outcome::Timeout`] — late answers are
//!   wrong answers in a control loop.
//! * **Per-model health ladders.** A [`Fleet`] registers independently
//!   hardened backends; each member owns its own
//!   [`safex_core::health::HealthMonitor`]. A struck member walks
//!   Nominal → Degraded → SafeStop and sheds its own tiers while the
//!   rest of the fleet keeps serving; a [`RoutingPolicy`] (pure in the
//!   decision index) places each request on an eligible member.
//! * **Verified-result cache, on evidence.** Repeated inputs can be
//!   answered from a [`CacheConfig`]-bounded cache of *verified* results
//!   (unflagged, uncorrected, released at Nominal), each hit emitting a
//!   `cache_hit` evidence record — a cached answer is as auditable as a
//!   fresh one.
//! * **Bit-reproducible replay.** The clock is simulated and driven by
//!   recorded [`ArrivalTrace`]s, so batch formation, routing, and
//!   therefore the entire [`ServeReport`] is a pure function of
//!   `(trace, config, models)`, byte-identical for any pool worker
//!   count. Load tests double as certification evidence.
//!
//! ## Quick start (single model)
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use safex_nn::model::ModelBuilder;
//! use safex_nn::{HardenConfig, HardenedEngine};
//! use safex_serve::{PoolBackend, Server, ServerConfig, TrafficConfig};
//! use safex_tensor::{DetRng, Shape};
//!
//! let mut rng = DetRng::new(7);
//! let model = ModelBuilder::new(Shape::vector(4))
//!     .dense(8, &mut rng)?
//!     .relu()
//!     .dense(3, &mut rng)?
//!     .softmax()
//!     .build()?;
//! let inputs: Vec<Vec<f32>> = (0..16)
//!     .map(|_| (0..4).map(|_| rng.next_f32()).collect())
//!     .collect();
//! let mut engine = HardenedEngine::new(model, HardenConfig::default())?;
//! engine.calibrate(&inputs)?;
//!
//! let trace = TrafficConfig::default().synthesize(&inputs)?;
//! let backend = PoolBackend::new(&engine, 2)?;
//! let mut server = Server::single(ServerConfig::default(), backend)?;
//! let report = server.run_trace(&trace)?;
//! assert_eq!(report.responses.len(), trace.len());
//! # Ok(())
//! # }
//! ```
//!
//! ## Fleet serving
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use safex_nn::model::ModelBuilder;
//! use safex_nn::{HardenConfig, HardenedEngine};
//! use safex_serve::{CacheConfig, Fleet, PoolBackend, Server, ServerConfig, TrafficConfig};
//! use safex_tensor::{DetRng, Shape};
//!
//! let mut rng = DetRng::new(7);
//! let model = ModelBuilder::new(Shape::vector(4))
//!     .dense(8, &mut rng)?
//!     .relu()
//!     .dense(3, &mut rng)?
//!     .softmax()
//!     .build()?;
//! let inputs: Vec<Vec<f32>> = (0..16)
//!     .map(|_| (0..4).map(|_| rng.next_f32()).collect())
//!     .collect();
//! let mut engine = HardenedEngine::new(model, HardenConfig::default())?;
//! engine.calibrate(&inputs)?;
//!
//! let fleet = Fleet::builder()
//!     .register("alpha", PoolBackend::new(&engine, 2)?)
//!     .register("beta", PoolBackend::new(&engine, 2)?)
//!     .build()?;
//! let config = ServerConfig::default().with_cache(CacheConfig::enabled(256));
//! let mut server = Server::new(config, fleet)?;
//! let trace = TrafficConfig::default().synthesize(&inputs)?;
//! let report = server.run_trace(&trace)?;
//! assert_eq!(report.models.len(), 2);
//! assert!(report.snapshot.cache_lookups > 0);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod batcher;
pub mod cache;
pub mod clock;
pub mod config;
pub mod error;
pub mod fleet;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod route;
pub mod server;
pub mod snapshot;
pub mod soak;
pub mod traffic;

pub use backend::{Backend, BatchVerdict, PipelineBackend, PoolBackend};
pub use batcher::{BatchPolicy, ServiceModel};
pub use cache::{CacheConfig, CachedResult, ResultCache};
pub use clock::{ClockSource, SimClock, WallClock};
pub use config::ServerConfig;
pub use error::ServeError;
pub use fleet::{Fleet, FleetBuilder, FleetMember};
pub use metrics::{LatencyStats, Metrics, MetricsSnapshot, ModelUsage};
pub use queue::{Admission, AdmissionQueue, FairnessPolicy, Pending};
pub use request::{ModelId, Outcome, Request, Response, ShedReason, Tier};
pub use route::{
    CandidateView, RoundRobin, RouteView, RoutingKind, RoutingPolicy, TierLeastLoaded,
};
pub use server::{InFlightBatch, ModelSummary, ServeReport, Server, ServiceTransition};
pub use snapshot::{trace_digest, CacheEntrySnapshot, ChainEntry, RunSnapshot, ServerSnapshot};
pub use soak::{
    OpsPlan, SoakOutcome, SoakStats, StallOp, SwapEvent, SwapOp, WatchStage, WatchdogConfig,
    WatchdogState,
};
pub use traffic::{Arrival, ArrivalTrace, TrafficConfig, TrafficShape};
