#![forbid(unsafe_code)]
//! # safex-serve
//!
//! A deterministic, deadline-aware micro-batching inference server for
//! the SAFEXPLAIN runtime: the deployment shell around the hardened
//! engines (`safex-nn`) and safe pipelines (`safex-core`).
//!
//! Mainstream inference servers optimise tail latency under a best-effort
//! contract: under overload they drop, under faults they serve whatever
//! the accelerator returns. A safety-critical deployment inverts both
//! defaults:
//!
//! * **No silent drops.** Admission is a bounded queue with typed
//!   rejection ([`ShedReason`]): every request that enters the system
//!   leaves it with exactly one [`Response`], and anything short of a
//!   completed in-deadline result says *why*.
//! * **Criticality-ordered sacrifice.** Overload displaces strictly
//!   lower-[`Tier`] work first; degraded operation sheds best-effort
//!   tiers before touching safety-relevant ones.
//! * **No stale results.** A result that misses its deadline is
//!   discarded and reported as [`Outcome::Timeout`] — late answers are
//!   wrong answers in a control loop.
//! * **Health-gated service levels.** The server feeds every executed
//!   decision's diagnostics into a [`safex_core::health::HealthMonitor`];
//!   `Degraded` sheds low tiers, `SafeStop` fails everything, and each
//!   transition lands in a `safex-trace` evidence chain.
//! * **Bit-reproducible replay.** The clock is simulated and driven by
//!   recorded [`ArrivalTrace`]s, so batch formation — and therefore the
//!   entire [`ServeReport`] — is a pure function of `(trace, config,
//!   model)`, byte-identical for any pool worker count. Load tests
//!   double as certification evidence.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use safex_nn::model::ModelBuilder;
//! use safex_nn::{HardenConfig, HardenedEngine};
//! use safex_serve::{PoolBackend, Server, ServerConfig, TrafficConfig};
//! use safex_tensor::{DetRng, Shape};
//!
//! let mut rng = DetRng::new(7);
//! let model = ModelBuilder::new(Shape::vector(4))
//!     .dense(8, &mut rng)?
//!     .relu()
//!     .dense(3, &mut rng)?
//!     .softmax()
//!     .build()?;
//! let inputs: Vec<Vec<f32>> = (0..16)
//!     .map(|_| (0..4).map(|_| rng.next_f32()).collect())
//!     .collect();
//! let mut engine = HardenedEngine::new(model, HardenConfig::default())?;
//! engine.calibrate(&inputs)?;
//!
//! let trace = TrafficConfig::default().synthesize(&inputs)?;
//! let backend = PoolBackend::new(&engine, 2)?;
//! let mut server = Server::new(ServerConfig::default(), backend)?;
//! let report = server.run_trace(&trace)?;
//! assert_eq!(report.responses.len(), trace.len());
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod batcher;
pub mod config;
pub mod error;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod server;
pub mod traffic;

pub use backend::{Backend, BatchVerdict, PipelineBackend, PoolBackend};
pub use batcher::{BatchPolicy, ServiceModel};
pub use config::ServerConfig;
pub use error::ServeError;
pub use metrics::{Metrics, MetricsSnapshot};
pub use queue::{Admission, AdmissionQueue, Pending};
pub use request::{Outcome, Request, Response, ShedReason, Tier};
pub use server::{ServeReport, Server, ServiceTransition};
pub use traffic::{Arrival, ArrivalTrace, TrafficConfig};
