//! Deadline-aware micro-batch formation.
//!
//! Batching amortises per-dispatch overhead (weight checksum sweeps,
//! pool fan-out) across requests, but every tick spent lingering for a
//! fuller batch is a tick stolen from the oldest request's deadline. The
//! policy here makes that trade explicit and *clock-driven*: a batch
//! flushes when it is full, when the oldest entry's deadline slack runs
//! out, or when the oldest entry has lingered its maximum — whichever
//! comes first. All three triggers are pure functions of queue state and
//! the simulated clock, so batch boundaries are reproducible.

use crate::error::ServeError;
use crate::queue::Pending;

/// When to flush a forming batch.
///
/// `#[non_exhaustive]`: construct with [`BatchPolicy::default`] and the
/// `with_*` setters — fleet-era knobs can then be added without breaking
/// downstream literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct BatchPolicy {
    /// Maximum requests per batch (`>= 1`).
    pub max_batch: usize,
    /// Flush early enough that the oldest entry still has this many
    /// ticks of deadline slack for execution.
    pub flush_slack: u64,
    /// Never hold the oldest entry longer than this many ticks, even
    /// with slack to spare (bounds tail latency under light load).
    pub max_linger: u64,
    /// Bounded submission-queue capacity (`>= 1`).
    pub queue_cap: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            flush_slack: 40,
            max_linger: 32,
            queue_cap: 64,
        }
    }
}

impl BatchPolicy {
    /// Sets the maximum batch size.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the deadline slack reserved at flush time.
    #[must_use]
    pub fn with_flush_slack(mut self, flush_slack: u64) -> Self {
        self.flush_slack = flush_slack;
        self
    }

    /// Sets the maximum linger for the oldest queued entry.
    #[must_use]
    pub fn with_max_linger(mut self, max_linger: u64) -> Self {
        self.max_linger = max_linger;
        self
    }

    /// Sets the bounded submission-queue capacity.
    #[must_use]
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap;
        self
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero batch size or queue
    /// capacity, or a queue capacity below the batch size.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |msg: String| Err(ServeError::BadConfig(msg));
        if self.max_batch == 0 {
            return bad("max_batch must be at least 1".into());
        }
        if self.queue_cap == 0 {
            return bad("queue_cap must be at least 1".into());
        }
        if self.queue_cap < self.max_batch {
            return bad(format!(
                "queue_cap {} below max_batch {} — a full batch could never form",
                self.queue_cap, self.max_batch
            ));
        }
        Ok(())
    }

    /// The tick at which the current queue contents should flush, given
    /// the backend frees at `free_at`. `None` when nothing is queued.
    ///
    /// A full batch flushes as soon as the backend is free; otherwise the
    /// oldest entry's deadline slack and linger bound decide, clamped to
    /// `free_at` (the backend cannot start sooner) and to the entry's own
    /// admission tick (no flushing in the past).
    pub fn flush_at(&self, queue: &[Pending], free_at: u64) -> Option<u64> {
        let oldest = queue.first()?;
        if queue.len() >= self.max_batch {
            return Some(free_at.max(oldest.queued_at));
        }
        let by_slack = oldest.request.deadline.saturating_sub(self.flush_slack);
        let by_linger = oldest.queued_at.saturating_add(self.max_linger);
        Some(by_slack.min(by_linger).max(free_at).max(oldest.queued_at))
    }
}

/// A deterministic cost model for batch execution, in ticks.
///
/// The simulated clock needs a duration for each dispatch; modelling it
/// as `overhead + n * per_item` captures the amortisation batching buys
/// (checksum sweeps and dispatch setup are per-batch, kernel work is
/// per-item). The bench calibrates these constants from measured
/// wall-clock costs; the server only ever sees ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed per-dispatch cost in ticks.
    pub batch_overhead: u64,
    /// Marginal per-request cost in ticks.
    pub per_item: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            batch_overhead: 8,
            per_item: 4,
        }
    }
}

impl ServiceModel {
    /// Execution duration for a batch of `n` requests.
    pub fn duration(&self, n: usize) -> u64 {
        self.batch_overhead + self.per_item * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, Tier};

    fn pending(queued_at: u64, deadline: u64) -> Pending {
        Pending {
            request: Request::new(0, vec![0.0], Tier::Medium, deadline),
            queued_at,
        }
    }

    #[test]
    fn full_batch_flushes_immediately() {
        let policy = BatchPolicy {
            max_batch: 2,
            ..BatchPolicy::default()
        };
        let queue = vec![pending(10, 500), pending(11, 500)];
        assert_eq!(policy.flush_at(&queue, 0), Some(10));
        assert_eq!(policy.flush_at(&queue, 30), Some(30));
    }

    #[test]
    fn deadline_slack_beats_linger_when_tighter() {
        let policy = BatchPolicy {
            max_batch: 8,
            flush_slack: 40,
            max_linger: 100,
            ..BatchPolicy::default()
        };
        // Deadline 60, slack 40 → flush by 20; linger allows until 110.
        assert_eq!(policy.flush_at(&[pending(10, 60)], 0), Some(20));
        // Ample deadline → linger bound 10 + 100 = 110 wins.
        assert_eq!(policy.flush_at(&[pending(10, 1_000)], 0), Some(110));
        // Busy backend clamps upward.
        assert_eq!(policy.flush_at(&[pending(10, 60)], 75), Some(75));
        // Empty queue has nothing to flush.
        assert_eq!(policy.flush_at(&[], 0), None);
    }

    #[test]
    fn policy_validation() {
        assert!(BatchPolicy::default().validate().is_ok());
        for bad in [
            BatchPolicy::default().with_max_batch(0),
            BatchPolicy::default().with_queue_cap(0),
            BatchPolicy::default().with_max_batch(32).with_queue_cap(16),
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn setters_cover_every_knob() {
        let p = BatchPolicy::default()
            .with_max_batch(4)
            .with_flush_slack(10)
            .with_max_linger(20)
            .with_queue_cap(8);
        assert_eq!(
            (p.max_batch, p.flush_slack, p.max_linger, p.queue_cap),
            (4, 10, 20, 8)
        );
    }

    #[test]
    fn service_model_is_affine() {
        let m = ServiceModel {
            batch_overhead: 10,
            per_item: 3,
        };
        assert_eq!(m.duration(0), 10);
        assert_eq!(m.duration(1), 13);
        assert_eq!(m.duration(16), 58);
    }
}
