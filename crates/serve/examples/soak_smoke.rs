//! Bounded wall-clock soak smoke: a ~6 second real-time run of the soak
//! runtime under `WallClock` pacing, with seeded SEU faults, one atomic
//! hot swap, the layered watchdog armed, and a mid-traffic snapshot whose
//! restored continuation must reproduce the paced run byte-for-byte.
//!
//! Driven by `scripts/check.sh --soak-smoke`. Exits non-zero (panics) on
//! any violated invariant, so the tier is a pass/fail gate.

use std::time::{Duration, Instant};

use safex_core::health::{HealthConfig, HealthState};
use safex_nn::model::ModelBuilder;
use safex_nn::{EccConfig, HardenConfig, HardenedEngine, Model};
use safex_serve::{
    Backend, CacheConfig, Fleet, ModelId, OpsPlan, PoolBackend, Request, RoutingKind, Server,
    ServerConfig, SimClock, SwapOp, TrafficConfig, WallClock, WatchStage, WatchdogConfig,
};
use safex_tensor::{DetRng, Shape};
use safex_trace::RecordKind;

fn fixture(seed: u64) -> Model {
    let mut rng = DetRng::new(seed);
    ModelBuilder::new(Shape::vector(6))
        .dense(10, &mut rng)
        .unwrap()
        .relu()
        .dense(4, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap()
}

fn hardened(model: &Model, inputs: &[Vec<f32>]) -> HardenedEngine {
    let config = HardenConfig {
        repair: Some(EccConfig::default()),
        ..HardenConfig::default()
    };
    let mut engine = HardenedEngine::new(model.clone(), config).unwrap();
    engine.calibrate(inputs).unwrap();
    engine
}

fn fleet(engine: &HardenedEngine) -> Fleet<PoolBackend> {
    Fleet::builder()
        .register("alpha", PoolBackend::new(engine, 1).unwrap())
        .register("beta", PoolBackend::new(engine, 1).unwrap())
        .register("gamma", PoolBackend::new(engine, 1).unwrap())
        .build()
        .unwrap()
}

fn config() -> ServerConfig {
    ServerConfig::default()
        .with_routing(RoutingKind::RoundRobin)
        .with_health(HealthConfig {
            window: 8,
            degrade_events: 2,
            stop_events: 6,
            recover_after: 16,
            resume_after: 0,
            warn_budget: 3,
        })
        .with_cache(CacheConfig::enabled(256))
        .with_watchdog(WatchdogConfig::enabled(1024).with_proof_cadence(1800))
        .with_campaign("soak-smoke")
}

fn strikes(request: &Request, fleet: &mut Fleet<PoolBackend>) {
    let alpha = ModelId::new(0);
    if request.id == 100 {
        // Correctable single-bit SEU: the ECC sidecar repairs it in place.
        fleet
            .backend_mut(alpha)
            .unwrap()
            .strike_weights(0xA11CE, 1, 1)
            .unwrap();
    }
    if request.id == 1600 {
        // Uncorrectable double-bit SEU: alpha must walk to SafeStop.
        fleet
            .backend_mut(alpha)
            .unwrap()
            .strike_weights(0xBAD5EED, 1, 2)
            .unwrap();
    }
}

fn main() {
    let started = Instant::now();
    let mut rng = DetRng::new(0x50A1);
    let inputs: Vec<Vec<f32>> = (0..800)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    let engine = hardened(&fixture(0xF1EE7), &inputs);
    let engine2 = hardened(&fixture(0xB0B2), &inputs);
    let good_digest = PoolBackend::new(&engine2, 1)
        .unwrap()
        .swap_digest()
        .unwrap();
    let trace = TrafficConfig {
        seed: 0x50AC50AC,
        requests: 2_000,
        mean_interarrival: 3.0,
        deadline: 600,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let plan = |incoming: PoolBackend| {
        OpsPlan::none().with_snapshot_at(800).with_swap(SwapOp {
            at_request: 1_000,
            model: ModelId::new(1),
            incoming,
            expected_digest: Some(good_digest),
        })
    };

    // --- The paced run: one tick of simulated time = 1 ms of wall time. ---
    let mut clock = WallClock::new(Duration::from_millis(1));
    let mut server = Server::new(config(), fleet(&engine)).unwrap();
    let paced = server
        .run_soak_with(
            &trace,
            plan(PoolBackend::new(&engine2, 1).unwrap()),
            &mut clock,
            strikes,
        )
        .unwrap();
    let wall = started.elapsed();
    assert_eq!(paced.report.responses.len(), trace.len(), "no silent drops");

    let swap = &paced.report.soak.swaps[0];
    assert!(swap.committed, "the pinned-digest swap must commit");
    assert_eq!(
        server.model_state(ModelId::new(0)),
        Some(HealthState::SafeStop),
        "the uncorrectable strike must stop alpha"
    );
    assert_eq!(
        server.model_state(ModelId::new(1)),
        Some(HealthState::Nominal)
    );
    let evidence = server.evidence();
    evidence.verify().unwrap();
    assert_eq!(evidence.records_of_kind(RecordKind::ModelSwapped).len(), 1);
    assert!(!evidence
        .records_of_kind(RecordKind::FaultCorrected)
        .is_empty());
    let soak = &paced.report.soak;
    assert!(soak.watchdog_kicks.iter().all(|&k| k > 0));
    assert_eq!(soak.watchdog_alarms, 0, "healthy stages must not alarm");
    assert!(soak.watchdog_proofs > 0);

    // --- Restore the mid-traffic snapshot and re-derive the same report. --
    // The sim clock is byte-equivalent to the paced clock, so the resumed
    // comparison run does not cost a second wall-clock soak.
    let bytes = paced.snapshot.as_ref().expect("snapshot captured");
    let mut restored = Server::restore(config(), fleet(&engine), bytes).unwrap();
    let resumed = restored
        .run_soak_with(
            &trace,
            plan(PoolBackend::new(&engine2, 1).unwrap()),
            &mut SimClock,
            strikes,
        )
        .unwrap();
    assert_eq!(
        resumed.report.replay_digest(),
        paced.report.replay_digest(),
        "restored continuation diverged from the paced run"
    );
    assert_eq!(
        restored.evidence().len(),
        evidence.len() + 1,
        "restored chain = paced chain + one runtime_restored record"
    );

    let last_tick = paced
        .report
        .responses
        .iter()
        .map(|r| r.resolved_at)
        .max()
        .unwrap_or(0);
    println!(
        "soak-smoke: {} requests in {:.2}s wall ({} sim ticks), swap drained {} ticks, \
         watchdog kicks a/b/b/r = {}/{}/{}/{}, proofs = {}, restore byte-identical",
        trace.len(),
        wall.as_secs_f64(),
        last_tick,
        swap.latency(),
        soak.watchdog_kicks[WatchStage::Admission.index()],
        soak.watchdog_kicks[WatchStage::Batcher.index()],
        soak.watchdog_kicks[WatchStage::Backend.index()],
        soak.watchdog_kicks[WatchStage::Release.index()],
        soak.watchdog_proofs,
    );
}
