//! Property tests for the soak snapshot codec: encode/decode is the
//! identity over arbitrary snapshots (including arbitrary mid-walk
//! ladder states), re-encoding reproduces the exact bytes, and any
//! truncation or byte corruption fails closed with the typed error —
//! never a panic, never partial state.

use proptest::prelude::*;
use safex_core::health::{HealthState, LadderState, Transition};
use safex_nn::model::ModelBuilder;
use safex_nn::{HardenConfig, HardenedEngine};
use safex_serve::{
    BatchVerdict, CacheConfig, CacheEntrySnapshot, ChainEntry, Fleet, InFlightBatch, Metrics,
    ModelId, OpsPlan, Outcome, Pending, PoolBackend, Request, Response, RunSnapshot, ServeError,
    Server, ServerConfig, ServerSnapshot, ServiceTransition, ShedReason, SimClock, SoakStats,
    SwapEvent, Tier, TrafficConfig, WatchdogState,
};
use safex_tensor::{DetRng, Shape};
use safex_trace::{RecordKind, Value};

fn state_of(n: u64) -> HealthState {
    match n % 3 {
        0 => HealthState::Nominal,
        1 => HealthState::Degraded,
        _ => HealthState::SafeStop,
    }
}

fn tier_of(n: u64) -> Tier {
    match n % 3 {
        0 => Tier::Low,
        1 => Tier::Medium,
        _ => Tier::High,
    }
}

fn outcome_of(rng: &mut DetRng) -> Outcome {
    match rng.next_u64() % 6 {
        0 => Outcome::Completed {
            class: (rng.next_u64() % 16) as usize,
            confidence: rng.next_f32(),
            flagged: rng.next_u64() & 1 == 1,
            level: state_of(rng.next_u64()),
            model: ModelId::new((rng.next_u64() % 4) as u16),
            cached: rng.next_u64() & 1 == 1,
        },
        1 => Outcome::Shed(ShedReason::QueueFull),
        2 => Outcome::Shed(ShedReason::Displaced { by: rng.next_u64() }),
        3 => Outcome::Shed(ShedReason::DegradedTier {
            model: ModelId::new((rng.next_u64() % 4) as u16),
        }),
        4 => Outcome::Timeout,
        _ => Outcome::SafeStop {
            model: if rng.next_u64() & 1 == 1 {
                Some(ModelId::new((rng.next_u64() % 4) as u16))
            } else {
                None
            },
        },
    }
}

fn pending_of(rng: &mut DetRng, id: u64) -> Pending {
    let input: Vec<f32> = (0..(rng.next_u64() % 5)).map(|_| rng.next_f32()).collect();
    let mut request = Request::new(id, input, tier_of(rng.next_u64()), rng.next_u64() >> 32);
    if rng.next_u64() & 1 == 1 {
        request = request.pinned(ModelId::new((rng.next_u64() % 4) as u16));
    }
    Pending {
        request,
        queued_at: rng.next_u64() >> 40,
    }
}

const KINDS: [RecordKind; 8] = [
    RecordKind::InferencePerformed,
    RecordKind::HealthTransition,
    RecordKind::FaultCorrected,
    RecordKind::CacheHit,
    RecordKind::RuntimeRestored,
    RecordKind::ModelSwapped,
    RecordKind::SwapAborted,
    RecordKind::WatchdogEscalation,
];

fn value_of(rng: &mut DetRng) -> Value {
    match rng.next_u64() % 4 {
        0 => Value::Str(format!("v{:x}", rng.next_u64() % 4096)),
        1 => Value::U64(rng.next_u64()),
        2 => Value::F64(f64::from(rng.next_f32())),
        _ => Value::Bool(rng.next_u64() & 1 == 1),
    }
}

/// An arbitrary — not necessarily semantically reachable — snapshot.
/// The codec must round-trip anything representable; semantic validation
/// is `Server::restore`'s job, on top of it.
fn arbitrary_snapshot(seed: u64, members: usize) -> ServerSnapshot {
    let mut rng = DetRng::new(seed);
    let monitors: Vec<LadderState> = (0..members)
        .map(|_| LadderState {
            state: state_of(rng.next_u64()),
            history: rng.next_u64(),
            warn_history: rng.next_u64(),
            clean_streak: (rng.next_u64() % 64) as u32,
            decisions: rng.next_u64() >> 16,
            time_in: [
                rng.next_u64() >> 16,
                rng.next_u64() >> 16,
                rng.next_u64() >> 16,
            ],
            transitions: (0..(rng.next_u64() % 4))
                .map(|_| Transition {
                    from: state_of(rng.next_u64()),
                    to: state_of(rng.next_u64()),
                    at_decision: rng.next_u64() >> 32,
                })
                .collect(),
        })
        .collect();
    let cache_entries: Vec<CacheEntrySnapshot> = (0..(rng.next_u64() % 5))
        .map(|_| CacheEntrySnapshot {
            input: (0..(rng.next_u64() % 6)).map(|_| rng.next_f32()).collect(),
            class: (rng.next_u64() % 32) as usize,
            confidence: rng.next_f32(),
            model: ModelId::new((rng.next_u64() % members.max(1) as u64) as u16),
        })
        .collect();
    let chain: Vec<ChainEntry> = (0..(rng.next_u64() % 6))
        .map(|_| ChainEntry {
            kind: KINDS[(rng.next_u64() % KINDS.len() as u64) as usize],
            fields: (0..(rng.next_u64() % 4))
                .map(|i| (format!("k{i}"), value_of(&mut rng)))
                .collect(),
        })
        .collect();
    let responses: Vec<Response> = (0..(rng.next_u64() % 6))
        .map(|i| Response {
            id: i,
            tier: tier_of(rng.next_u64()),
            arrived_at: rng.next_u64() >> 40,
            resolved_at: rng.next_u64() >> 40,
            outcome: outcome_of(&mut rng),
        })
        .collect();
    let transitions: Vec<ServiceTransition> = (0..(rng.next_u64() % 4))
        .map(|_| ServiceTransition {
            model: ModelId::new((rng.next_u64() % members.max(1) as u64) as u16),
            from: state_of(rng.next_u64()),
            to: state_of(rng.next_u64()),
            at_tick: rng.next_u64() >> 40,
            after_request: rng.next_u64() >> 40,
        })
        .collect();
    let inflight: Vec<InFlightBatch> = (0..(rng.next_u64() % 3))
        .map(|_| InFlightBatch {
            model: ModelId::new((rng.next_u64() % members.max(1) as u64) as u16),
            done_at: rng.next_u64() >> 40,
            items: (0..(1 + rng.next_u64() % 3))
                .map(|i| {
                    let verdict = if rng.next_u64().is_multiple_of(4) {
                        BatchVerdict::Stop
                    } else {
                        BatchVerdict::Ok {
                            class: (rng.next_u64() % 8) as usize,
                            confidence: rng.next_f32(),
                            flagged: rng.next_u64() & 1 == 1,
                            corrected: rng.next_u64() & 1 == 1,
                        }
                    };
                    (pending_of(&mut rng, 100 + i), verdict)
                })
                .collect(),
        })
        .collect();
    let mut stats = SoakStats::default();
    for _ in 0..(rng.next_u64() % 3) {
        stats.swaps.push(SwapEvent {
            model: ModelId::new((rng.next_u64() % members.max(1) as u64) as u16),
            requested_at: rng.next_u64() >> 40,
            resolved_at: rng.next_u64() >> 40,
            committed: rng.next_u64() & 1 == 1,
            digest: rng.next_u64(),
        });
    }
    for k in &mut stats.watchdog_kicks {
        *k = rng.next_u64() >> 32;
    }
    stats.watchdog_alarms = rng.next_u64() % 8;
    stats.watchdog_escalations = rng.next_u64() % 8;
    stats.watchdog_proofs = rng.next_u64() % 8;
    ServerSnapshot {
        campaign: format!("campaign-{:x}", rng.next_u64() % 0xFFFF),
        config_digest: rng.next_u64(),
        trace_digest: rng.next_u64(),
        monitors,
        cache_entries,
        chain,
        chain_head: rng.next_u64(),
        backend_clocks: (0..members).map(|_| rng.next_u64() >> 24).collect(),
        run: RunSnapshot {
            responses,
            transitions,
            metrics: Metrics::new(members),
            queue_items: (0..(rng.next_u64() % 4))
                .map(|i| pending_of(&mut rng, 200 + i))
                .collect(),
            queue_cap: 1 + rng.next_u64() % 256,
            queue_peak: rng.next_u64() % 256,
            inflight,
            free_at: (0..members).map(|_| rng.next_u64() >> 40).collect(),
            decisions: rng.next_u64() >> 32,
            next_arrival: rng.next_u64() >> 40,
            now: rng.next_u64() >> 40,
            stalled: rng.next_u64() & 1 == 1,
            watchdog: WatchdogState {
                last_progress: [
                    rng.next_u64() >> 40,
                    rng.next_u64() >> 40,
                    rng.next_u64() >> 40,
                    rng.next_u64() >> 40,
                ],
                strikes: [
                    (rng.next_u64() % 4) as u32,
                    (rng.next_u64() % 4) as u32,
                    (rng.next_u64() % 4) as u32,
                    (rng.next_u64() % 4) as u32,
                ],
                next_proof: rng.next_u64() >> 40,
            },
            stats,
        },
    }
}

/// A snapshot captured from a real mid-traffic run — the codec input
/// that actually matters in production.
fn captured_snapshot(seed: u64, requests: u64, capture_at: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let model = ModelBuilder::new(Shape::vector(4))
        .dense(6, &mut rng)
        .unwrap()
        .relu()
        .dense(3, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let inputs: Vec<Vec<f32>> = (0..12)
        .map(|_| (0..4).map(|_| rng.next_f32()).collect())
        .collect();
    let mut engine = HardenedEngine::new(model, HardenConfig::default()).unwrap();
    engine.calibrate(&inputs).unwrap();
    let fleet = Fleet::builder()
        .register("a", PoolBackend::new(&engine, 1).unwrap())
        .register("b", PoolBackend::new(&engine, 1).unwrap())
        .build()
        .unwrap();
    let config = ServerConfig::default().with_cache(CacheConfig::enabled(32));
    let mut server = Server::new(config, fleet).unwrap();
    let trace = TrafficConfig {
        seed,
        requests: requests as usize,
        mean_interarrival: 3.0,
        deadline: 300,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let outcome = server
        .run_soak(
            &trace,
            OpsPlan::none().with_snapshot_at(capture_at),
            &mut SimClock,
        )
        .unwrap();
    outcome.snapshot.expect("capture point inside the trace")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// decode(encode(s)) == s and encode(decode(bytes)) == bytes for
    /// arbitrary snapshots, including ladder states no live run may
    /// ever have produced.
    #[test]
    fn round_trip_is_identity_over_arbitrary_snapshots(
        seed in any::<u64>(),
        members in 1usize..5,
    ) {
        let snap = arbitrary_snapshot(seed, members);
        let bytes = snap.encode();
        let decoded = ServerSnapshot::decode(&bytes)
            .expect("encoded snapshot must decode");
        prop_assert_eq!(&decoded, &snap, "decode must invert encode");
        prop_assert_eq!(decoded.encode(), bytes, "re-encode must be stable");
    }

    /// Any truncation of a valid snapshot fails closed with the typed
    /// error — a partial snapshot is never accepted.
    #[test]
    fn any_truncation_fails_closed(
        seed in any::<u64>(),
        members in 1usize..4,
        cut_pick in any::<u64>(),
    ) {
        let bytes = arbitrary_snapshot(seed, members).encode();
        let cut = (cut_pick % bytes.len() as u64) as usize;
        let result = ServerSnapshot::decode(&bytes[..cut]);
        prop_assert!(
            matches!(result, Err(ServeError::BadSnapshot(_))),
            "truncation at {} of {} must fail closed, got {:?}",
            cut,
            bytes.len(),
            result.map(|_| "decoded")
        );
    }

    /// Any single corrupted byte fails closed: the checksum (or a layer
    /// above it) catches every flip, including flips inside the
    /// checksum itself.
    #[test]
    fn any_corrupted_byte_fails_closed(
        seed in any::<u64>(),
        members in 1usize..4,
        pos_pick in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut bytes = arbitrary_snapshot(seed, members).encode();
        let pos = (pos_pick % bytes.len() as u64) as usize;
        bytes[pos] ^= 1u8 << bit;
        let result = ServerSnapshot::decode(&bytes);
        prop_assert!(
            matches!(result, Err(ServeError::BadSnapshot(_))),
            "flip at byte {} bit {} must fail closed, got {:?}",
            pos,
            bit,
            result.map(|_| "decoded")
        );
    }

    /// Arbitrary garbage never panics the decoder and never decodes.
    #[test]
    fn garbage_bytes_never_panic_never_decode(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let result = ServerSnapshot::decode(&bytes);
        prop_assert!(
            matches!(result, Err(ServeError::BadSnapshot(_))),
            "random bytes must be rejected"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshots captured from real mid-traffic runs round-trip exactly,
    /// and survive neither truncation nor corruption.
    #[test]
    fn captured_snapshots_round_trip_and_fail_closed(
        seed in any::<u64>(),
        requests in 24u64..96,
        cut_pick in any::<u64>(),
    ) {
        let capture_at = requests / 2;
        let bytes = captured_snapshot(seed, requests, capture_at);
        let decoded = ServerSnapshot::decode(&bytes).expect("captured snapshot decodes");
        prop_assert_eq!(decoded.encode(), bytes.clone(), "re-encode must be byte-stable");
        prop_assert_eq!(decoded.run.next_arrival, capture_at);
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(ServerSnapshot::decode(&bytes[..cut]).is_err());
        let mut corrupt = bytes;
        let pos = (cut_pick % corrupt.len() as u64) as usize;
        corrupt[pos] ^= 0x01;
        prop_assert!(ServerSnapshot::decode(&corrupt).is_err());
    }
}
