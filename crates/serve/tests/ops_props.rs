//! Property tests for [`TrafficShape`] replay and [`OpsPlan`]
//! swap/snapshot interleavings.
//!
//! The shape properties pin the replay contract the falsifier's temporal
//! workloads depend on: request `i` carries payload `i` exactly, pacing
//! is a pure function of the shape, and invalid knobs are typed errors.
//! The ops properties drive random swap/snapshot schedules through real
//! soak runs: a capture point landing inside a draining hot swap must be
//! refused with [`ServeError::BadSnapshot`] — and the server must come
//! out of the refusal fully serviceable, never wedged.

use proptest::prelude::*;
use safex_nn::model::ModelBuilder;
use safex_nn::{EccConfig, HardenConfig, HardenedEngine, Model};
use safex_serve::{
    Fleet, ModelId, OpsPlan, PoolBackend, ServeError, Server, ServerConfig, ServerSnapshot,
    SimClock, SwapOp, Tier, TrafficConfig, TrafficShape,
};
use safex_tensor::{DetRng, Shape};

fn fixture(seed: u64) -> (Model, Vec<Vec<f32>>) {
    let mut rng = DetRng::new(seed);
    let model = ModelBuilder::new(Shape::vector(6))
        .dense(10, &mut rng)
        .unwrap()
        .relu()
        .dense(4, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    (model, inputs)
}

fn hardened(model: &Model, inputs: &[Vec<f32>]) -> HardenedEngine {
    let config = HardenConfig {
        repair: Some(EccConfig::default()),
        ..HardenConfig::default()
    };
    let mut engine = HardenedEngine::new(model.clone(), config).unwrap();
    engine.calibrate(inputs).unwrap();
    engine
}

fn tier_from(pick: u64) -> Tier {
    match pick % 3 {
        0 => Tier::Low,
        1 => Tier::Medium,
        _ => Tier::High,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For every valid shape and payload sequence: one request per
    /// payload, in order, with exact burst pacing and deadlines — and
    /// the whole trace is a pure function of `(shape, inputs)`.
    #[test]
    fn traffic_shape_replay_is_exact(
        seed in any::<u64>(),
        start in 0u64..1_000,
        burst in 1usize..9,
        gap in 1u64..64,
        deadline in 1u64..500,
        tier_pick in any::<u64>(),
        payloads in 1usize..48,
    ) {
        let mut rng = DetRng::new(seed);
        let inputs: Vec<Vec<f32>> = (0..payloads)
            .map(|_| (0..4).map(|_| rng.next_f32()).collect())
            .collect();
        let shape = TrafficShape {
            start,
            burst,
            gap,
            tier: tier_from(tier_pick),
            deadline,
        };
        let trace = shape.shape(&inputs).expect("valid shape");
        prop_assert_eq!(trace.len(), payloads, "one request per payload");
        let again = shape.shape(&inputs).expect("valid shape");
        prop_assert_eq!(&trace, &again, "replay must be deterministic");

        let mut prev_at = 0u64;
        for (i, arrival) in trace.arrivals().iter().enumerate() {
            // Payload identity: never cycled, never reordered.
            prop_assert_eq!(arrival.request.id, i as u64);
            prop_assert_eq!(&arrival.request.input, &inputs[i]);
            prop_assert_eq!(arrival.request.tier, shape.tier);
            // Exact burst pacing and deadline arithmetic.
            let want_at = start + (i / burst) as u64 * gap;
            prop_assert_eq!(arrival.at, want_at);
            prop_assert_eq!(arrival.request.deadline, want_at + deadline);
            prop_assert!(arrival.at >= prev_at, "arrivals in time order");
            prev_at = arrival.at;
        }
    }

    /// Every invalid knob is a typed `BadConfig`, never a panic and
    /// never a silently clamped trace.
    #[test]
    fn degenerate_shapes_are_typed_errors(
        start in 0u64..1_000,
        burst in 0usize..9,
        gap in 0u64..64,
        deadline in 0u64..500,
        empty_payloads in any::<bool>(),
    ) {
        let shape = TrafficShape {
            start,
            burst,
            gap,
            tier: Tier::High,
            deadline,
        };
        let inputs: Vec<Vec<f32>> = if empty_payloads {
            Vec::new()
        } else {
            vec![vec![0.5; 4]]
        };
        let invalid = burst == 0 || gap == 0 || deadline == 0 || empty_payloads;
        match shape.shape(&inputs) {
            Ok(trace) => {
                prop_assert!(!invalid, "invalid shape must not produce a trace");
                prop_assert_eq!(trace.len(), inputs.len());
            }
            Err(ServeError::BadConfig(_)) => prop_assert!(invalid),
            Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
        }
    }
}

proptest! {
    // Each case runs two short soaks against a real fleet; keep the
    // case count modest so the suite stays in test-tier budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random swap/snapshot interleavings: a soak either completes (and
    /// any captured snapshot decodes) or is refused with the typed
    /// mid-swap `BadSnapshot` error — after which the *same* server must
    /// still run a full plan-free soak with zero dropped requests.
    #[test]
    fn mid_swap_snapshots_fail_closed_without_wedging_the_server(
        seed in any::<u64>(),
        snapshot_at in 0u64..48,
        swap_at in 0u64..48,
        swap_member in 0u16..2,
    ) {
        let (model, inputs) = fixture(seed);
        let engine = hardened(&model, &inputs);
        let (swap_model, swap_inputs) = fixture(seed ^ 0x50AF);
        let swap_engine = hardened(&swap_model, &swap_inputs);
        let fleet = Fleet::builder()
            .register("alpha", PoolBackend::new(&engine, 1).unwrap())
            .register("beta", PoolBackend::new(&engine, 1).unwrap())
            .build()
            .unwrap();
        let trace = TrafficConfig {
            seed,
            requests: 40,
            mean_interarrival: 2.0,
            deadline: 400,
            ..TrafficConfig::default()
        }
        .synthesize(&inputs)
        .unwrap();
        let ops = OpsPlan::none()
            .with_snapshot_at(snapshot_at)
            .with_swap(SwapOp {
                at_request: swap_at,
                model: ModelId::new(swap_member),
                incoming: PoolBackend::new(&swap_engine, 1).unwrap(),
                expected_digest: None,
            });
        let mut server =
            Server::new(ServerConfig::default().with_campaign("ops-props"), fleet).unwrap();

        match server.run_soak(&trace, ops, &mut SimClock) {
            Ok(outcome) => {
                prop_assert_eq!(
                    outcome.report.responses.len(),
                    trace.len(),
                    "no silent drops on the happy path"
                );
                if let Some(bytes) = outcome.snapshot {
                    ServerSnapshot::decode(&bytes).expect("captured snapshot decodes");
                }
            }
            Err(ServeError::BadSnapshot(msg)) => {
                prop_assert!(
                    msg.contains("hot swap"),
                    "refusal must name the mid-swap cause, got: {msg}"
                );
                // Refused, not wedged: the same server instance must
                // complete a plan-free soak over the full trace.
                let retry = server
                    .run_soak(&trace, OpsPlan::none(), &mut SimClock)
                    .expect("server must stay serviceable after a refused snapshot");
                prop_assert_eq!(
                    retry.report.responses.len(),
                    trace.len(),
                    "no silent drops after recovery"
                );
            }
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }
}
