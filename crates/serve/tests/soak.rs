//! Soak-runtime end-to-end tests: clock-source equivalence, a seeded
//! multi-hour-equivalent soak campaign with injected SEU faults, one
//! snapshot/restore whose resumed run reproduces the uninterrupted
//! baseline byte-for-byte, one committed and one aborted atomic hot
//! swap, the layered watchdog's escalation ladder, and fail-closed
//! snapshot misuse.

use std::time::Duration;

use safex_core::health::{HealthConfig, HealthState};
use safex_nn::model::ModelBuilder;
use safex_nn::{EccConfig, HardenConfig, HardenedEngine, Model};
use safex_serve::{
    Arrival, ArrivalTrace, Backend, BatchPolicy, CacheConfig, Fleet, ModelId, OpsPlan, Outcome,
    PoolBackend, Request, ServeError, Server, ServerConfig, SimClock, StallOp, SwapOp, Tier,
    TrafficConfig, WallClock, WatchStage, WatchdogConfig,
};
use safex_tensor::{DetRng, Shape};
use safex_trace::RecordKind;

fn fixture(seed: u64) -> (Model, Vec<Vec<f32>>) {
    let mut rng = DetRng::new(seed);
    let model = ModelBuilder::new(Shape::vector(6))
        .dense(10, &mut rng)
        .unwrap()
        .relu()
        .dense(4, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    (model, inputs)
}

fn hardened(model: &Model, inputs: &[Vec<f32>]) -> HardenedEngine {
    // ECC repair on: single-bit SEU strikes are corrected in place and
    // surface as warnings, which is the fault model the soak injects.
    let config = HardenConfig {
        repair: Some(EccConfig::default()),
        ..HardenConfig::default()
    };
    let mut engine = HardenedEngine::new(model.clone(), config).unwrap();
    engine.calibrate(inputs).unwrap();
    engine
}

fn three_member_fleet(engine: &HardenedEngine) -> Fleet<PoolBackend> {
    Fleet::builder()
        .register("alpha", PoolBackend::new(engine, 1).unwrap())
        .register("beta", PoolBackend::new(engine, 1).unwrap())
        .register("gamma", PoolBackend::new(engine, 1).unwrap())
        .build()
        .unwrap()
}

fn assert_no_silent_drops(responses: &[safex_serve::Response], total: usize) {
    assert_eq!(responses.len(), total, "one response per request");
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r.id, i as u64, "response ids dense and sorted");
    }
}

/// The same trace produces a byte-identical report under the sim clock,
/// an empty-plan soak run, and a wall clock — pacing never decides.
#[test]
fn clock_sources_do_not_change_the_report() {
    let (model, inputs) = fixture(0x50AC);
    let engine = hardened(&model, &inputs);
    let trace = TrafficConfig {
        seed: 0x50AC,
        requests: 64,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let config = || ServerConfig::default().with_cache(CacheConfig::enabled(64));

    let mut plain = Server::new(config(), three_member_fleet(&engine)).unwrap();
    let reference = plain.run_trace(&trace).unwrap();

    let mut sim = Server::new(config(), three_member_fleet(&engine)).unwrap();
    let sim_soak = sim
        .run_soak(&trace, OpsPlan::none(), &mut SimClock)
        .unwrap();
    assert_eq!(
        sim_soak.report, reference,
        "empty-plan soak must degenerate"
    );
    assert!(sim_soak.snapshot.is_none());
    assert!(sim_soak.report.soak.is_default());
    assert_eq!(
        sim_soak.report.to_json().to_string_compact(),
        reference.to_json().to_string_compact(),
        "soak stats must stay out of the plain-report JSON"
    );

    let mut wall = Server::new(config(), three_member_fleet(&engine)).unwrap();
    let mut wall_clock = WallClock::new(Duration::from_nanos(200));
    let wall_soak = wall
        .run_soak(&trace, OpsPlan::none(), &mut wall_clock)
        .unwrap();
    assert_eq!(
        wall_soak.report, reference,
        "wall-clock pacing must not change a single byte of the report"
    );
}

/// The acceptance soak: a multi-hour-equivalent seeded campaign (at one
/// second per tick the trace spans ~4 hours) with an ECC-correctable SEU
/// strike repaired in flight, an uncorrectable strike walking a member to
/// SafeStop, one committed and one aborted hot swap, a periodic liveness
/// proof cadence, and a mid-traffic snapshot whose restored continuation
/// reproduces the uninterrupted run's report byte-for-byte.
#[test]
fn soak_campaign_survives_faults_swaps_and_restore() {
    let (model, inputs) = fixture(0xF1EE7);
    // Mostly-distinct inputs (repeats only via the fixture tail): the
    // cache sees real hits without starving the backends — a fully
    // cached stream would never exercise the struck member.
    let mut rng = DetRng::new(0x50A1);
    let mut many: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    many.extend(inputs.iter().cloned());
    let engine = hardened(&model, &many);
    // The replacement model for the committed swap: different weights,
    // same shape — a real model update, not a no-op.
    let (model2, _) = fixture(0xB0B2);
    let engine2 = hardened(&model2, &many);
    let good_digest = PoolBackend::new(&engine2, 1)
        .unwrap()
        .swap_digest()
        .unwrap();

    let trace = TrafficConfig {
        seed: 0x50AC50AC,
        requests: 2400,
        mean_interarrival: 3.0,
        deadline: 600,
        ..TrafficConfig::default()
    }
    .synthesize(&many)
    .unwrap();
    let config = || {
        ServerConfig::default()
            // Round-robin keeps routing work onto a Degraded member, so
            // the uncorrectable strike reliably walks the full ladder.
            .with_routing(safex_serve::RoutingKind::RoundRobin)
            .with_health(HealthConfig {
                window: 8,
                degrade_events: 2,
                stop_events: 6,
                recover_after: 16,
                resume_after: 0,
                warn_budget: 3,
            })
            .with_cache(CacheConfig::enabled(256))
            .with_watchdog(WatchdogConfig::enabled(1024).with_proof_cadence(3600))
            .with_campaign("soak-e15")
    };
    let alpha = ModelId::new(0);
    let beta = ModelId::new(1);
    let gamma = ModelId::new(2);
    let plan = |commit_incoming: PoolBackend, abort_incoming: PoolBackend| {
        OpsPlan::none()
            .with_snapshot_at(1200)
            .with_swap(SwapOp {
                at_request: 1440,
                model: beta,
                incoming: commit_incoming,
                expected_digest: Some(good_digest),
            })
            .with_swap(SwapOp {
                at_request: 1680,
                model: gamma,
                incoming: abort_incoming,
                // Deliberately wrong pin: verification must abort the
                // swap and keep the old model serving.
                expected_digest: Some(good_digest ^ 0xDEAD_BEEF),
            })
    };
    let strikes = |request: &Request, fleet: &mut Fleet<PoolBackend>| {
        if request.id == 200 {
            // Single-bit SEU: the ECC sidecar repairs it in place; the
            // ladder sees warnings, not failures.
            fleet
                .backend_mut(alpha)
                .unwrap()
                .strike_weights(0xA11CE, 1, 1)
                .unwrap();
        }
        if request.id == 1920 {
            // Double-bit SEU: uncorrectable, every decision flags, the
            // member walks its ladder to SafeStop.
            fleet
                .backend_mut(alpha)
                .unwrap()
                .strike_weights(0xBAD5EED, 1, 2)
                .unwrap();
        }
    };

    // --- The uninterrupted baseline run. ---
    let mut server = Server::new(config(), three_member_fleet(&engine)).unwrap();
    let base = server
        .run_soak_with(
            &trace,
            plan(
                PoolBackend::new(&engine2, 1).unwrap(),
                PoolBackend::new(&engine, 1).unwrap(),
            ),
            &mut SimClock,
            strikes,
        )
        .unwrap();
    assert_no_silent_drops(&base.report.responses, trace.len());

    // Both swaps resolved: one committed with the pinned digest, one
    // aborted with the old model untouched.
    assert_eq!(
        base.report.soak.swaps.len(),
        2,
        "{:?}",
        base.report.soak.swaps
    );
    let committed = &base.report.soak.swaps[0];
    assert!(committed.committed && committed.model == beta);
    assert_eq!(committed.digest, good_digest);
    let aborted = &base.report.soak.swaps[1];
    assert!(!aborted.committed && aborted.model == gamma);
    assert!(
        aborted.resolved_at >= aborted.requested_at,
        "sane swap latency"
    );
    let evidence = server.evidence();
    assert!(evidence.verify().is_ok());
    assert_eq!(evidence.records_of_kind(RecordKind::ModelSwapped).len(), 1);
    assert_eq!(evidence.records_of_kind(RecordKind::SwapAborted).len(), 1);
    assert!(evidence
        .records_of_kind(RecordKind::RuntimeRestored)
        .is_empty());
    // The aborted member kept serving on its old ladder the whole run.
    assert_eq!(server.model_state(gamma), Some(HealthState::Nominal));
    assert!(base.report.snapshot.models[gamma.index()].batches > 0);

    // The correctable strike surfaced as repaired-fault evidence, not as
    // a stop; the uncorrectable one walked alpha to SafeStop.
    assert!(!evidence
        .records_of_kind(RecordKind::FaultCorrected)
        .is_empty());
    assert_eq!(server.model_state(alpha), Some(HealthState::SafeStop));
    let stop_tick = base
        .report
        .transitions
        .iter()
        .find(|t| t.model == alpha && t.to == HealthState::SafeStop)
        .expect("alpha must reach SafeStop")
        .at_tick;
    // Zero silent corruption: after the stop, nothing serves from
    // alpha — not even its cache entries (purged on the transition).
    for r in &base.report.responses {
        if let Outcome::Completed { model, cached, .. } = &r.outcome {
            if *model == alpha {
                assert!(
                    r.resolved_at <= stop_tick,
                    "request {} served from the stopped member (cached={cached})",
                    r.id
                );
            }
        }
    }
    // The watchdog observed a healthy pipeline: heartbeats and periodic
    // proofs, no alarms.
    assert!(base.report.soak.watchdog_kicks.iter().all(|&k| k > 0));
    assert_eq!(base.report.soak.watchdog_alarms, 0);
    assert_eq!(base.report.soak.watchdog_escalations, 0);
    assert!(base.report.soak.watchdog_proofs > 0);
    assert_eq!(
        evidence.records_of_kind(RecordKind::WatchdogProof).len() as u64,
        base.report.soak.watchdog_proofs
    );

    // --- Snapshot / restore. ---
    let bytes = base.snapshot.as_ref().expect("plan captured a snapshot");
    let mut restored = Server::restore(config(), three_member_fleet(&engine), bytes).unwrap();
    assert!(restored.pending_restore());
    let resumed = restored
        .run_soak_with(
            &trace,
            plan(
                PoolBackend::new(&engine2, 1).unwrap(),
                PoolBackend::new(&engine, 1).unwrap(),
            ),
            &mut SimClock,
            strikes,
        )
        .unwrap();
    assert!(!restored.pending_restore());
    assert_no_silent_drops(&resumed.report.responses, trace.len());

    // Bit-for-bit fidelity: the resumed run's replay artefact is the
    // uninterrupted run's, byte for byte.
    assert_eq!(
        resumed.report.replay_json().to_string_compact(),
        base.report.replay_json().to_string_compact(),
        "restored continuation diverged from the uninterrupted baseline"
    );
    assert_eq!(resumed.report.replay_digest(), base.report.replay_digest());
    // The chains differ by exactly the restore evidence — nothing else.
    assert_ne!(
        resumed.report.chain_head, base.report.chain_head,
        "a restore is evidence; the chain must show it"
    );
    let restored_evidence = restored.evidence();
    assert!(restored_evidence.verify().is_ok());
    assert_eq!(
        restored_evidence
            .records_of_kind(RecordKind::RuntimeRestored)
            .len(),
        1
    );
    assert_eq!(
        restored_evidence.len(),
        server.evidence().len() + 1,
        "restored chain = baseline chain + one runtime_restored record"
    );
}

/// A starved batcher walks the watchdog's full escalation ladder —
/// missed-heartbeat alarm, fleet Degraded, fleet SafeStop — with every
/// step on the evidence chain, and the queued work drains as typed
/// refusals, never silently.
#[test]
fn watchdog_escalates_a_starved_stage_to_fleet_safe_stop() {
    let (model, inputs) = fixture(0xD06);
    let engine = hardened(&model, &inputs);
    let arrivals: Vec<Arrival> = (0..20u64)
        .map(|i| Arrival {
            at: 1 + i,
            request: Request::new(
                i,
                inputs[i as usize % inputs.len()].clone(),
                Tier::High,
                6_000,
            ),
        })
        .collect();
    let trace = ArrivalTrace::from_arrivals(arrivals).unwrap();
    let config = ServerConfig::default()
        .with_watchdog(WatchdogConfig::enabled(64).with_proof_cadence(1_000))
        .with_campaign("soak-watchdog");
    let mut server = Server::single(config, PoolBackend::new(&engine, 1).unwrap()).unwrap();
    let ops = OpsPlan::none().with_stall(StallOp {
        stage: WatchStage::Batcher,
        from: 0,
        until: 5_000,
    });
    let outcome = server.run_soak(&trace, ops, &mut SimClock).unwrap();
    let report = outcome.report;
    assert_no_silent_drops(&report.responses, trace.len());

    // The ladder: one alarm, then two forced escalations.
    assert_eq!(report.soak.watchdog_alarms, 1);
    assert_eq!(report.soak.watchdog_escalations, 2);
    let walk: Vec<(HealthState, HealthState)> =
        report.transitions.iter().map(|t| (t.from, t.to)).collect();
    assert_eq!(
        walk,
        vec![
            (HealthState::Nominal, HealthState::Degraded),
            (HealthState::Degraded, HealthState::SafeStop),
        ],
        "escalation must force the fleet down the ladder: {:?}",
        report.transitions
    );
    assert_eq!(server.service_level(), HealthState::SafeStop);
    // Every queued request resolves as a typed refusal once the fleet is
    // stopped — the watchdog converts a hang into a safe stop, not a loss.
    for r in &report.responses {
        assert!(
            matches!(r.outcome, Outcome::SafeStop { .. }),
            "request {} must fail safe under a stopped fleet: {:?}",
            r.id,
            r.outcome
        );
    }
    // Alarm and escalations are on the chain, with the stage named.
    let evidence = server.evidence();
    assert!(evidence.verify().is_ok());
    let alarms = evidence.records_of_kind(RecordKind::WatchdogAlarm);
    assert_eq!(alarms.len(), 1);
    let escalations = evidence.records_of_kind(RecordKind::WatchdogEscalation);
    assert_eq!(escalations.len(), 2);
    let actions: Vec<&str> = escalations
        .iter()
        .map(|r| {
            r.fields
                .iter()
                .find(|(k, _)| k == "action")
                .map(|(_, v)| match v {
                    safex_trace::Value::Str(s) => s.as_str(),
                    _ => "",
                })
                .unwrap()
        })
        .collect();
    assert_eq!(actions, vec!["degrade_fleet", "safe_stop_fleet"]);
    assert!(report.soak.watchdog_proofs > 0);
    // Admission kept proving liveness throughout (one kick per arrival).
    assert_eq!(
        report.soak.watchdog_kicks[WatchStage::Admission.index()],
        20
    );
}

/// Snapshot misuse fails closed with the typed error: corrupted bytes,
/// truncation, a mismatched configuration, a mismatched trace, and a
/// capture point colliding with a draining hot swap are all rejected
/// without partial state.
#[test]
fn snapshot_misuse_fails_closed() {
    let (model, inputs) = fixture(0xBAD);
    let engine = hardened(&model, &inputs);
    let trace = TrafficConfig {
        seed: 0xBAD,
        requests: 120,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let config = || ServerConfig::default().with_campaign("soak-misuse");
    let mut server = Server::new(config(), three_member_fleet(&engine)).unwrap();
    let outcome = server
        .run_soak(&trace, OpsPlan::none().with_snapshot_at(60), &mut SimClock)
        .unwrap();
    let bytes = outcome.snapshot.unwrap();

    // A valid restore works (sanity for the misuse cases below).
    assert!(Server::restore(config(), three_member_fleet(&engine), &bytes).is_ok());

    // Any flipped byte is caught by the checksum (or a layer above it).
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert!(matches!(
        Server::restore(config(), three_member_fleet(&engine), &corrupt),
        Err(ServeError::BadSnapshot(_))
    ));
    // Truncation fails closed.
    assert!(matches!(
        Server::restore(
            config(),
            three_member_fleet(&engine),
            &bytes[..bytes.len() - 5]
        ),
        Err(ServeError::BadSnapshot(_))
    ));
    // A different configuration must not adopt the state.
    let other = ServerConfig::default().with_campaign("someone-else");
    assert!(matches!(
        Server::restore(other, three_member_fleet(&engine), &bytes),
        Err(ServeError::BadSnapshot(_))
    ));
    // A different fleet shape must not adopt the state.
    assert!(matches!(
        Server::restore(
            config(),
            Fleet::single(PoolBackend::new(&engine, 1).unwrap()),
            &bytes
        ),
        Err(ServeError::BadSnapshot(_))
    ));
    // Running a restored server against the wrong trace is refused.
    let other_trace = TrafficConfig {
        seed: 0xD1FF,
        requests: 120,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let mut restored = Server::restore(config(), three_member_fleet(&engine), &bytes).unwrap();
    assert!(matches!(
        restored.run_trace(&other_trace),
        Err(ServeError::BadSnapshot(_))
    ));

    // A capture point that lands while a hot swap is still draining is
    // refused: a half-performed swap is not a capturable state.
    let arrivals: Vec<Arrival> = (0..3u64)
        .map(|i| Arrival {
            at: 1 + i,
            request: Request::new(i, inputs[0].clone(), Tier::High, 2_000),
        })
        .collect();
    let tiny = ArrivalTrace::from_arrivals(arrivals).unwrap();
    let config = ServerConfig::default()
        .with_policy(BatchPolicy::default().with_max_batch(1).with_queue_cap(8));
    let mut server = Server::single(config, PoolBackend::new(&engine, 1).unwrap()).unwrap();
    let ops = OpsPlan::none()
        .with_stall(StallOp {
            stage: WatchStage::Release,
            from: 0,
            until: 400,
        })
        .with_swap(SwapOp {
            at_request: 1,
            model: ModelId::new(0),
            incoming: PoolBackend::new(&engine, 1).unwrap(),
            expected_digest: None,
        })
        .with_snapshot_at(2);
    let err = server.run_soak(&tiny, ops, &mut SimClock).unwrap_err();
    assert!(
        matches!(err, ServeError::BadSnapshot(ref msg) if msg.contains("hot swap")),
        "expected the draining-swap refusal, got {err}"
    );
}

/// Duplicate member names are rejected with the typed error through
/// every construction path, and an out-of-range swap target is rejected
/// before the run starts.
#[test]
fn duplicate_members_and_bad_swap_targets_are_typed_errors() {
    let (model, inputs) = fixture(0xD0B);
    let engine = hardened(&model, &inputs);
    let dup = Fleet::builder()
        .register("primary", PoolBackend::new(&engine, 1).unwrap())
        .register("primary", PoolBackend::new(&engine, 1).unwrap())
        .build();
    assert!(
        matches!(dup, Err(ServeError::DuplicateMember(ref name)) if name == "primary"),
        "duplicate registration must fail typed, got {dup:?}"
    );
    // Server::single always builds the one canonical member.
    let server = Server::single(
        ServerConfig::default(),
        PoolBackend::new(&engine, 1).unwrap(),
    )
    .unwrap();
    assert_eq!(server.fleet().members()[0].name(), "primary");

    // A swap targeting a member outside the fleet is a config error
    // before any traffic moves.
    let trace = TrafficConfig {
        seed: 1,
        requests: 4,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let mut server = Server::single(
        ServerConfig::default(),
        PoolBackend::new(&engine, 1).unwrap(),
    )
    .unwrap();
    let ops = OpsPlan::none().with_swap(SwapOp {
        at_request: 0,
        model: ModelId::new(7),
        incoming: PoolBackend::new(&engine, 1).unwrap(),
        expected_digest: None,
    });
    assert!(matches!(
        server.run_soak(&trace, ops, &mut SimClock),
        Err(ServeError::BadConfig(_))
    ));
}

/// A falsifier-found counterexample replays as shaped soak traffic: the
/// witness episode of a temporal-bound violation becomes an ordered
/// request trace via `TrafficShape`, and two soak runs over it are
/// byte-identical — adversarial scenario search feeding the serving
/// evidence chain end to end.
#[test]
fn counterexample_replay_is_deterministic_soak_traffic() {
    use safex_falsify::{
        BackendKind, Falsifier, FalsifyConfig, Specification, TemporalErrorBound, TrajectoryRunner,
    };
    use safex_serve::TrafficShape;

    // Search the trajectory task for an episode that leaves the taxiway.
    let falsify_config = FalsifyConfig {
        workers: 2,
        ..FalsifyConfig::default()
    };
    let runner = TrajectoryRunner::new(BackendKind::F32, 11).unwrap();
    let specs: Vec<Box<dyn Specification>> = vec![Box::new(TemporalErrorBound::new(3.0).unwrap())];
    let report = Falsifier::new(falsify_config)
        .unwrap()
        .falsify(&runner, &specs)
        .unwrap();
    let cell = report
        .cell("temporal_error_bound")
        .expect("the trajectory task must yield a temporal counterexample");

    // Replay the exact witness episode and lift its observation stream.
    let episode = runner
        .episode(&cell.witness, falsify_config.eval_seed(cell.witness_eval))
        .unwrap();
    assert!(
        episode.max_abs_cte() > 3.0,
        "witness episode must actually violate the bound"
    );
    assert!(!episode.observations.is_empty());

    // A server dimensioned for the episode's frames.
    let mut rng = DetRng::new(0x7A11);
    let obs_len = episode.observations[0].len();
    let model = ModelBuilder::new(Shape::vector(obs_len))
        .dense(12, &mut rng)
        .unwrap()
        .relu()
        .dense(3, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let engine = hardened(&model, &episode.observations[..8]);

    // Frame order must survive: the shape carries payload i as request i.
    let shape = TrafficShape {
        burst: 4,
        gap: 3,
        ..TrafficShape::default()
    };
    let trace = shape.shape(&episode.observations).unwrap();
    assert_eq!(trace.len(), episode.observations.len());
    for (arrival, obs) in trace.arrivals().iter().zip(&episode.observations) {
        assert_eq!(&arrival.request.input, obs, "payloads must not be cycled");
    }

    let run = || {
        Server::new(ServerConfig::default(), three_member_fleet(&engine))
            .unwrap()
            .run_soak(&trace, OpsPlan::none(), &mut SimClock)
            .unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first.report, second.report,
        "counterexample replay must be byte-identical"
    );
    assert_no_silent_drops(&first.report.responses, episode.observations.len());
}
