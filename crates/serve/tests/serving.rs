//! End-to-end serving-runtime tests: deterministic replay, typed
//! shedding order, deadline semantics, and the health-gated degradation
//! walk under mid-traffic weight strikes.
//!
//! These tests run the single-model shape ([`Server::single`]) — the
//! pre-fleet deployment the fleet redesign had to keep working. The
//! fleet-specific behaviours (routing, per-model ladders, cache,
//! fairness) live in `tests/fleet.rs`.

use safex_core::health::{HealthConfig, HealthState};
use safex_nn::model::ModelBuilder;
use safex_nn::{CrcStrategy, EccConfig, Engine, HardenConfig, HardenedEngine, Model};
use safex_serve::{
    Arrival, ArrivalTrace, BatchPolicy, ModelId, Outcome, PoolBackend, Request, Server,
    ServerConfig, ShedReason, Tier, TrafficConfig,
};
use safex_tensor::{DetRng, Shape};

fn fixture() -> (Model, Vec<Vec<f32>>) {
    let mut rng = DetRng::new(0x5E4E);
    let model = ModelBuilder::new(Shape::vector(6))
        .dense(10, &mut rng)
        .unwrap()
        .relu()
        .dense(4, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let inputs: Vec<Vec<f32>> = (0..24)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    (model, inputs)
}

fn hardened(model: &Model, inputs: &[Vec<f32>]) -> HardenedEngine {
    let mut engine = HardenedEngine::new(model.clone(), HardenConfig::default()).unwrap();
    engine.calibrate(inputs).unwrap();
    engine
}

fn strike_health() -> HealthConfig {
    HealthConfig {
        window: 8,
        degrade_events: 2,
        stop_events: 6,
        recover_after: 16,
        resume_after: 0,
        warn_budget: 3,
    }
}

#[test]
fn replay_is_byte_identical_for_any_worker_count() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    let trace = TrafficConfig {
        seed: 0xABCD,
        requests: 200,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();

    let mut reference_json = None;
    for workers in [1usize, 2, 4, 8] {
        let backend = PoolBackend::new(&engine, workers).unwrap();
        let mut server = Server::single(ServerConfig::default(), backend).unwrap();
        let report = server.run_trace(&trace).unwrap();
        let json = report.to_json().to_string_compact();
        match &reference_json {
            None => reference_json = Some((report, json)),
            Some((ref_report, ref_json)) => {
                assert_eq!(
                    &report, ref_report,
                    "{workers} workers diverged from 1 worker"
                );
                assert_eq!(&json, ref_json, "{workers}-worker JSON diverged");
            }
        }
    }
    // And a plain rerun reproduces the artefact byte for byte.
    let backend = PoolBackend::new(&engine, 4).unwrap();
    let mut server = Server::single(ServerConfig::default(), backend).unwrap();
    let again = server
        .run_trace(&trace)
        .unwrap()
        .to_json()
        .to_string_compact();
    assert_eq!(again, reference_json.unwrap().1);
}

#[test]
fn overload_sheds_strictly_lowest_criticality_first() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    // A burst far beyond queue capacity: low/medium flood, then high
    // arrivals landing on the full queue.
    let mut arrivals = Vec::new();
    for i in 0..24u64 {
        let tier = match i % 4 {
            0 | 1 => Tier::Low,
            2 => Tier::Medium,
            _ => Tier::High,
        };
        arrivals.push(Arrival {
            at: 1 + i / 8,
            request: Request::new(i, inputs[i as usize % inputs.len()].clone(), tier, 5_000),
        });
    }
    let trace = ArrivalTrace::from_arrivals(arrivals).unwrap();
    let config = ServerConfig::default().with_policy(
        BatchPolicy::default()
            .with_max_batch(4)
            .with_queue_cap(8)
            .with_flush_slack(10)
            .with_max_linger(10_000),
    );
    let backend = PoolBackend::new(&engine, 2).unwrap();
    let mut server = Server::single(config, backend).unwrap();
    let report = server.run_trace(&trace).unwrap();

    let shed: Vec<_> = report
        .responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Shed(_)))
        .collect();
    assert!(!shed.is_empty(), "this burst must overload the queue");
    // Strict criticality order: High is never sacrificed (Low and
    // Medium victims exist throughout the burst), and Low bears the
    // brunt — a Medium is only shed once the queue holds no Low.
    assert!(
        shed.iter().all(|r| r.tier != Tier::High),
        "high-criticality work must never be shed in this mix"
    );
    let low_shed = shed.iter().filter(|r| r.tier == Tier::Low).count();
    let medium_shed = shed.iter().filter(|r| r.tier == Tier::Medium).count();
    assert!(
        low_shed >= medium_shed,
        "low tiers must bear the brunt: {low_shed} low vs {medium_shed} medium"
    );
    assert!(low_shed > 0, "the flood must sacrifice best-effort work");
    for r in &report.responses {
        if r.tier == Tier::High {
            assert!(
                matches!(r.outcome, Outcome::Completed { .. }),
                "high-criticality request {} not served: {:?}",
                r.id,
                r.outcome
            );
        }
    }
    // Displacements name their displacer, and it always outranks the
    // victim.
    for r in &shed {
        if let Outcome::Shed(ShedReason::Displaced { by }) = r.outcome {
            let displacer = &report.responses[by as usize];
            assert!(
                displacer.tier > r.tier,
                "displacer {} must outrank victim {}",
                by,
                r.id
            );
        }
    }
}

#[test]
fn expired_deadlines_produce_timeouts_never_stale_responses() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    // Deadlines tighter than one batch's service time: with
    // `batch_overhead + per_item` at the defaults (8 + 4), a deadline 5
    // ticks after arrival can never be met.
    let arrivals: Vec<Arrival> = (0..12u64)
        .map(|i| Arrival {
            at: 1 + i,
            request: Request::new(
                i,
                inputs[i as usize % inputs.len()].clone(),
                Tier::High,
                1 + i + 5,
            ),
        })
        .collect();
    let trace = ArrivalTrace::from_arrivals(arrivals).unwrap();
    let backend = PoolBackend::new(&engine, 1).unwrap();
    let mut server = Server::single(ServerConfig::default(), backend).unwrap();
    let report = server.run_trace(&trace).unwrap();
    for r in &report.responses {
        assert_eq!(
            r.outcome,
            Outcome::Timeout,
            "request {} should have timed out, got {:?}",
            r.id,
            r.outcome
        );
        assert!(
            r.resolved_at >= r.arrived_at,
            "resolution cannot precede arrival"
        );
    }
    assert_eq!(report.snapshot.total_completed(), 0);
    assert_eq!(report.snapshot.timeout[Tier::High.index()], 12);
}

#[test]
fn weight_strike_walks_the_ladder_with_zero_silent_corruption() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    let trace = TrafficConfig {
        seed: 0xFA117,
        requests: 160,
        mean_interarrival: 4.0,
        deadline: 500,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let config = ServerConfig::default().with_health(strike_health());
    let backend = PoolBackend::new(&engine, 2).unwrap();
    let mut server = Server::single(config.clone(), backend).unwrap();
    // Persistent weight corruption lands just before request 40 is
    // admitted; the CRC flags every subsequent decision, so the ladder
    // must walk Nominal → Degraded → SafeStop.
    let strike = |request: &Request, fleet: &mut safex_serve::Fleet<PoolBackend>| {
        if request.id == 40 {
            fleet
                .backend_mut(ModelId::new(0))
                .unwrap()
                .strike_weights(0xBAD5EED, 1, 2)
                .unwrap();
        }
    };
    let report = server.run_trace_with(&trace, strike).unwrap();

    let walk: Vec<(HealthState, HealthState)> =
        report.transitions.iter().map(|t| (t.from, t.to)).collect();
    assert_eq!(
        walk,
        vec![
            (HealthState::Nominal, HealthState::Degraded),
            (HealthState::Degraded, HealthState::SafeStop),
        ],
        "ladder must walk down exactly once: {:?}",
        report.transitions
    );
    // Transitions name the (single) model.
    assert!(report
        .transitions
        .iter()
        .all(|t| t.model == ModelId::new(0)));
    // Every transition is in the evidence chain and the chain verifies.
    assert!(server.evidence().verify().is_ok());
    assert_eq!(
        server
            .evidence()
            .records_of_kind(safex_trace::RecordKind::HealthTransition)
            .len(),
        2
    );

    // Zero silent corruption: every completed response either matches
    // the pristine reference classification or carries `flagged: true`.
    let mut reference = Engine::new(model.clone());
    let mut silent = 0usize;
    let mut safestopped = 0usize;
    for r in &report.responses {
        match &r.outcome {
            Outcome::Completed { class, flagged, .. } => {
                let truth = reference
                    .classify(&trace.arrivals()[r.id as usize].request.input)
                    .unwrap()
                    .class;
                if *class != truth && !flagged {
                    silent += 1;
                }
            }
            Outcome::SafeStop { .. } => safestopped = safestopped.saturating_add(1),
            _ => {}
        }
    }
    assert_eq!(silent, 0, "no unflagged wrong answer may be released");
    assert!(
        safestopped > 0,
        "requests after the stop transition must fail safe"
    );
    // And the whole faulted run still replays byte-for-byte.
    let backend = PoolBackend::new(&engine, 8).unwrap();
    let mut server2 = Server::single(config, backend).unwrap();
    let replay = server2.run_trace_with(&trace, strike).unwrap();
    assert_eq!(replay, report, "faulted replay diverged");
    assert_eq!(
        replay.to_json().to_string_compact(),
        report.to_json().to_string_compact()
    );
}

#[test]
fn fused_strategy_serves_byte_identically_to_full() {
    // The fused verify-on-read kernels must be invisible at the serving
    // boundary: same verdicts, same ladder walk, same evidence — for a
    // clean run and for a mid-traffic strike, with and without repair.
    let (model, inputs) = fixture();
    let trace = TrafficConfig {
        seed: 0xFA117,
        requests: 160,
        mean_interarrival: 4.0,
        deadline: 500,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let config = ServerConfig::default().with_health(strike_health());
    let strike = |request: &Request, fleet: &mut safex_serve::Fleet<PoolBackend>| {
        if request.id == 40 {
            fleet
                .backend_mut(ModelId::new(0))
                .unwrap()
                .strike_weights(0xBAD5EED, 1, 2)
                .unwrap();
        }
    };
    for repair in [false, true] {
        let mut reports = Vec::new();
        for strategy in [CrcStrategy::Full, CrcStrategy::Fused] {
            let harden = HardenConfig {
                crc_strategy: strategy,
                repair: repair.then(EccConfig::default),
                ..HardenConfig::default()
            };
            let mut engine = HardenedEngine::new(model.clone(), harden).unwrap();
            engine.calibrate(&inputs).unwrap();
            let backend = PoolBackend::new(&engine, 4).unwrap();
            let mut server = Server::single(config.clone(), backend).unwrap();
            reports.push(server.run_trace_with(&trace, strike).unwrap());
        }
        assert_eq!(
            reports[0], reports[1],
            "Fused serve run diverged from Full (repair={repair})"
        );
        assert_eq!(
            reports[0].to_json().to_string_compact(),
            reports[1].to_json().to_string_compact(),
            "Fused serve JSON diverged from Full (repair={repair})"
        );
    }
}

#[test]
fn safe_stop_fails_all_requests_without_execution() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    // Stop thresholds so tight the first flagged decision stops the
    // server; strike before the very first request.
    let config = ServerConfig::default().with_health(HealthConfig {
        window: 4,
        degrade_events: 1,
        stop_events: 1,
        recover_after: 16,
        resume_after: 0,
        warn_budget: 3,
    });
    let trace = TrafficConfig {
        seed: 3,
        requests: 30,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let backend = PoolBackend::new(&engine, 1).unwrap();
    let mut server = Server::single(config, backend).unwrap();
    let report = server
        .run_trace_with(&trace, |request, fleet| {
            if request.id == 0 {
                fleet
                    .backend_mut(ModelId::new(0))
                    .unwrap()
                    .strike_weights(1, 1, 1)
                    .unwrap();
            }
        })
        .unwrap();
    assert_eq!(server.service_level(), HealthState::SafeStop);
    let after_stop: Vec<_> = report
        .responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::SafeStop { .. }))
        .collect();
    assert!(
        !after_stop.is_empty(),
        "latched safe stop must refuse later traffic"
    );
    // Nothing after the stop completes.
    let stop_tick = report.transitions.last().unwrap().at_tick;
    for r in &report.responses {
        if matches!(r.outcome, Outcome::Completed { .. }) {
            assert!(
                r.resolved_at <= stop_tick,
                "request {} completed after safe stop",
                r.id
            );
        }
    }
}
