//! Fleet-serving end-to-end tests: golden pinned reports across worker
//! counts × routing policies × cache settings, per-member degradation
//! under a mid-traffic strike, admission fairness under a low-tier
//! flood, pinned routing, and the cache evidence trail.

use safex_core::health::{HealthConfig, HealthState};
use safex_nn::model::ModelBuilder;
use safex_nn::{HardenConfig, HardenedEngine, Model};
use safex_serve::{
    Arrival, ArrivalTrace, BatchPolicy, CacheConfig, FairnessPolicy, Fleet, ModelId, Outcome,
    PoolBackend, Request, RoutingKind, ServeReport, Server, ServerConfig, Tier, TrafficConfig,
};
use safex_tensor::{DetRng, Shape};
use safex_trace::{Fnv64, RecordKind};

fn fixture() -> (Model, Vec<Vec<f32>>) {
    let mut rng = DetRng::new(0xF1EE7);
    let model = ModelBuilder::new(Shape::vector(6))
        .dense(10, &mut rng)
        .unwrap()
        .relu()
        .dense(4, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    (model, inputs)
}

fn hardened(model: &Model, inputs: &[Vec<f32>]) -> HardenedEngine {
    let mut engine = HardenedEngine::new(model.clone(), HardenConfig::default()).unwrap();
    engine.calibrate(inputs).unwrap();
    engine
}

fn three_member_fleet(engine: &HardenedEngine, workers: usize) -> Fleet<PoolBackend> {
    Fleet::builder()
        .register("alpha", PoolBackend::new(engine, workers).unwrap())
        .register("beta", PoolBackend::new(engine, workers).unwrap())
        .register("gamma", PoolBackend::new(engine, workers).unwrap())
        .build()
        .unwrap()
}

/// FNV-1a over the canonical JSON artefact: the whole report, byte for
/// byte.
fn digest(report: &ServeReport) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(report.to_json().to_string_compact().as_bytes());
    h.finish()
}

/// The no-silent-drops audit: exactly one response per trace request,
/// ids dense and sorted.
fn assert_no_silent_drops(report: &ServeReport, trace: &ArrivalTrace) {
    assert_eq!(
        report.responses.len(),
        trace.len(),
        "every request must produce exactly one response"
    );
    for (i, r) in report.responses.iter().enumerate() {
        assert_eq!(r.id, i as u64, "response ids must be dense and sorted");
    }
    assert_eq!(
        report.snapshot.total(),
        trace.len() as u64,
        "metrics must account for every response"
    );
}

#[test]
fn golden_fleet_reports_pinned_across_workers_policies_and_cache() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    let trace = TrafficConfig {
        seed: 0xF1EE7,
        requests: 240,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();

    // Golden digests, one per (routing, cache) corner, computed from the
    // 1-worker reference run. These pin the full report artefact —
    // responses, routing decisions, per-member ladders, cache hits,
    // metrics — so any behavioural drift in the fleet scheduler shows up
    // as a digest mismatch here.
    let golden: [(RoutingKind, bool, u64); 4] = [
        (RoutingKind::TierLeastLoaded, false, 0x2b6b1de054ca656f),
        (RoutingKind::TierLeastLoaded, true, 0xcea14a9111e52a98),
        (RoutingKind::RoundRobin, false, 0x52cdb9efff17a7c3),
        (RoutingKind::RoundRobin, true, 0xf59d08d7c49b736c),
    ];
    for (routing, cache_on, pinned) in golden {
        let config = || {
            let cache = if cache_on {
                CacheConfig::enabled(256)
            } else {
                CacheConfig::default()
            };
            ServerConfig::default()
                .with_routing(routing)
                .with_cache(cache)
        };
        let mut server = Server::new(config(), three_member_fleet(&engine, 1)).unwrap();
        let reference = server.run_trace(&trace).unwrap();
        assert_no_silent_drops(&reference, &trace);
        if cache_on {
            assert!(
                reference.snapshot.cache_hits > 0,
                "cycling 16 inputs over 240 requests must hit the cache ({routing:?})"
            );
        } else {
            assert_eq!(reference.snapshot.cache_hits, 0);
            assert_eq!(reference.snapshot.cache_lookups, 0);
        }
        assert_eq!(
            digest(&reference),
            pinned,
            "golden digest drift ({routing:?}, cache={cache_on}): got {:#018x}",
            digest(&reference)
        );
        for workers in [2usize, 4, 8] {
            let mut server = Server::new(config(), three_member_fleet(&engine, workers)).unwrap();
            let parallel = server.run_trace(&trace).unwrap();
            assert_eq!(
                parallel, reference,
                "{workers}-worker report diverged from sequential ({routing:?}, cache={cache_on})"
            );
            assert_eq!(digest(&parallel), pinned, "{workers}-worker digest drift");
        }
    }
}

#[test]
fn struck_member_walks_its_own_ladder_while_fleet_serves() {
    let (model, inputs) = fixture();
    // Mostly-distinct inputs (repeats only in the tail): the cache gets
    // real hits without starving the backends of work — a fully cached
    // stream would never exercise the struck member.
    let mut rng = DetRng::new(0xD007);
    let mut many: Vec<Vec<f32>> = (0..180)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    many.extend(inputs.iter().cloned());
    let engine = hardened(&model, &many);
    let trace = TrafficConfig {
        seed: 0xD007,
        requests: 240,
        mean_interarrival: 3.0,
        deadline: 600,
        tier_weights: [3, 2, 1],
    }
    .synthesize(&many)
    .unwrap();
    let config = ServerConfig::default()
        .with_health(HealthConfig {
            window: 8,
            degrade_events: 2,
            stop_events: 6,
            recover_after: 16,
            resume_after: 0,
            warn_budget: 3,
        })
        .with_cache(CacheConfig::enabled(256));
    let struck = ModelId::new(1);
    let mut server = Server::new(config, three_member_fleet(&engine, 2)).unwrap();
    let report = server
        .run_trace_with(&trace, |request, fleet| {
            if request.id == 60 {
                fleet
                    .backend_mut(struck)
                    .unwrap()
                    .strike_weights(0xBAD5EED, 1, 2)
                    .unwrap();
            }
        })
        .unwrap();

    assert_no_silent_drops(&report, &trace);

    // The struck member walks its own full ladder…
    let walk: Vec<(HealthState, HealthState)> = report
        .transitions
        .iter()
        .filter(|t| t.model == struck)
        .map(|t| (t.from, t.to))
        .collect();
    assert_eq!(
        walk,
        vec![
            (HealthState::Nominal, HealthState::Degraded),
            (HealthState::Degraded, HealthState::SafeStop),
        ],
        "struck member must walk Nominal → Degraded → SafeStop: {:?}",
        report.transitions
    );
    assert_eq!(
        report.models[struck.index()].final_state,
        HealthState::SafeStop
    );
    assert!(report.models[struck.index()].time_stopped > 0);

    // …while its peers never leave Nominal and keep carrying load after
    // the strike.
    for peer in [ModelId::new(0), ModelId::new(2)] {
        assert_eq!(
            report.models[peer.index()].final_state,
            HealthState::Nominal,
            "peer {peer} must be untouched by m1's faults"
        );
        assert!(
            report.transitions.iter().all(|t| t.model != peer),
            "peer {peer} must record no transitions"
        );
        assert!(report.snapshot.models[peer.index()].batches > 0);
    }

    // Fleet-level guarantee: every high-criticality request completes —
    // one member failing must not cost the fleet its safety tier.
    for r in &report.responses {
        if r.tier == Tier::High {
            assert!(
                matches!(r.outcome, Outcome::Completed { .. }),
                "high-criticality request {} not served: {:?}",
                r.id,
                r.outcome
            );
        }
    }
    // After the struck member stops, nothing more completes on it.
    let stop_tick = report
        .transitions
        .iter()
        .find(|t| t.model == struck && t.to == HealthState::SafeStop)
        .unwrap()
        .at_tick;
    for r in &report.responses {
        if let Outcome::Completed { model, cached, .. } = &r.outcome {
            if *model == struck && !cached {
                assert!(
                    r.resolved_at <= stop_tick,
                    "request {} completed on the stopped member",
                    r.id
                );
            }
        }
    }
    // The evidence chain binds the whole story: ladder transitions and
    // cache hits, verifiable end to end.
    assert!(server.evidence().verify().is_ok());
    assert_eq!(
        server
            .evidence()
            .records_of_kind(RecordKind::HealthTransition)
            .len(),
        report.transitions.len()
    );
    assert_eq!(
        server
            .evidence()
            .records_of_kind(RecordKind::CacheHit)
            .len() as u64,
        report.snapshot.cache_hits
    );
    assert!(report.snapshot.cache_hits > 0);
}

#[test]
fn aging_and_reserved_slots_bound_starvation_under_low_tier_flood() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    // A sustained low-tier flood (one Low every 2 ticks) with a steady
    // high-criticality stream (one High every 8 ticks) — offered load
    // well beyond fleet capacity, so *something* must wait. Strict
    // priority starves the Lows; fairness must not, while still keeping
    // High p99 inside its deadline.
    let mut arrivals = Vec::new();
    let mut id = 0u64;
    for t in 1..=800u64 {
        if t % 2 == 0 {
            arrivals.push(Arrival {
                at: t,
                request: Request::new(
                    id,
                    inputs[id as usize % inputs.len()].clone(),
                    Tier::Low,
                    t + 300,
                ),
            });
            id += 1;
        }
        if t % 8 == 0 {
            arrivals.push(Arrival {
                at: t,
                request: Request::new(
                    id,
                    inputs[id as usize % inputs.len()].clone(),
                    Tier::High,
                    t + 300,
                ),
            });
            id += 1;
        }
    }
    let trace = ArrivalTrace::from_arrivals(arrivals).unwrap();
    let deadline_budget = 300u64;
    let run = |fairness: FairnessPolicy| {
        let config = ServerConfig::default()
            .with_policy(
                BatchPolicy::default()
                    .with_max_batch(4)
                    .with_queue_cap(64)
                    .with_max_linger(16),
            )
            .with_fairness(fairness);
        let fleet = Fleet::builder()
            .register("alpha", PoolBackend::new(&engine, 1).unwrap())
            .register("beta", PoolBackend::new(&engine, 1).unwrap())
            .build()
            .unwrap();
        let mut server = Server::new(config, fleet).unwrap();
        let report = server.run_trace(&trace).unwrap();
        assert_no_silent_drops(&report, &trace);
        report
    };

    let fair = run(FairnessPolicy::default());
    let strict = run(FairnessPolicy::strict());

    // Fairness invariant 1: the flood must not push high-criticality
    // p99 past its deadline budget — reserved high slots see to that.
    let high = Tier::High.index();
    assert!(
        fair.snapshot.tier_latency[high].p99 <= deadline_budget,
        "high p99 {} exceeds the {}-tick deadline budget",
        fair.snapshot.tier_latency[high].p99,
        deadline_budget
    );
    assert_eq!(
        fair.snapshot.timeout[high] + fair.snapshot.safe_stop[high],
        0,
        "no high-criticality request may miss under the flood"
    );

    // Fairness invariant 2: aged low-tier work is eventually served —
    // starvation is bounded, not just unlikely.
    let low = Tier::Low.index();
    assert!(
        fair.snapshot.completed[low] > 0,
        "aging must eventually serve the flooded low tier"
    );
    assert!(
        fair.snapshot.completed[low] > strict.snapshot.completed[low],
        "fairness must serve strictly more low-tier work than strict \
         priority ({} vs {})",
        fair.snapshot.completed[low],
        strict.snapshot.completed[low]
    );
    // And the price was paid knowingly: strict priority leaves the low
    // tier to time out (or be displaced), never silently.
    assert_eq!(
        strict.snapshot.total(),
        trace.len() as u64,
        "strict mode must still account for every request"
    );
}

#[test]
fn pinned_requests_live_and_die_with_their_member() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    // Stop thresholds so tight the first flagged decision stops the
    // member; strike member 0 before any traffic.
    let config = ServerConfig::default().with_health(HealthConfig {
        window: 4,
        degrade_events: 1,
        stop_events: 1,
        recover_after: 16,
        resume_after: 0,
        warn_budget: 3,
    });
    let input = inputs[0].clone();
    let arrivals: Vec<Arrival> = (0..8u64)
        .map(|i| {
            let request = Request::new(i, input.clone(), Tier::High, 1_000 + i);
            // Even ids pinned to the doomed member, odd ids to the
            // healthy one.
            let request = request.pinned(ModelId::new((i % 2) as u16));
            Arrival { at: 1 + i, request }
        })
        .collect();
    let trace = ArrivalTrace::from_arrivals(arrivals).unwrap();
    let fleet = Fleet::builder()
        .register("doomed", PoolBackend::new(&engine, 1).unwrap())
        .register("healthy", PoolBackend::new(&engine, 1).unwrap())
        .build()
        .unwrap();
    let mut server = Server::new(config, fleet).unwrap();
    let report = server
        .run_trace_with(&trace, |request, fleet| {
            if request.id == 0 {
                fleet
                    .backend_mut(ModelId::new(0))
                    .unwrap()
                    .strike_weights(1, 1, 1)
                    .unwrap();
            }
        })
        .unwrap();
    assert_no_silent_drops(&report, &trace);
    assert_eq!(
        server.model_state(ModelId::new(0)),
        Some(HealthState::SafeStop)
    );
    assert_eq!(
        server.model_state(ModelId::new(1)),
        Some(HealthState::Nominal)
    );
    for r in &report.responses {
        if r.id % 2 == 0 {
            // Pinned to the struck member: the pin's fate, by name.
            assert_eq!(
                r.outcome,
                Outcome::SafeStop {
                    model: Some(ModelId::new(0))
                },
                "request {} pinned to the struck member must fail safe, got {:?}",
                r.id,
                r.outcome
            );
        } else {
            match &r.outcome {
                Outcome::Completed { model, .. } => {
                    assert_eq!(*model, ModelId::new(1), "pin must be honoured")
                }
                other => panic!("request {} on the healthy pin failed: {other:?}", r.id),
            }
        }
    }
}

#[test]
fn cache_hits_are_exact_verified_and_on_evidence() {
    let (model, inputs) = fixture();
    let engine = hardened(&model, &inputs);
    // One single input repeated: after the first completion, every
    // admission can answer from the cache.
    let input = inputs[0].clone();
    let arrivals: Vec<Arrival> = (0..20u64)
        .map(|i| Arrival {
            at: 1 + i * 40,
            request: Request::new(i, input.clone(), Tier::Medium, 1 + i * 40 + 200),
        })
        .collect();
    let trace = ArrivalTrace::from_arrivals(arrivals).unwrap();
    let config = ServerConfig::default().with_cache(CacheConfig::enabled(16));
    let mut server = Server::new(config, three_member_fleet(&engine, 1)).unwrap();
    let report = server.run_trace(&trace).unwrap();
    assert_no_silent_drops(&report, &trace);

    let first = &report.responses[0];
    let Outcome::Completed {
        class: fresh_class,
        cached: false,
        model: fresh_model,
        ..
    } = first.outcome
    else {
        panic!("first request must execute fresh: {:?}", first.outcome);
    };
    let mut hits = 0u64;
    for r in &report.responses[1..] {
        if let Outcome::Completed {
            class,
            cached: true,
            model,
            ..
        } = r.outcome
        {
            hits += 1;
            assert_eq!(class, fresh_class, "a hit must return the verified class");
            assert_eq!(model, fresh_model, "a hit names the computing model");
            assert_eq!(r.arrived_at, r.resolved_at, "hits answer at admission");
        }
    }
    assert!(hits > 0, "repeated input must hit the cache");
    assert_eq!(report.snapshot.cache_hits, hits);
    assert_eq!(report.snapshot.total_cached(), hits);
    assert_eq!(report.snapshot.cache_lookups, trace.len() as u64);
    assert!(report.snapshot.cache_hit_rate() > 0.5);
    // Every hit is an evidence record; the chain verifies end to end.
    assert_eq!(
        server
            .evidence()
            .records_of_kind(RecordKind::CacheHit)
            .len() as u64,
        hits
    );
    assert!(server.evidence().verify().is_ok());

    // The same trace with the cache off executes everything fresh and
    // emits no cache evidence.
    let config = ServerConfig::default();
    let mut server = Server::new(config, three_member_fleet(&engine, 1)).unwrap();
    let report = server.run_trace(&trace).unwrap();
    assert_eq!(report.snapshot.cache_hits, 0);
    assert_eq!(report.snapshot.cache_lookups, 0);
    assert!(server
        .evidence()
        .records_of_kind(RecordKind::CacheHit)
        .is_empty());
}
