//! Golden snapshot: the falsification report is byte-identical for any
//! worker count, for both inference backends, on a classification domain
//! and on the temporal trajectory task — and its canonical digest is
//! pinned so a refactor cannot silently shift the counterexamples.

use safex_falsify::{
    BackendKind, ClassificationRunner, ConfidentMisclass, Domain, Falsifier, FalsifyConfig,
    FalsifyReport, PatternDisagreement, ScenarioRunner, Specification, SupervisorMisGate,
    TemporalErrorBound, TrajectoryRunner,
};

const TRAIN_SEED: u64 = 11;

fn config(workers: usize) -> FalsifyConfig {
    FalsifyConfig {
        seed: 0xFA15,
        grid: 2,
        rounds: 2,
        samples_per_round: 12,
        elite: 4,
        workers,
    }
}

fn class_specs() -> Vec<Box<dyn Specification>> {
    vec![
        Box::new(SupervisorMisGate),
        Box::new(PatternDisagreement::new(0.3).unwrap()),
        Box::new(ConfidentMisclass::new(0.7).unwrap()),
    ]
}

fn trajectory_specs() -> Vec<Box<dyn Specification>> {
    vec![
        Box::new(SupervisorMisGate),
        Box::new(ConfidentMisclass::new(0.7).unwrap()),
        Box::new(TemporalErrorBound::new(3.0).unwrap()),
    ]
}

/// FNV-1a over a canonical little-endian encoding of every report field;
/// floats hash by bit pattern so the digest is exact, not approximate.
fn digest(report: &FalsifyReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&report.seed.to_le_bytes());
    eat(&report.evaluations.to_le_bytes());
    eat(&report
        .first_violation_eval
        .unwrap_or(u64::MAX)
        .to_le_bytes());
    for summary in &report.specs {
        eat(summary.spec.as_bytes());
        eat(summary.kind.tag().as_bytes());
        eat(&summary.best_margin.to_bits().to_le_bytes());
        eat(&summary.violations.to_le_bytes());
    }
    for cell in &report.cells {
        eat(cell.spec.as_bytes());
        eat(cell.kind.tag().as_bytes());
        for range in &cell.region {
            eat(range.name.as_bytes());
            eat(&range.lo.to_bits().to_le_bytes());
            eat(&range.hi.to_bits().to_le_bytes());
        }
        for value in &cell.witness.values {
            eat(&value.to_bits().to_le_bytes());
        }
        eat(&cell.witness_eval.to_le_bytes());
        eat(&cell.witness_digest.to_le_bytes());
        eat(&cell.margin.to_bits().to_le_bytes());
        eat(&cell.violations.to_le_bytes());
    }
    h
}

fn check_pinned(
    runner: &dyn ScenarioRunner,
    specs: &[Box<dyn Specification>],
    pinned: u64,
    label: &str,
) {
    let reference = Falsifier::new(config(1))
        .unwrap()
        .falsify(runner, specs)
        .unwrap();
    assert_eq!(
        digest(&reference),
        pinned,
        "golden digest drifted for {label}: got {:#018x}",
        digest(&reference)
    );
    for workers in [2usize, 4, 8] {
        let parallel = Falsifier::new(config(workers))
            .unwrap()
            .falsify(runner, specs)
            .unwrap();
        assert_eq!(
            parallel, reference,
            "{workers}-worker report diverged from sequential ({label})"
        );
        assert_eq!(digest(&parallel), pinned);
    }
}

#[test]
fn classification_report_is_byte_identical_across_workers_and_pinned() {
    let golden: [(BackendKind, u64); 2] = [
        (BackendKind::F32, 0xf3a2_6e3f_699f_bffc),
        (BackendKind::Q16, 0x80a5_0967_b16a_6384),
    ];
    for (backend, pinned) in golden {
        let runner = ClassificationRunner::new(Domain::Automotive, backend, TRAIN_SEED).unwrap();
        check_pinned(
            &runner,
            &class_specs(),
            pinned,
            &format!("automotive/{}", backend.tag()),
        );
    }
}

#[test]
fn trajectory_report_is_byte_identical_across_workers_and_pinned() {
    let golden: [(BackendKind, u64); 2] = [
        (BackendKind::F32, 0xa8a9_bbfc_7a12_b042),
        (BackendKind::Q16, 0xa27c_418e_b13c_715e),
    ];
    for (backend, pinned) in golden {
        let runner = TrajectoryRunner::new(backend, TRAIN_SEED).unwrap();
        check_pinned(
            &runner,
            &trajectory_specs(),
            pinned,
            &format!("trajectory/{}", backend.tag()),
        );
    }
}
