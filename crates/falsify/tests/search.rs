//! The falsification acceptance contract: the search driver
//! deterministically rediscovers a violation region in every scenario
//! domain — the three single-shot classification workloads and the
//! temporal trajectory task — and every witness it reports replays
//! exactly.

use safex_falsify::{
    BackendKind, ClassificationRunner, ConfidentMisclass, CounterexampleCell, Domain, Falsifier,
    FalsifyConfig, FalsifyReport, PatternDisagreement, ScenarioRunner, Specification,
    SupervisorMisGate, TemporalErrorBound, TrajectoryRunner,
};

const TRAIN_SEED: u64 = 11;

fn config() -> FalsifyConfig {
    FalsifyConfig {
        workers: 2,
        ..Default::default()
    }
}

fn class_specs() -> Vec<Box<dyn Specification>> {
    vec![
        Box::new(SupervisorMisGate),
        Box::new(PatternDisagreement::new(0.3).unwrap()),
        Box::new(ConfidentMisclass::new(0.7).unwrap()),
    ]
}

/// Checks the structural invariants every counterexample cell must hold:
/// violated margin, a region whose bounds contain the witness, dimension
/// names matching the runner's space, and an exactly replayable witness.
fn check_cell(runner: &dyn ScenarioRunner, config: &FalsifyConfig, cell: &CounterexampleCell) {
    assert!(cell.margin <= 0.0, "{}: margin {}", cell.spec, cell.margin);
    assert!(cell.violations > 0);
    assert_eq!(cell.region.len(), runner.space().dims());
    for (range, param) in cell.region.iter().zip(runner.space().params()) {
        assert_eq!(range.name, param.name);
        assert!(range.lo <= range.hi);
    }
    for (value, range) in cell.witness.values.iter().zip(&cell.region) {
        assert!(
            (range.lo..=range.hi).contains(value),
            "witness {value} outside region [{}, {}]",
            range.lo,
            range.hi
        );
    }
    // The witness evaluation replays byte-for-byte from its eval seed.
    let replay = runner
        .run(&cell.witness, config.eval_seed(cell.witness_eval))
        .unwrap();
    assert_eq!(replay.witness_digest, cell.witness_digest);
}

fn search_classification(domain: Domain) -> (ClassificationRunner, FalsifyReport) {
    let runner = ClassificationRunner::new(domain, BackendKind::F32, TRAIN_SEED).unwrap();
    let report = Falsifier::new(config())
        .unwrap()
        .falsify(&runner, &class_specs())
        .unwrap();
    (runner, report)
}

#[test]
fn automotive_search_finds_a_violation_region() {
    let (runner, report) = search_classification(Domain::Automotive);
    assert!(report.falsified());
    assert!(report.first_violation_eval.is_some());
    let cell = report
        .cell("confident_misclass")
        .expect("automotive must yield a confidently wrong region");
    check_cell(&runner, &config(), cell);
}

#[test]
fn railway_search_finds_a_violation_region() {
    let (runner, report) = search_classification(Domain::Railway);
    let cell = report
        .cell("confident_misclass")
        .expect("railway must yield a confidently wrong region");
    check_cell(&runner, &config(), cell);
}

#[test]
fn space_search_finds_a_violation_region() {
    let (runner, report) = search_classification(Domain::Space);
    let cell = report
        .cell("confident_misclass")
        .expect("space must yield a confidently wrong region");
    check_cell(&runner, &config(), cell);
}

#[test]
fn trajectory_search_falsifies_the_temporal_bound() {
    let runner = TrajectoryRunner::new(BackendKind::F32, TRAIN_SEED).unwrap();
    let bound = 3.0;
    let specs: Vec<Box<dyn Specification>> = vec![
        Box::new(SupervisorMisGate),
        Box::new(ConfidentMisclass::new(0.7).unwrap()),
        Box::new(TemporalErrorBound::new(bound).unwrap()),
    ];
    let report = Falsifier::new(config())
        .unwrap()
        .falsify(&runner, &specs)
        .unwrap();
    let cell = report
        .cell("temporal_error_bound")
        .expect("the trajectory task must violate the cte bound");
    check_cell(&runner, &config(), cell);
    // The witness episode really does leave the taxiway: replay it
    // through the runner's episode hook and check the excursion itself.
    let trace = runner
        .episode(&cell.witness, config().eval_seed(cell.witness_eval))
        .unwrap();
    assert!(
        trace.max_abs_cte() > bound,
        "witness episode peaked at {:.2}, bound {bound}",
        trace.max_abs_cte()
    );
}

#[test]
fn searches_are_deterministic() {
    let runner =
        ClassificationRunner::new(Domain::Automotive, BackendKind::F32, TRAIN_SEED).unwrap();
    let driver = Falsifier::new(config()).unwrap();
    let a = driver.falsify(&runner, &class_specs()).unwrap();
    let b = driver.falsify(&runner, &class_specs()).unwrap();
    assert_eq!(a, b, "the same (config, runner, specs) must reproduce");
    let other = Falsifier::new(FalsifyConfig {
        seed: 0xBEEF,
        ..config()
    })
    .unwrap()
    .falsify(&runner, &class_specs())
    .unwrap();
    assert_ne!(a, other, "a different master seed must change the search");
}
