//! Error type for the falsification engine.

use std::error::Error;
use std::fmt;

use safex_core::CoreError;
use safex_nn::NnError;
use safex_patterns::PatternError;
use safex_scenarios::ScenarioError;
use safex_supervision::SupervisionError;

/// Errors produced by scenario spaces, runners, and the search driver.
#[derive(Debug)]
#[non_exhaustive]
pub enum FalsifyError {
    /// A search configuration field is invalid; the message names it.
    BadConfig(String),
    /// A scenario space or point is malformed.
    BadSpace(String),
    /// A witness file failed structural or semantic validation; nothing
    /// was decoded.
    BadWitness(String),
    /// Scenario generation failed.
    Scenario(ScenarioError),
    /// Model construction, training, or inference failed.
    Nn(NnError),
    /// Safety-pattern construction failed.
    Pattern(PatternError),
    /// Pipeline construction or decision failed.
    Core(CoreError),
    /// Input supervision failed.
    Supervision(SupervisionError),
}

impl fmt::Display for FalsifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FalsifyError::BadConfig(msg) => write!(f, "invalid falsifier config: {msg}"),
            FalsifyError::BadSpace(msg) => write!(f, "invalid scenario space: {msg}"),
            FalsifyError::BadWitness(msg) => write!(f, "invalid witness file: {msg}"),
            FalsifyError::Scenario(e) => write!(f, "scenario generation failed: {e}"),
            FalsifyError::Nn(e) => write!(f, "model evaluation failed: {e}"),
            FalsifyError::Pattern(e) => write!(f, "pattern construction failed: {e}"),
            FalsifyError::Core(e) => write!(f, "pipeline failed: {e}"),
            FalsifyError::Supervision(e) => write!(f, "supervision failed: {e}"),
        }
    }
}

impl Error for FalsifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FalsifyError::BadConfig(_)
            | FalsifyError::BadSpace(_)
            | FalsifyError::BadWitness(_) => None,
            FalsifyError::Scenario(e) => Some(e),
            FalsifyError::Nn(e) => Some(e),
            FalsifyError::Pattern(e) => Some(e),
            FalsifyError::Core(e) => Some(e),
            FalsifyError::Supervision(e) => Some(e),
        }
    }
}

impl From<ScenarioError> for FalsifyError {
    fn from(e: ScenarioError) -> Self {
        FalsifyError::Scenario(e)
    }
}

impl From<NnError> for FalsifyError {
    fn from(e: NnError) -> Self {
        FalsifyError::Nn(e)
    }
}

impl From<PatternError> for FalsifyError {
    fn from(e: PatternError) -> Self {
        FalsifyError::Pattern(e)
    }
}

impl From<CoreError> for FalsifyError {
    fn from(e: CoreError) -> Self {
        FalsifyError::Core(e)
    }
}

impl From<SupervisionError> for FalsifyError {
    fn from(e: SupervisionError) -> Self {
        FalsifyError::Supervision(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_layer() {
        let e = FalsifyError::BadConfig("workers".into());
        assert!(e.to_string().contains("workers"));
        let e = FalsifyError::from(ScenarioError::InvalidConfig("noise".into()));
        assert!(e.to_string().contains("noise"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FalsifyError>();
    }
}
