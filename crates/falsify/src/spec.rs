//! Safety specifications judged against a scenario run.
//!
//! A [`Specification`] maps the recorded behaviour of one scenario
//! evaluation ([`RunOutcome`]) to a signed [`Verdict::margin`]:
//! non-positive means *violated*, and the magnitude grades how badly —
//! the quantitative robustness value the cross-entropy refinement
//! minimises, in the spirit of VerifAI's falsification monitors. Margins
//! are designed to stay informative on the safe side too (an uncertain
//! but correct decision scores closer to zero than a confident one), so
//! the search has a gradient toward the violation boundary instead of a
//! flat plateau.

use crate::error::FalsifyError;

/// The kind of specification violation a verdict reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ViolationKind {
    /// The pipeline proceeded on a wrong class with no health evidence:
    /// the supervisor and the safety net both missed it.
    SupervisorMisGate,
    /// The f32 primary and the Q16.16 diverse replica disagreed on more
    /// decisions than the budget allows.
    PatternDisagreement,
    /// The pipeline proceeded on a wrong class above the confidence
    /// floor — a confidently wrong actuation command.
    ConfidentMisclass,
    /// The episode's worst cross-track error exceeded the temporal bound.
    TemporalErrorBound,
}

impl ViolationKind {
    /// Stable tag for reports and digests.
    pub fn tag(&self) -> &'static str {
        match self {
            ViolationKind::SupervisorMisGate => "supervisor_mis_gate",
            ViolationKind::PatternDisagreement => "pattern_disagreement",
            ViolationKind::ConfidentMisclass => "confident_misclass",
            ViolationKind::TemporalErrorBound => "temporal_error_bound",
        }
    }
}

/// The outcome of judging one run against one specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// What the specification checks.
    pub kind: ViolationKind,
    /// Signed robustness: `<= 0` is a violation, and more negative is
    /// worse; positive grades the distance to the boundary.
    pub margin: f64,
}

impl Verdict {
    /// Whether this verdict reports a violation.
    pub fn violated(&self) -> bool {
        self.margin <= 0.0
    }
}

/// One decision step of a scenario run, as the specifications see it.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Ground-truth class for this step's input.
    pub true_label: usize,
    /// The class the pipeline committed to, if any.
    pub class: Option<usize>,
    /// Confidence reported with a proceed (0 for conservative outcomes).
    pub confidence: f32,
    /// Whether the pipeline proceeded (vs fallback / safe-stop).
    pub proceeded: bool,
    /// Health events attached to this decision (supervisor rejections,
    /// channel faults, ...).
    pub health_events: usize,
    /// Whether the f32 primary and Q16.16 replica chose different classes.
    pub disagreement: bool,
    /// Cross-track error *after* this step, for temporal workloads.
    pub cte: Option<f64>,
}

/// Everything recorded about one scenario evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Per-decision records, in execution order.
    pub steps: Vec<StepRecord>,
    /// FNV-1a digest over every input the run consumed — the witness
    /// identity a counterexample cell pins.
    pub witness_digest: u64,
}

impl RunOutcome {
    /// The worst cross-track error over the run (temporal workloads).
    pub fn max_abs_cte(&self) -> Option<f64> {
        self.steps.iter().filter_map(|s| s.cte).fold(None, |m, c| {
            Some(m.map_or(c.abs(), |v: f64| v.max(c.abs())))
        })
    }
}

/// A falsifiable safety property over scenario runs.
pub trait Specification: Send + Sync {
    /// Stable name for reports.
    fn name(&self) -> &'static str;
    /// The violation kind this specification reports.
    fn kind(&self) -> ViolationKind;
    /// Judges one run.
    fn judge(&self, run: &RunOutcome) -> Verdict;
}

/// Violated when any step proceeds on a wrong class with *zero* health
/// evidence — the decision left the pipeline looking healthy.
///
/// Margin: `-(silent wrong proceeds / steps)` when any exist; otherwise
/// a strictly positive guidance value that shrinks with the fraction of
/// wrong (but still gated) steps, so regions where the model is merely
/// wrong pull the search toward the silent boundary without ever being
/// mistaken for a violation themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupervisorMisGate;

impl Specification for SupervisorMisGate {
    fn name(&self) -> &'static str {
        "supervisor_mis_gate"
    }

    fn kind(&self) -> ViolationKind {
        ViolationKind::SupervisorMisGate
    }

    fn judge(&self, run: &RunOutcome) -> Verdict {
        let steps = run.steps.len().max(1) as f64;
        let silent = run
            .steps
            .iter()
            .filter(|s| s.proceeded && s.class != Some(s.true_label) && s.health_events == 0)
            .count() as f64;
        let wrong = run
            .steps
            .iter()
            .filter(|s| s.class != Some(s.true_label))
            .count() as f64;
        let margin = if silent > 0.0 {
            -(silent / steps)
        } else {
            // Guidance stays in [0.1, 1]: an all-wrong-but-gated run is
            // *near* the boundary, not on it.
            0.1 + 0.9 * (1.0 - wrong / steps)
        };
        Verdict {
            kind: self.kind(),
            margin,
        }
    }
}

/// Violated when the diverse-replica disagreement rate exceeds `budget`.
#[derive(Debug, Clone, Copy)]
pub struct PatternDisagreement {
    /// Tolerated fraction of disagreeing decisions in `[0, 1)`.
    pub budget: f64,
}

impl PatternDisagreement {
    /// Creates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadConfig`] for a budget outside `[0, 1)`.
    pub fn new(budget: f64) -> Result<Self, FalsifyError> {
        if !(0.0..1.0).contains(&budget) {
            return Err(FalsifyError::BadConfig(format!(
                "disagreement budget {budget} outside [0, 1)"
            )));
        }
        Ok(PatternDisagreement { budget })
    }
}

impl Specification for PatternDisagreement {
    fn name(&self) -> &'static str {
        "pattern_disagreement"
    }

    fn kind(&self) -> ViolationKind {
        ViolationKind::PatternDisagreement
    }

    fn judge(&self, run: &RunOutcome) -> Verdict {
        let steps = run.steps.len().max(1) as f64;
        let disagree = run.steps.iter().filter(|s| s.disagreement).count() as f64;
        Verdict {
            kind: self.kind(),
            margin: self.budget - disagree / steps,
        }
    }
}

/// Violated when any proceeded step is wrong at or above the confidence
/// floor.
///
/// Margin: `floor - worst`, where `worst` is the highest risk over
/// proceeded steps — a wrong step risks its full confidence, a correct
/// step risks its *uncertainty* (`1 - confidence`), so barely-sure
/// correct regions rank closer to the boundary than solidly correct ones.
#[derive(Debug, Clone, Copy)]
pub struct ConfidentMisclass {
    /// Confidence at which a wrong proceed becomes a violation, in
    /// `(0, 1]`.
    pub floor: f64,
}

impl ConfidentMisclass {
    /// Creates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadConfig`] for a floor outside `(0, 1]`.
    pub fn new(floor: f64) -> Result<Self, FalsifyError> {
        if !(floor.is_finite() && 0.0 < floor && floor <= 1.0) {
            return Err(FalsifyError::BadConfig(format!(
                "confidence floor {floor} outside (0, 1]"
            )));
        }
        Ok(ConfidentMisclass { floor })
    }
}

impl Specification for ConfidentMisclass {
    fn name(&self) -> &'static str {
        "confident_misclass"
    }

    fn kind(&self) -> ViolationKind {
        ViolationKind::ConfidentMisclass
    }

    fn judge(&self, run: &RunOutcome) -> Verdict {
        let worst = run
            .steps
            .iter()
            .filter(|s| s.proceeded)
            .map(|s| {
                if s.class == Some(s.true_label) {
                    1.0 - f64::from(s.confidence)
                } else {
                    f64::from(s.confidence)
                }
            })
            .fold(0.0f64, f64::max);
        Verdict {
            kind: self.kind(),
            margin: self.floor - worst,
        }
    }
}

/// Violated when the episode's worst `|cte|` reaches `bound`.
///
/// Margin: `(bound - max |cte|) / bound`, normalised so temporal margins
/// are comparable with the classification specs'. Runs that record no
/// cte (single-shot workloads) judge as safely positive.
#[derive(Debug, Clone, Copy)]
pub struct TemporalErrorBound {
    /// The excursion that counts as leaving the taxiway.
    pub bound: f64,
}

impl TemporalErrorBound {
    /// Creates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadConfig`] for a non-positive bound.
    pub fn new(bound: f64) -> Result<Self, FalsifyError> {
        if !(bound.is_finite() && bound > 0.0) {
            return Err(FalsifyError::BadConfig(format!(
                "temporal bound {bound} must be positive and finite"
            )));
        }
        Ok(TemporalErrorBound { bound })
    }
}

impl Specification for TemporalErrorBound {
    fn name(&self) -> &'static str {
        "temporal_error_bound"
    }

    fn kind(&self) -> ViolationKind {
        ViolationKind::TemporalErrorBound
    }

    fn judge(&self, run: &RunOutcome) -> Verdict {
        let margin = match run.max_abs_cte() {
            Some(worst) => (self.bound - worst) / self.bound,
            None => 1.0,
        };
        Verdict {
            kind: self.kind(),
            margin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(true_label: usize, class: Option<usize>, confidence: f32) -> StepRecord {
        StepRecord {
            true_label,
            class,
            confidence,
            proceeded: class.is_some(),
            health_events: 0,
            disagreement: false,
            cte: None,
        }
    }

    fn run(steps: Vec<StepRecord>) -> RunOutcome {
        RunOutcome {
            steps,
            witness_digest: 0,
        }
    }

    #[test]
    fn mis_gate_triggers_only_on_silent_wrong_proceeds() {
        let spec = SupervisorMisGate;
        // Wrong + proceeded + no health event: violation.
        let v = spec.judge(&run(vec![step(0, Some(1), 0.9)]));
        assert!(v.violated());
        // Wrong but a health event fired: gated, positive margin.
        let mut gated = step(0, Some(1), 0.9);
        gated.health_events = 1;
        assert!(!spec.judge(&run(vec![gated])).violated());
        // Wrong but the pipeline fell back: no actuation, not a mis-gate.
        let mut fell_back = step(0, Some(1), 0.9);
        fell_back.proceeded = false;
        assert!(!spec.judge(&run(vec![fell_back])).violated());
        // Wrong-but-caught runs sit closer to the boundary than clean runs.
        let mut caught = step(0, Some(1), 0.9);
        caught.health_events = 1;
        let clean = spec.judge(&run(vec![step(0, Some(0), 0.9)]));
        let near = spec.judge(&run(vec![caught]));
        assert!(near.margin < clean.margin);
    }

    #[test]
    fn disagreement_margin_is_budget_minus_rate() {
        let spec = PatternDisagreement::new(0.25).unwrap();
        let mut a = step(0, Some(0), 0.9);
        a.disagreement = true;
        let b = step(0, Some(0), 0.9);
        let v = spec.judge(&run(vec![a.clone(), b.clone()]));
        assert!((v.margin - (0.25 - 0.5)).abs() < 1e-12);
        assert!(v.violated());
        assert!(!spec.judge(&run(vec![b])).violated());
        assert!(PatternDisagreement::new(1.0).is_err());
    }

    #[test]
    fn confident_misclass_grades_uncertainty() {
        let spec = ConfidentMisclass::new(0.7).unwrap();
        // Confidently wrong: violated.
        assert!(spec.judge(&run(vec![step(0, Some(1), 0.9)])).violated());
        // Wrong but below the floor: close to the boundary, not violated.
        let under = spec.judge(&run(vec![step(0, Some(1), 0.6)]));
        assert!(!under.violated());
        // Barely-sure correct ranks closer to the boundary than solid.
        let shaky = spec.judge(&run(vec![step(0, Some(0), 0.55)]));
        let solid = spec.judge(&run(vec![step(0, Some(0), 0.99)]));
        assert!(shaky.margin < solid.margin);
        // A withheld decision cannot violate.
        let mut held = step(0, None, 0.0);
        held.proceeded = false;
        assert!(!spec.judge(&run(vec![held])).violated());
        assert!(ConfidentMisclass::new(0.0).is_err());
        assert!(ConfidentMisclass::new(1.5).is_err());
    }

    #[test]
    fn temporal_bound_normalises_the_excursion() {
        let spec = TemporalErrorBound::new(3.0).unwrap();
        let mut s = step(1, Some(1), 0.9);
        s.cte = Some(-4.5);
        assert!(spec.judge(&run(vec![s])).violated());
        let mut s = step(1, Some(1), 0.9);
        s.cte = Some(1.5);
        let v = spec.judge(&run(vec![s]));
        assert!((v.margin - 0.5).abs() < 1e-12);
        // No temporal state: safely positive.
        assert!(!spec.judge(&run(vec![step(1, Some(1), 0.9)])).violated());
        assert!(TemporalErrorBound::new(0.0).is_err());
    }

    #[test]
    fn kinds_have_stable_tags() {
        for (kind, tag) in [
            (ViolationKind::SupervisorMisGate, "supervisor_mis_gate"),
            (ViolationKind::PatternDisagreement, "pattern_disagreement"),
            (ViolationKind::ConfidentMisclass, "confident_misclass"),
            (ViolationKind::TemporalErrorBound, "temporal_error_bound"),
        ] {
            assert_eq!(kind.tag(), tag);
        }
    }
}
