//! The deterministic falsification search driver.
//!
//! Search proceeds in two phases, both pure functions of the
//! configuration:
//!
//! 1. **Grid seeding.** The space's coarse lattice
//!    ([`ScenarioSpace::grid`]) is evaluated exhaustively, so no corner
//!    of the space is unexplored at the resolution the grid affords.
//! 2. **Cross-entropy refinement.** Each round ranks every evaluation so
//!    far by its worst specification margin and resamples around the
//!    incumbent best point, with the per-dimension step size taken from
//!    the elite (lowest-margin) set's spread — clamped to the domain,
//!    discrete dimensions biased toward the best level with an
//!    exploration floor. Margins grade distance to the violation
//!    boundary even on the safe side, so refinement walks toward
//!    violations instead of plateauing.
//!
//! **Determinism argument.** Every evaluation's RNG seed is derived from
//! `(config.seed, global evaluation index)` *before* work is partitioned
//! across threads, the partitioning is the same contiguous
//! [`chunk_lens`] split campaigns use, and results are stitched back in
//! index order. Elite selection sorts by `(margin, evaluation index)` —
//! a total order with no float ties left to thread timing — and each
//! round's resampling RNG is seeded from `(config.seed, round)` alone.
//! The report is therefore byte-identical for any worker count.

use safex_core::chunk_lens;
use safex_tensor::DetRng;

use crate::error::FalsifyError;
use crate::runner::ScenarioRunner;
use crate::space::{ParamDomain, ParamRange, ScenarioPoint};
use crate::spec::{Specification, ViolationKind};

/// Multiplier decorrelating per-evaluation seeds (the same constant the
/// campaign driver uses for cell seeds).
const EVAL_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;
/// Multiplier decorrelating per-round resampling streams.
const ROUND_SEED_STRIDE: u64 = 0xA24B_AED4_963E_E407;
/// Fraction of the domain width the refinement standard deviation never
/// drops below, so the search cannot collapse onto a single point.
const STD_FLOOR_FRAC: f64 = 0.08;
/// Probability a discrete dimension explores a uniform level.
const DISCRETE_EXPLORE: f64 = 0.15;
/// Probability a discrete dimension repeats the incumbent best level
/// (the remainder resamples among the elite levels).
const DISCRETE_EXPLOIT: f64 = 0.5;

/// Search budget and partitioning for [`Falsifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FalsifyConfig {
    /// Master seed; every evaluation and resampling stream derives from
    /// it.
    pub seed: u64,
    /// Seeding-lattice resolution per continuous dimension.
    pub grid: usize,
    /// Cross-entropy refinement rounds after seeding.
    pub rounds: usize,
    /// Points sampled per refinement round.
    pub samples_per_round: usize,
    /// Size of the elite set the refinement fits.
    pub elite: usize,
    /// Worker threads for scenario evaluation (byte-identical results
    /// for any value).
    pub workers: usize,
}

impl Default for FalsifyConfig {
    fn default() -> Self {
        FalsifyConfig {
            seed: 0xFA15,
            grid: 3,
            rounds: 3,
            samples_per_round: 16,
            elite: 5,
            workers: 1,
        }
    }
}

impl FalsifyConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadConfig`] for a zero grid, worker count,
    /// or elite size, or a positive round count with no samples.
    pub fn validate(&self) -> Result<(), FalsifyError> {
        if self.grid == 0 {
            return Err(FalsifyError::BadConfig(
                "grid must be at least 1 point per dimension".into(),
            ));
        }
        if self.workers == 0 {
            return Err(FalsifyError::BadConfig("workers must be at least 1".into()));
        }
        if self.elite == 0 {
            return Err(FalsifyError::BadConfig(
                "elite set must be non-empty".into(),
            ));
        }
        if self.rounds > 0 && self.samples_per_round == 0 {
            return Err(FalsifyError::BadConfig(
                "refinement rounds need samples_per_round >= 1".into(),
            ));
        }
        Ok(())
    }

    /// The RNG seed evaluation `eval` ran under — fixed before any work
    /// is partitioned. Public so a witness evaluation (via
    /// [`CounterexampleCell::witness_eval`]) can be replayed exactly,
    /// e.g. as shaped soak traffic.
    pub fn eval_seed(&self, eval: u64) -> u64 {
        self.seed.wrapping_add(eval.wrapping_mul(EVAL_SEED_STRIDE))
    }
}

/// One violating parameter region found by the search.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterexampleCell {
    /// Name of the violated specification.
    pub spec: String,
    /// What kind of violation this cell reports.
    pub kind: ViolationKind,
    /// Per-dimension bounding box of every violating point.
    pub region: Vec<ParamRange>,
    /// The worst violating point.
    pub witness: ScenarioPoint,
    /// Global index of the witness evaluation; feed it to
    /// [`FalsifyConfig::eval_seed`] to replay the run exactly.
    pub witness_eval: u64,
    /// FNV digest of the inputs the witness evaluation consumed.
    pub witness_digest: u64,
    /// The witness's margin (the most negative seen for this spec).
    pub margin: f64,
    /// How many evaluations violated this spec.
    pub violations: u64,
}

/// Best margin and violation count for one specification (present even
/// when the spec was never violated).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecSummary {
    /// Specification name.
    pub spec: String,
    /// Violation kind the spec reports.
    pub kind: ViolationKind,
    /// The lowest margin any evaluation reached.
    pub best_margin: f64,
    /// How many evaluations violated the spec.
    pub violations: u64,
}

/// The full result of one falsification search.
#[derive(Debug, Clone, PartialEq)]
pub struct FalsifyReport {
    /// The master seed the search ran under.
    pub seed: u64,
    /// Total scenario evaluations performed.
    pub evaluations: u64,
    /// Global index of the first evaluation that violated any spec.
    pub first_violation_eval: Option<u64>,
    /// Per-spec best margins, in the order the specs were passed.
    pub specs: Vec<SpecSummary>,
    /// One cell per violated spec, in the order the specs were passed.
    pub cells: Vec<CounterexampleCell>,
}

impl FalsifyReport {
    /// Whether any specification was violated.
    pub fn falsified(&self) -> bool {
        !self.cells.is_empty()
    }

    /// The cell for a named spec, if that spec was violated.
    pub fn cell(&self, spec: &str) -> Option<&CounterexampleCell> {
        self.cells.iter().find(|c| c.spec == spec)
    }
}

/// One completed evaluation, as the driver tracks it.
#[derive(Debug, Clone)]
struct EvalRecord {
    eval: u64,
    point: ScenarioPoint,
    /// Margin per spec, in spec order.
    margins: Vec<f64>,
    /// The search score: the worst margin across specs.
    score: f64,
    witness_digest: u64,
}

/// The search driver: grid seeding plus cross-entropy refinement over a
/// [`ScenarioRunner`]'s parameter space.
#[derive(Debug, Clone)]
pub struct Falsifier {
    config: FalsifyConfig,
}

impl Falsifier {
    /// Creates a driver with a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadConfig`] if the configuration fails
    /// [`FalsifyConfig::validate`].
    pub fn new(config: FalsifyConfig) -> Result<Self, FalsifyError> {
        config.validate()?;
        Ok(Falsifier { config })
    }

    /// The configuration this driver runs under.
    pub fn config(&self) -> &FalsifyConfig {
        &self.config
    }

    /// Runs the search: seeds the grid, refines for the configured
    /// rounds, and reports every violated specification as a
    /// counterexample cell.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadConfig`] for an empty spec list and
    /// propagates runner failures (first in evaluation order).
    pub fn falsify(
        &self,
        runner: &dyn ScenarioRunner,
        specs: &[Box<dyn Specification>],
    ) -> Result<FalsifyReport, FalsifyError> {
        if specs.is_empty() {
            return Err(FalsifyError::BadConfig(
                "falsification needs at least one specification".into(),
            ));
        }
        let space = runner.space();
        let seed_points = space.grid(self.config.grid)?;
        let mut all = self.evaluate_batch(runner, specs, 0, &seed_points)?;

        for round in 0..self.config.rounds {
            let elite = self.elite_of(&all);
            let mut rng = DetRng::new(
                self.config
                    .seed
                    .wrapping_add((round as u64 + 1).wrapping_mul(ROUND_SEED_STRIDE)),
            );
            let mut next = Vec::with_capacity(self.config.samples_per_round);
            for _ in 0..self.config.samples_per_round {
                next.push(self.resample(space.params(), &elite, &mut rng));
            }
            let base = all.len() as u64;
            all.extend(self.evaluate_batch(runner, specs, base, &next)?);
        }

        let names: Vec<String> = space.params().iter().map(|p| p.name.clone()).collect();
        Ok(self.report(specs, all, &names))
    }

    /// The elite set: the `elite` lowest-scoring records, ties broken by
    /// evaluation index — a total, thread-independent order.
    fn elite_of<'a>(&self, all: &'a [EvalRecord]) -> Vec<&'a EvalRecord> {
        let mut order: Vec<&EvalRecord> = all.iter().collect();
        order.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.eval.cmp(&b.eval)));
        order.truncate(self.config.elite.min(order.len()));
        order
    }

    /// Draws one refined point: a Gaussian around the incumbent best
    /// (`elite[0]`) whose per-dimension step size is the elite set's
    /// spread — wide while the elite is diverse, tight once it has
    /// converged, never below the exploration floor.
    fn resample(
        &self,
        params: &[crate::space::ParamSpec],
        elite: &[&EvalRecord],
        rng: &mut DetRng,
    ) -> ScenarioPoint {
        let values = params
            .iter()
            .enumerate()
            .map(|(d, p)| {
                let vals: Vec<f64> = elite.iter().map(|e| e.point.values[d]).collect();
                let best = vals[0];
                match p.domain {
                    ParamDomain::Continuous { lo, hi } => {
                        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                            / vals.len() as f64;
                        let std = var.sqrt().max(STD_FLOOR_FRAC * (hi - lo));
                        p.domain.clamp(rng.gaussian(best, std))
                    }
                    ParamDomain::Discrete { levels } => {
                        if rng.chance(DISCRETE_EXPLORE) {
                            rng.below_usize(levels) as f64
                        } else if rng.chance(DISCRETE_EXPLOIT) {
                            best
                        } else {
                            vals[rng.below_usize(vals.len())]
                        }
                    }
                }
            })
            .collect();
        ScenarioPoint { values }
    }

    /// Evaluates a batch of points on `workers` scoped threads.
    ///
    /// Every point's global evaluation index — and hence its RNG seed —
    /// is assigned *before* partitioning; chunks are contiguous and
    /// stitched in index order; on failure the first error in index
    /// order wins. This mirrors the campaign driver exactly.
    fn evaluate_batch(
        &self,
        runner: &dyn ScenarioRunner,
        specs: &[Box<dyn Specification>],
        base_eval: u64,
        points: &[ScenarioPoint],
    ) -> Result<Vec<EvalRecord>, FalsifyError> {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let evaluate = |offset: usize, point: &ScenarioPoint| -> Result<EvalRecord, FalsifyError> {
            let eval = base_eval + offset as u64;
            let seed = self.config.eval_seed(eval);
            let outcome = runner.run(point, seed)?;
            let margins: Vec<f64> = specs.iter().map(|s| s.judge(&outcome).margin).collect();
            let score = margins.iter().copied().fold(f64::INFINITY, f64::min);
            Ok(EvalRecord {
                eval,
                point: point.clone(),
                margins,
                score,
                witness_digest: outcome.witness_digest,
            })
        };
        let workers = self.config.workers.min(points.len());
        if workers == 1 {
            return points
                .iter()
                .enumerate()
                .map(|(i, p)| evaluate(i, p))
                .collect();
        }
        let lens = chunk_lens(points.len(), workers);
        let results: Vec<Result<Vec<EvalRecord>, FalsifyError>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(lens.len());
            let mut rest = points;
            let mut start = 0usize;
            for &len in &lens {
                let (chunk, tail) = rest.split_at(len);
                rest = tail;
                let chunk_start = start;
                start += len;
                handles.push(scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, p)| evaluate(chunk_start + i, p))
                        .collect::<Result<Vec<_>, _>>()
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("falsify worker panicked"))
                .collect()
        });
        let mut records = Vec::with_capacity(points.len());
        for chunk in results {
            records.extend(chunk?);
        }
        Ok(records)
    }

    /// Folds the evaluation log into the final report.
    fn report(
        &self,
        specs: &[Box<dyn Specification>],
        all: Vec<EvalRecord>,
        dim_names: &[String],
    ) -> FalsifyReport {
        let first_violation_eval = all
            .iter()
            .filter(|e| e.margins.iter().any(|&m| m <= 0.0))
            .map(|e| e.eval)
            .min();
        let mut summaries = Vec::with_capacity(specs.len());
        let mut cells = Vec::new();
        for (si, spec) in specs.iter().enumerate() {
            let best_margin = all
                .iter()
                .map(|e| e.margins[si])
                .fold(f64::INFINITY, f64::min);
            let violating: Vec<&EvalRecord> = all.iter().filter(|e| e.margins[si] <= 0.0).collect();
            summaries.push(SpecSummary {
                spec: spec.name().to_string(),
                kind: spec.kind(),
                best_margin,
                violations: violating.len() as u64,
            });
            if violating.is_empty() {
                continue;
            }
            let region = (0..dim_names.len())
                .map(|d| {
                    let lo = violating
                        .iter()
                        .map(|e| e.point.values[d])
                        .fold(f64::INFINITY, f64::min);
                    let hi = violating
                        .iter()
                        .map(|e| e.point.values[d])
                        .fold(f64::NEG_INFINITY, f64::max);
                    ParamRange {
                        name: dim_names[d].clone(),
                        lo,
                        hi,
                    }
                })
                .collect::<Vec<_>>();
            let witness = violating
                .iter()
                .min_by(|a, b| {
                    a.margins[si]
                        .total_cmp(&b.margins[si])
                        .then(a.eval.cmp(&b.eval))
                })
                .expect("non-empty violating set");
            cells.push(CounterexampleCell {
                spec: spec.name().to_string(),
                kind: spec.kind(),
                region,
                witness: witness.point.clone(),
                witness_eval: witness.eval,
                witness_digest: witness.witness_digest,
                margin: witness.margins[si],
                violations: violating.len() as u64,
            });
        }
        FalsifyReport {
            seed: self.config.seed,
            evaluations: all.len() as u64,
            first_violation_eval,
            specs: summaries,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamSpec, ScenarioSpace};
    use crate::spec::{RunOutcome, StepRecord, Verdict};

    /// A synthetic runner whose "violation" region is `x > 0.7, y level 2`:
    /// the step is a silent wrong proceed iff the point is inside.
    struct Synthetic {
        space: ScenarioSpace,
    }

    impl Synthetic {
        fn new() -> Self {
            Synthetic {
                space: ScenarioSpace::new(vec![
                    ParamSpec::continuous("x", 0.0, 1.0),
                    ParamSpec::discrete("y", 3),
                ])
                .unwrap(),
            }
        }
    }

    impl ScenarioRunner for Synthetic {
        fn space(&self) -> &ScenarioSpace {
            &self.space
        }

        fn run(&self, point: &ScenarioPoint, seed: u64) -> Result<RunOutcome, FalsifyError> {
            let inside = point.values[0] > 0.7 && point.values[1] == 2.0;
            Ok(RunOutcome {
                steps: vec![StepRecord {
                    true_label: 0,
                    class: Some(usize::from(inside)),
                    confidence: if inside { 0.95 } else { 0.9 },
                    proceeded: true,
                    health_events: 0,
                    disagreement: false,
                    cte: None,
                }],
                witness_digest: seed,
            })
        }
    }

    /// Distance-to-region spec: negative inside the seeded region.
    struct SeededSpec;

    impl Specification for SeededSpec {
        fn name(&self) -> &'static str {
            "seeded"
        }

        fn kind(&self) -> ViolationKind {
            ViolationKind::ConfidentMisclass
        }

        fn judge(&self, run: &RunOutcome) -> Verdict {
            let wrong = run.steps[0].class != Some(0);
            Verdict {
                kind: self.kind(),
                margin: if wrong { -0.5 } else { 0.5 },
            }
        }
    }

    fn specs() -> Vec<Box<dyn Specification>> {
        vec![Box::new(SeededSpec)]
    }

    #[test]
    fn config_validation() {
        assert!(Falsifier::new(FalsifyConfig::default()).is_ok());
        for bad in [
            FalsifyConfig {
                grid: 0,
                ..Default::default()
            },
            FalsifyConfig {
                workers: 0,
                ..Default::default()
            },
            FalsifyConfig {
                elite: 0,
                ..Default::default()
            },
            FalsifyConfig {
                rounds: 1,
                samples_per_round: 0,
                ..Default::default()
            },
        ] {
            assert!(Falsifier::new(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn finds_the_seeded_region() {
        let driver = Falsifier::new(FalsifyConfig::default()).unwrap();
        let report = driver.falsify(&Synthetic::new(), &specs()).unwrap();
        assert!(report.falsified());
        let cell = report.cell("seeded").unwrap();
        assert!(cell.witness.values[0] > 0.7);
        assert_eq!(cell.witness.values[1], 2.0);
        assert!(cell.margin <= -0.5);
        assert!(cell.violations > 0);
        assert!(report.first_violation_eval.is_some());
        // The region's x interval sits inside the seeded violation band,
        // and carries the dimension's name.
        assert!(cell.region[0].lo > 0.7);
        assert_eq!(cell.region[0].name, "x");
        // The synthetic runner echoes its seed as the digest, so the
        // witness replay contract (eval index -> seed) is checkable.
        assert_eq!(
            cell.witness_digest,
            FalsifyConfig::default().eval_seed(cell.witness_eval)
        );
    }

    #[test]
    fn reports_are_identical_for_any_worker_count() {
        let reference = Falsifier::new(FalsifyConfig::default())
            .unwrap()
            .falsify(&Synthetic::new(), &specs())
            .unwrap();
        for workers in [2usize, 4, 8] {
            let parallel = Falsifier::new(FalsifyConfig {
                workers,
                ..Default::default()
            })
            .unwrap()
            .falsify(&Synthetic::new(), &specs())
            .unwrap();
            assert_eq!(parallel, reference, "{workers}-worker report diverged");
        }
    }

    #[test]
    fn refinement_concentrates_evaluations_near_the_violation() {
        // With rounds, the share of violating evaluations must beat the
        // region's uniform volume (0.3 * 1/3 = 10%) by a wide factor —
        // the whole point of the cross-entropy step.
        let report = Falsifier::new(FalsifyConfig {
            rounds: 4,
            samples_per_round: 24,
            ..Default::default()
        })
        .unwrap()
        .falsify(&Synthetic::new(), &specs())
        .unwrap();
        let cell = report.cell("seeded").unwrap();
        let share = cell.violations as f64 / report.evaluations as f64;
        assert!(
            share > 0.3,
            "refinement should concentrate on the region, got {share:.2}"
        );
    }

    #[test]
    fn empty_spec_list_is_rejected() {
        let driver = Falsifier::new(FalsifyConfig::default()).unwrap();
        assert!(driver.falsify(&Synthetic::new(), &[]).is_err());
    }
}
