//! Scenario runners: map a [`ScenarioPoint`] onto a concrete workload and
//! execute it through a real [`SafePipeline`].
//!
//! Runners own everything the evaluation needs — a trained model, its
//! Q16.16 quantisation, and a fitted ODD envelope — and build a *fresh*
//! pipeline per evaluation so no health-ladder state leaks between
//! points. Every evaluation is a pure function of `(point, seed)`: the
//! search driver fixes the seed before partitioning work across threads,
//! which is the whole determinism argument.

use safex_core::{HealthConfig, HealthMonitor, PipelineBuilder, SafePipeline};
use safex_nn::model::ModelBuilder;
use safex_nn::train::{SgdConfig, Trainer};
use safex_nn::{Engine, HealthEvent, HealthSink, Model, QEngine, QModel};
use safex_patterns::channel::{ModelChannel, QuantChannel};
use safex_patterns::pattern::MonitorActuator;
use safex_patterns::Sil;
use safex_scenarios::shift::{apply_all, Shift};
use safex_scenarios::trajectory::{self, EpisodeTrace, TaxiConfig};
use safex_scenarios::{automotive, railway, space, Dataset};
use safex_supervision::odd::OddEnvelope;
use safex_tensor::fixed::Q16_16;
use safex_tensor::DetRng;
use safex_trace::{input_digest, Fnv64};

use crate::error::FalsifyError;
use crate::space::{ParamSpec, ScenarioPoint, ScenarioSpace};
use crate::spec::{RunOutcome, StepRecord};

/// Which arithmetic backend the pipeline's primary channel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// f32 reference engine.
    F32,
    /// Q16.16 fixed-point engine (the diverse replica arithmetic).
    Q16,
}

impl BackendKind {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            BackendKind::F32 => "f32",
            BackendKind::Q16 => "q16_16",
        }
    }
}

/// The single-shot classification domain a runner searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Forward-camera object classification.
    Automotive,
    /// Signal-aspect classification.
    Railway,
    /// Landing-site terrain classification.
    Space,
}

impl Domain {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Domain::Automotive => "automotive",
            Domain::Railway => "railway",
            Domain::Space => "space",
        }
    }
}

/// Executes one scenario evaluation for the search driver.
///
/// Implementations must be pure in `(point, seed)`: repeated calls with
/// the same arguments return the same [`RunOutcome`], and calls may run
/// concurrently (`Sync`).
pub trait ScenarioRunner: Send + Sync {
    /// The parameter space this runner understands.
    fn space(&self) -> &ScenarioSpace;
    /// Evaluates one point.
    ///
    /// # Errors
    ///
    /// Propagates generation, inference, and pipeline failures.
    fn run(&self, point: &ScenarioPoint, seed: u64) -> Result<RunOutcome, FalsifyError>;
}

/// Trains the reference MLP the runners evaluate (the same topology the
/// demo helpers use: `flatten -> dense 48 -> relu -> dense classes ->
/// softmax`, lr 0.02 for cross-domain stability).
fn train_classifier(data: &Dataset, epochs: usize, seed: u64) -> Result<Model, FalsifyError> {
    let mut rng = DetRng::new(seed);
    let mut model = ModelBuilder::new(data.shape())
        .flatten()
        .dense(48, &mut rng)?
        .relu()
        .dense(data.classes(), &mut rng)?
        .softmax()
        .build()?;
    let inputs = data.inputs_owned();
    let labels = data.labels();
    let mut trainer = Trainer::new(SgdConfig {
        learning_rate: 0.02,
        momentum: 0.9,
        batch_size: 16,
    })?;
    for _ in 0..epochs {
        trainer.train_epoch(&mut model, &inputs, &labels, &mut rng)?;
    }
    Ok(model)
}

/// The pipeline every evaluation runs through: a monitor/actuator pattern
/// over the chosen backend, a fresh health ladder, and the runner's ODD
/// envelope feeding supervisor rejections into the sink before each
/// decision — the same wiring campaign cells use.
struct EvalPipeline {
    pipeline: SafePipeline,
    f32_engine: Engine,
    q_engine: QEngine,
}

impl EvalPipeline {
    fn build(
        model: &Model,
        qmodel: &QModel,
        backend: BackendKind,
        confidence_floor: f32,
    ) -> Result<Self, FalsifyError> {
        let sink = HealthSink::new();
        let monitor = HealthMonitor::new(HealthConfig::default())?;
        let builder = PipelineBuilder::new("falsify", Sil::Sil2);
        let pipeline = match backend {
            BackendKind::F32 => builder.pattern(MonitorActuator::new(
                ModelChannel::new("primary_f32", Engine::new(model.clone())),
                confidence_floor,
                0,
            )?),
            BackendKind::Q16 => builder.pattern(MonitorActuator::new(
                QuantChannel::new("primary_q16", QEngine::new(qmodel.clone())),
                confidence_floor,
                0,
            )?),
        }
        .allow_under_provisioned()
        .health(monitor, sink)
        .build()?;
        Ok(EvalPipeline {
            pipeline,
            f32_engine: Engine::new(model.clone()),
            q_engine: QEngine::new(qmodel.clone()),
        })
    }

    /// Runs one input through the pipeline (with the envelope screening
    /// it first) and records the step.
    fn step(
        &mut self,
        envelope: &OddEnvelope,
        input: &[f32],
        true_label: usize,
    ) -> Result<StepRecord, FalsifyError> {
        if !envelope.contains(input)? {
            self.pipeline.report_health(HealthEvent::SupervisorReject {
                monitor: "odd_envelope",
            });
        }
        let decision = self.pipeline.decide(input)?;
        let health_events = self.pipeline.last_health_events().len();
        let (class, confidence, proceeded) = match decision.action {
            safex_patterns::Action::Proceed { class, confidence } => {
                (Some(class), confidence, true)
            }
            other => (other.class(), 0.0, false),
        };
        let f32_class = self.f32_engine.classify(input)?.class;
        let q_input: Vec<Q16_16> = input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let q_class = self.q_engine.classify(&q_input)?.class;
        Ok(StepRecord {
            true_label,
            class,
            confidence,
            proceeded,
            health_events,
            disagreement: f32_class != q_class,
            cte: None,
        })
    }
}

/// Falsification runner for the three single-shot classification domains.
///
/// The searched knobs per domain:
///
/// | domain     | generator knobs            | shift knobs               |
/// |------------|----------------------------|---------------------------|
/// | automotive | `noise_std`, `object_level`| `brightness`, `occlusion` |
/// | railway    | `noise_std`, `signal_level`| `brightness`, `dead_pixels` |
/// | space      | `noise_std`, `terrain_level`| `contrast`, `occlusion`  |
///
/// `occlusion` is discrete (level 0 = none, level `k` = a `k + 1` px
/// patch); everything else is continuous.
pub struct ClassificationRunner {
    domain: Domain,
    backend: BackendKind,
    model: Model,
    qmodel: QModel,
    envelope: OddEnvelope,
    space: ScenarioSpace,
    eval_samples_per_class: usize,
    confidence_floor: f32,
}

impl ClassificationRunner {
    /// Trains the domain's reference classifier on clean data, quantises
    /// it, and fits the ODD envelope on the training inputs.
    ///
    /// # Errors
    ///
    /// Propagates generation, training, and envelope-fitting failures.
    pub fn new(
        domain: Domain,
        backend: BackendKind,
        train_seed: u64,
    ) -> Result<Self, FalsifyError> {
        let mut rng = DetRng::new(train_seed);
        let data = match domain {
            Domain::Automotive => automotive::generate(
                &automotive::AutomotiveConfig {
                    samples_per_class: 40,
                    ..Default::default()
                },
                &mut rng,
            )?,
            Domain::Railway => railway::generate(
                &railway::RailwayConfig {
                    samples_per_class: 40,
                    ..Default::default()
                },
                &mut rng,
            )?,
            Domain::Space => space::generate(
                &space::SpaceConfig {
                    samples_per_class: 40,
                    ..Default::default()
                },
                &mut rng,
            )?,
        };
        let model = train_classifier(&data, 40, train_seed)?;
        let qmodel = QModel::quantize(&model)?;
        let envelope = OddEnvelope::fit(&data.inputs_owned(), 0.1, 0.0)?;
        let space = ScenarioSpace::new(match domain {
            Domain::Automotive => vec![
                ParamSpec::continuous("noise_std", 0.0, 0.35),
                ParamSpec::continuous("object_level", 0.25, 1.0),
                ParamSpec::continuous("brightness", -0.5, 0.5),
                ParamSpec::discrete("occlusion", 7),
            ],
            Domain::Railway => vec![
                ParamSpec::continuous("noise_std", 0.0, 0.35),
                ParamSpec::continuous("signal_level", 0.2, 1.0),
                ParamSpec::continuous("brightness", -0.5, 0.5),
                ParamSpec::continuous("dead_pixels", 0.0, 0.35),
            ],
            Domain::Space => vec![
                ParamSpec::continuous("noise_std", 0.0, 0.35),
                ParamSpec::continuous("terrain_level", 0.1, 0.9),
                ParamSpec::continuous("contrast", 0.4, 1.6),
                ParamSpec::discrete("occlusion", 7),
            ],
        })?;
        Ok(ClassificationRunner {
            domain,
            backend,
            model,
            qmodel,
            envelope,
            space,
            eval_samples_per_class: 2,
            confidence_floor: 0.4,
        })
    }

    /// The domain this runner evaluates.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The backend the pipeline's primary channel uses.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Materialises the evaluation dataset for a point: generate with the
    /// point's generator knobs, then apply its shift knobs.
    fn dataset(&self, point: &ScenarioPoint, rng: &mut DetRng) -> Result<Dataset, FalsifyError> {
        let noise_std = point.require(&self.space, "noise_std")?;
        let data = match self.domain {
            Domain::Automotive => automotive::generate(
                &automotive::AutomotiveConfig {
                    samples_per_class: self.eval_samples_per_class,
                    noise_std,
                    object_level: point.require(&self.space, "object_level")? as f32,
                    ..Default::default()
                },
                rng,
            )?,
            Domain::Railway => railway::generate(
                &railway::RailwayConfig {
                    samples_per_class: self.eval_samples_per_class,
                    noise_std,
                    signal_level: point.require(&self.space, "signal_level")? as f32,
                    ..Default::default()
                },
                rng,
            )?,
            Domain::Space => space::generate(
                &space::SpaceConfig {
                    samples_per_class: self.eval_samples_per_class,
                    noise_std,
                    terrain_level: point.require(&self.space, "terrain_level")? as f32,
                    ..Default::default()
                },
                rng,
            )?,
        };
        let mut shifts = Vec::new();
        match self.domain {
            Domain::Automotive | Domain::Railway => {
                let b = point.require(&self.space, "brightness")?;
                if b != 0.0 {
                    shifts.push(Shift::Brightness(b));
                }
            }
            Domain::Space => {
                let c = point.require(&self.space, "contrast")?;
                if c != 1.0 {
                    shifts.push(Shift::Contrast(c));
                }
            }
        }
        match self.domain {
            Domain::Automotive | Domain::Space => {
                let level = point.require(&self.space, "occlusion")? as usize;
                if level > 0 {
                    shifts.push(Shift::Occlusion { size: level + 1 });
                }
            }
            Domain::Railway => {
                let p = point.require(&self.space, "dead_pixels")?;
                if p > 0.0 {
                    shifts.push(Shift::DeadPixels(p));
                }
            }
        }
        if shifts.is_empty() {
            Ok(data)
        } else {
            Ok(apply_all(&shifts, &data, rng)?)
        }
    }
}

impl ScenarioRunner for ClassificationRunner {
    fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    fn run(&self, point: &ScenarioPoint, seed: u64) -> Result<RunOutcome, FalsifyError> {
        let mut rng = DetRng::new(seed);
        let data = self.dataset(point, &mut rng)?;
        let mut eval = EvalPipeline::build(
            &self.model,
            &self.qmodel,
            self.backend,
            self.confidence_floor,
        )?;
        let mut digest = Fnv64::new();
        let mut steps = Vec::with_capacity(data.len());
        for sample in data.samples() {
            digest.write_u64(input_digest(&sample.input));
            steps.push(eval.step(&self.envelope, &sample.input, sample.label)?);
        }
        Ok(RunOutcome {
            steps,
            witness_digest: digest.finish(),
        })
    }
}

/// Falsification runner for the temporal taxiing workload: the searched
/// knobs are the episode dynamics (`drift`, `disturbance_std`,
/// `initial_cte`) and the observation quality (`noise_std`); the model's
/// steering decisions close the loop, so a mis-read frame — or a
/// conservative fallback that withholds the correction — compounds into
/// the next frame's cross-track error.
pub struct TrajectoryRunner {
    backend: BackendKind,
    base: TaxiConfig,
    model: Model,
    qmodel: QModel,
    envelope: OddEnvelope,
    space: ScenarioSpace,
    confidence_floor: f32,
}

impl TrajectoryRunner {
    /// Trains the steering classifier on clean frames and fits the ODD
    /// envelope on its training inputs.
    ///
    /// # Errors
    ///
    /// Propagates generation, training, and envelope-fitting failures.
    pub fn new(backend: BackendKind, train_seed: u64) -> Result<Self, FalsifyError> {
        let base = TaxiConfig::default();
        let mut rng = DetRng::new(train_seed);
        let data = trajectory::generate(
            &TaxiConfig {
                samples_per_class: 60,
                ..base
            },
            &mut rng,
        )?;
        let model = train_classifier(&data, 40, train_seed)?;
        let qmodel = QModel::quantize(&model)?;
        let envelope = OddEnvelope::fit(&data.inputs_owned(), 0.1, 0.0)?;
        let space = ScenarioSpace::new(vec![
            ParamSpec::continuous("drift", -0.15, 0.15),
            ParamSpec::continuous("disturbance_std", 0.0, 0.2),
            ParamSpec::continuous("initial_cte", -2.5, 2.5),
            ParamSpec::continuous("noise_std", 0.0, 0.5),
        ])?;
        Ok(TrajectoryRunner {
            backend,
            base,
            model,
            qmodel,
            envelope,
            space,
            confidence_floor: 0.4,
        })
    }

    /// The backend the pipeline's primary channel uses.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The episode configuration a point maps to.
    pub fn episode_config(&self, point: &ScenarioPoint) -> Result<TaxiConfig, FalsifyError> {
        Ok(TaxiConfig {
            drift: point.require(&self.space, "drift")?,
            disturbance_std: point.require(&self.space, "disturbance_std")?,
            noise_std: point.require(&self.space, "noise_std")?,
            ..self.base
        })
    }

    fn run_internal(
        &self,
        point: &ScenarioPoint,
        seed: u64,
    ) -> Result<(RunOutcome, EpisodeTrace), FalsifyError> {
        let config = self.episode_config(point)?;
        let initial_cte = point.require(&self.space, "initial_cte")?;
        let mut rng = DetRng::new(seed);
        let mut eval = EvalPipeline::build(
            &self.model,
            &self.qmodel,
            self.backend,
            self.confidence_floor,
        )?;
        let mut records: Vec<StepRecord> = Vec::with_capacity(config.steps);
        let mut failure: Option<FalsifyError> = None;
        let trace = trajectory::run_episode(
            &config,
            initial_cte,
            |obs, _step| {
                if failure.is_some() {
                    // A prior pipeline failure poisons the episode; steer
                    // nothing and surface the error after the loop.
                    return None;
                }
                // The true label is filled in post-hoc from the cte trace;
                // 0 here is a placeholder.
                match eval.step(&self.envelope, obs, 0) {
                    Ok(record) => {
                        let action = record.proceeded.then_some(record.class).flatten();
                        records.push(record);
                        action
                    }
                    Err(e) => {
                        failure = Some(e);
                        None
                    }
                }
            },
            &mut rng,
        )?;
        if let Some(e) = failure {
            return Err(e);
        }
        let mut digest = Fnv64::new();
        for (i, record) in records.iter_mut().enumerate() {
            record.true_label = trajectory::ideal_action(&config, trace.ctes[i]);
            record.cte = Some(trace.ctes[i + 1]);
            digest.write_u64(input_digest(&trace.observations[i]));
        }
        Ok((
            RunOutcome {
                steps: records,
                witness_digest: digest.finish(),
            },
            trace,
        ))
    }

    /// Replays a point's full episode — the hook the serve soak tests use
    /// to turn a counterexample witness into shaped request traffic.
    ///
    /// The same `(point, seed)` pair that produced a [`RunOutcome`] in
    /// the search reproduces the identical episode here.
    ///
    /// # Errors
    ///
    /// Propagates generation, inference, and pipeline failures.
    pub fn episode(&self, point: &ScenarioPoint, seed: u64) -> Result<EpisodeTrace, FalsifyError> {
        Ok(self.run_internal(point, seed)?.1)
    }
}

impl ScenarioRunner for TrajectoryRunner {
    fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    fn run(&self, point: &ScenarioPoint, seed: u64) -> Result<RunOutcome, FalsifyError> {
        Ok(self.run_internal(point, seed)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid_point(space: &ScenarioSpace) -> ScenarioPoint {
        ScenarioPoint {
            values: space
                .params()
                .iter()
                .map(|p| match p.domain {
                    crate::space::ParamDomain::Continuous { lo, hi } => (lo + hi) / 2.0,
                    crate::space::ParamDomain::Discrete { .. } => 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn classification_runs_are_pure_in_point_and_seed() {
        let runner = ClassificationRunner::new(Domain::Automotive, BackendKind::F32, 11).unwrap();
        let p = mid_point(runner.space());
        let a = runner.run(&p, 42).unwrap();
        let b = runner.run(&p, 42).unwrap();
        assert_eq!(a, b);
        let c = runner.run(&p, 43).unwrap();
        assert_ne!(a.witness_digest, c.witness_digest);
        assert_eq!(a.steps.len(), 8, "4 classes x 2 samples");
        assert!(a.steps.iter().all(|s| s.cte.is_none()));
    }

    #[test]
    fn trajectory_runs_record_compounding_state() {
        let runner = TrajectoryRunner::new(BackendKind::F32, 11).unwrap();
        let p = mid_point(runner.space());
        let run = runner.run(&p, 7).unwrap();
        assert_eq!(run.steps.len(), TaxiConfig::default().steps);
        assert!(run.steps.iter().all(|s| s.cte.is_some()));
        assert!(run.max_abs_cte().is_some());
        // The replay hook reproduces the searched episode exactly.
        let trace_a = runner.episode(&p, 7).unwrap();
        let trace_b = runner.episode(&p, 7).unwrap();
        assert_eq!(trace_a, trace_b);
        assert_eq!(trace_a.observations.len(), run.steps.len());
        assert_eq!(
            run.steps.last().unwrap().cte.unwrap(),
            *trace_a.ctes.last().unwrap()
        );
    }

    #[test]
    fn q16_backend_builds_and_runs() {
        let runner = ClassificationRunner::new(Domain::Space, BackendKind::Q16, 11).unwrap();
        let p = mid_point(runner.space());
        let run = runner.run(&p, 1).unwrap();
        assert_eq!(run.steps.len(), 6, "3 classes x 2 samples");
    }

    #[test]
    fn missing_dimensions_are_reported() {
        let runner = ClassificationRunner::new(Domain::Railway, BackendKind::F32, 11).unwrap();
        let short = ScenarioPoint { values: vec![0.1] };
        assert!(runner.run(&short, 0).is_err());
    }
}
