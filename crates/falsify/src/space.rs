//! Typed scenario parameter spaces.
//!
//! A [`ScenarioSpace`] names the knobs a falsification run searches over —
//! generator config fields (noise level, object intensity, drift) and
//! [`safex_scenarios::shift::Shift`] severities — each as a continuous
//! interval or a discrete level set. A [`ScenarioPoint`] is one assignment
//! of all knobs; the runner maps it onto a concrete generator
//! configuration. Keeping the space typed and validated up front is what
//! lets the report describe counterexamples as *regions* ([`ParamRange`])
//! instead of bare sample lists.

use safex_tensor::DetRng;

use crate::error::FalsifyError;

/// Hard cap on the coarse seeding grid's cross product, so a fat space
/// cannot silently turn the seeding phase into an exhaustive sweep.
pub const MAX_GRID_POINTS: usize = 4096;

/// The domain of one named parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamDomain {
    /// A closed real interval `[lo, hi]`.
    Continuous {
        /// Lower bound (finite, `< hi`).
        lo: f64,
        /// Upper bound (finite).
        hi: f64,
    },
    /// An enumerated level set `0..levels`; points store the level index.
    Discrete {
        /// Number of levels (at least 1).
        levels: usize,
    },
}

impl ParamDomain {
    /// Interval width (for discrete domains, the index span).
    pub fn width(&self) -> f64 {
        match self {
            ParamDomain::Continuous { lo, hi } => hi - lo,
            ParamDomain::Discrete { levels } => (levels - 1) as f64,
        }
    }

    /// Clamps a raw value into the domain (discrete values round to the
    /// nearest valid level index).
    pub fn clamp(&self, value: f64) -> f64 {
        match self {
            ParamDomain::Continuous { lo, hi } => value.clamp(*lo, *hi),
            ParamDomain::Discrete { levels } => value.round().clamp(0.0, (levels - 1) as f64),
        }
    }
}

/// One named, typed search dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Stable name the runner resolves (e.g. `"noise_std"`).
    pub name: String,
    /// The values this dimension may take.
    pub domain: ParamDomain,
}

impl ParamSpec {
    /// Creates a continuous dimension.
    pub fn continuous(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        ParamSpec {
            name: name.into(),
            domain: ParamDomain::Continuous { lo, hi },
        }
    }

    /// Creates a discrete dimension with `levels` levels.
    pub fn discrete(name: impl Into<String>, levels: usize) -> Self {
        ParamSpec {
            name: name.into(),
            domain: ParamDomain::Discrete { levels },
        }
    }
}

/// A validated, ordered set of search dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpace {
    params: Vec<ParamSpec>,
}

impl ScenarioSpace {
    /// Creates a space, validating every dimension.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadSpace`] for an empty space, duplicate
    /// names, a non-finite or inverted continuous interval, or a
    /// zero-level discrete domain.
    pub fn new(params: Vec<ParamSpec>) -> Result<Self, FalsifyError> {
        if params.is_empty() {
            return Err(FalsifyError::BadSpace(
                "a scenario space needs at least one parameter".into(),
            ));
        }
        for (i, p) in params.iter().enumerate() {
            if p.name.is_empty() {
                return Err(FalsifyError::BadSpace(format!("parameter {i} has no name")));
            }
            if params[..i].iter().any(|q| q.name == p.name) {
                return Err(FalsifyError::BadSpace(format!(
                    "duplicate parameter name {:?}",
                    p.name
                )));
            }
            match p.domain {
                ParamDomain::Continuous { lo, hi } => {
                    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
                        return Err(FalsifyError::BadSpace(format!(
                            "parameter {:?} needs a finite interval with lo < hi, got [{lo}, {hi}]",
                            p.name
                        )));
                    }
                }
                ParamDomain::Discrete { levels } => {
                    if levels == 0 {
                        return Err(FalsifyError::BadSpace(format!(
                            "parameter {:?} needs at least one level",
                            p.name
                        )));
                    }
                }
            }
        }
        Ok(ScenarioSpace { params })
    }

    /// The dimensions, in search order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// Index of a named dimension.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// The coarse seeding lattice: continuous dimensions contribute
    /// `grid` cell midpoints, discrete dimensions enumerate every level.
    /// Point order is the row-major cross product over dimensions in
    /// declaration order — a pure function of `(space, grid)`.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadConfig`] for a zero `grid` or a lattice
    /// larger than [`MAX_GRID_POINTS`].
    pub fn grid(&self, grid: usize) -> Result<Vec<ScenarioPoint>, FalsifyError> {
        if grid == 0 {
            return Err(FalsifyError::BadConfig(
                "grid must have at least one point per dimension".into(),
            ));
        }
        let axes: Vec<Vec<f64>> = self
            .params
            .iter()
            .map(|p| match p.domain {
                ParamDomain::Continuous { lo, hi } => (0..grid)
                    .map(|i| lo + (i as f64 + 0.5) * (hi - lo) / grid as f64)
                    .collect(),
                ParamDomain::Discrete { levels } => (0..levels).map(|l| l as f64).collect(),
            })
            .collect();
        let total: usize = axes.iter().map(Vec::len).product();
        if total > MAX_GRID_POINTS {
            return Err(FalsifyError::BadConfig(format!(
                "seeding grid has {total} points, above the cap of {MAX_GRID_POINTS}; \
                 reduce grid or the number of discrete levels"
            )));
        }
        let mut points = Vec::with_capacity(total);
        let mut idx = vec![0usize; axes.len()];
        loop {
            points.push(ScenarioPoint {
                values: idx.iter().zip(&axes).map(|(&i, axis)| axis[i]).collect(),
            });
            // Row-major increment: last dimension varies fastest.
            let mut d = axes.len();
            loop {
                if d == 0 {
                    return Ok(points);
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < axes[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// Draws one uniform point from the space.
    pub fn sample(&self, rng: &mut DetRng) -> ScenarioPoint {
        ScenarioPoint {
            values: self
                .params
                .iter()
                .map(|p| match p.domain {
                    ParamDomain::Continuous { lo, hi } => rng.range_f64(lo, hi),
                    ParamDomain::Discrete { levels } => rng.below_usize(levels) as f64,
                })
                .collect(),
        }
    }
}

/// One assignment of every dimension of a [`ScenarioSpace`] (discrete
/// dimensions store the level index as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPoint {
    /// Values in the space's dimension order.
    pub values: Vec<f64>,
}

impl ScenarioPoint {
    /// Looks a value up by dimension name.
    pub fn get(&self, space: &ScenarioSpace, name: &str) -> Option<f64> {
        space
            .index_of(name)
            .and_then(|i| self.values.get(i))
            .copied()
    }

    /// Like [`ScenarioPoint::get`] but returns a [`FalsifyError::BadSpace`]
    /// naming the missing dimension — the runner-side accessor.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadSpace`] when the dimension is absent.
    pub fn require(&self, space: &ScenarioSpace, name: &str) -> Result<f64, FalsifyError> {
        self.get(space, name)
            .ok_or_else(|| FalsifyError::BadSpace(format!("point is missing dimension {name:?}")))
    }
}

/// One dimension of a counterexample region: the closed interval the
/// violating points span.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamRange {
    /// Dimension name.
    pub name: String,
    /// Lowest violating value seen.
    pub lo: f64,
    /// Highest violating value seen.
    pub hi: f64,
}

impl ParamRange {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ScenarioSpace {
        ScenarioSpace::new(vec![
            ParamSpec::continuous("noise", 0.0, 0.3),
            ParamSpec::discrete("occlusion", 3),
        ])
        .unwrap()
    }

    #[test]
    fn validation_rejects_malformed_spaces() {
        assert!(ScenarioSpace::new(vec![]).is_err());
        assert!(ScenarioSpace::new(vec![ParamSpec::continuous("", 0.0, 1.0)]).is_err());
        assert!(ScenarioSpace::new(vec![ParamSpec::continuous("a", 1.0, 0.0)]).is_err());
        assert!(ScenarioSpace::new(vec![ParamSpec::continuous("a", 0.0, f64::NAN)]).is_err());
        assert!(ScenarioSpace::new(vec![ParamSpec::discrete("a", 0)]).is_err());
        assert!(ScenarioSpace::new(vec![
            ParamSpec::continuous("a", 0.0, 1.0),
            ParamSpec::discrete("a", 2),
        ])
        .is_err());
    }

    #[test]
    fn grid_is_the_row_major_cross_product() {
        let pts = space().grid(2).unwrap();
        // 2 midpoints x 3 levels.
        assert_eq!(pts.len(), 6);
        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        assert!(close(pts[0].values[0], 0.075) && pts[0].values[1] == 0.0);
        assert!(close(pts[1].values[0], 0.075) && pts[1].values[1] == 1.0);
        assert!(close(pts[5].values[0], 0.225) && pts[5].values[1] == 2.0);
        assert!(space().grid(0).is_err());
    }

    #[test]
    fn grid_size_is_capped() {
        let s = ScenarioSpace::new(
            (0..4)
                .map(|i| ParamSpec::continuous(format!("p{i}"), 0.0, 1.0))
                .collect(),
        )
        .unwrap();
        assert!(s.grid(9).is_err(), "9^4 = 6561 exceeds the cap");
        assert_eq!(s.grid(8).unwrap().len(), 4096);
    }

    #[test]
    fn lookups_resolve_by_name() {
        let s = space();
        let p = ScenarioPoint {
            values: vec![0.1, 2.0],
        };
        assert_eq!(p.get(&s, "noise"), Some(0.1));
        assert_eq!(p.require(&s, "occlusion").unwrap(), 2.0);
        assert!(p.require(&s, "missing").is_err());
    }

    #[test]
    fn clamping_respects_the_domain() {
        let c = ParamDomain::Continuous { lo: 0.0, hi: 1.0 };
        assert_eq!(c.clamp(1.7), 1.0);
        assert_eq!(c.clamp(-0.2), 0.0);
        let d = ParamDomain::Discrete { levels: 4 };
        assert_eq!(d.clamp(2.4), 2.0);
        assert_eq!(d.clamp(9.0), 3.0);
        assert_eq!(d.clamp(-1.0), 0.0);
    }

    #[test]
    fn uniform_samples_stay_in_domain() {
        let s = space();
        let mut rng = DetRng::new(3);
        for _ in 0..100 {
            let p = s.sample(&mut rng);
            assert!((0.0..=0.3).contains(&p.values[0]));
            assert!([0.0, 1.0, 2.0].contains(&p.values[1]));
        }
    }
}
