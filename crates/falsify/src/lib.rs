#![forbid(unsafe_code)]
//! # safex-falsify
//!
//! Deterministic falsification engine for the SAFEXPLAIN reproduction,
//! in the spirit of VerifAI's scenario-level verification: instead of
//! evaluating fixed datasets, it *searches* the scenario generators'
//! parameter spaces for regions where a real [`safex_core::SafePipeline`]
//! violates a safety specification.
//!
//! The pieces:
//!
//! * [`ScenarioSpace`] — named, typed search dimensions (continuous
//!   intervals and discrete level sets) over generator config fields and
//!   [`safex_scenarios::shift::Shift`] severities.
//! * [`Specification`] — a falsifiable property over one scenario run,
//!   with a signed robustness margin (non-positive = violated). The
//!   catalogue: [`SupervisorMisGate`], [`PatternDisagreement`],
//!   [`ConfidentMisclass`], [`TemporalErrorBound`].
//! * [`ScenarioRunner`] — maps a [`ScenarioPoint`] onto a concrete
//!   workload and executes it through a fresh pipeline per evaluation:
//!   [`ClassificationRunner`] for the three single-shot domains,
//!   [`TrajectoryRunner`] for the temporal taxiing task where steering
//!   errors compound across an episode.
//! * [`Falsifier`] — the search driver: coarse grid seeding plus
//!   cross-entropy-style refinement, every RNG stream keyed by
//!   `(seed, evaluation index)` before work is partitioned, so the
//!   [`FalsifyReport`] is byte-identical for any worker count — the same
//!   contract campaign sweeps and the serve runtime already pin with
//!   golden digests.
//!
//! ## Example
//!
//! ```no_run
//! # fn main() -> Result<(), safex_falsify::FalsifyError> {
//! use safex_falsify::{
//!     BackendKind, ClassificationRunner, ConfidentMisclass, Domain, Falsifier, FalsifyConfig,
//!     Specification,
//! };
//!
//! let runner = ClassificationRunner::new(Domain::Automotive, BackendKind::F32, 11)?;
//! let specs: Vec<Box<dyn Specification>> = vec![Box::new(ConfidentMisclass::new(0.7)?)];
//! let report = Falsifier::new(FalsifyConfig::default())?.falsify(&runner, &specs)?;
//! for cell in &report.cells {
//!     println!("{}: margin {:.3} over {:?}", cell.spec, cell.margin, cell.region);
//! }
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod falsifier;
pub mod runner;
pub mod space;
pub mod spec;
pub mod witness;

pub use error::FalsifyError;
pub use falsifier::{CounterexampleCell, Falsifier, FalsifyConfig, FalsifyReport, SpecSummary};
pub use runner::{BackendKind, ClassificationRunner, Domain, ScenarioRunner, TrajectoryRunner};
pub use space::{ParamDomain, ParamRange, ParamSpec, ScenarioPoint, ScenarioSpace};
pub use spec::{
    ConfidentMisclass, PatternDisagreement, RunOutcome, Specification, StepRecord,
    SupervisorMisGate, TemporalErrorBound, Verdict, ViolationKind,
};
pub use witness::{WitnessFile, WITNESS_MAGIC, WITNESS_VERSION};
