//! On-disk counterexample witnesses.
//!
//! A falsification campaign's most valuable output is its worst witness:
//! the exact scenario point, evaluation index, and margin that violated
//! a specification. [`WitnessFile`] freezes one
//! [`CounterexampleCell`] — plus the search seed needed to replay it via
//! [`FalsifyConfig::eval_seed`](crate::FalsifyConfig::eval_seed) — into
//! a versioned, checksummed container so a finding can cross a process
//! boundary (CI artifact, bug report, regression corpus) without losing
//! its replay coordinates.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! "SXWITN"   | 6 bytes | magic
//! version    | u16 LE  | currently 1
//! length     | u64 LE  | payload byte count
//! payload    | ...     | fields below, little-endian
//! checksum   | u32 LE  | CRC-32 of the payload
//! ```
//!
//! Payload: search seed (u64), spec name (u64 length + UTF-8), violation
//! kind tag (u8), witness evaluation index (u64), witness input digest
//! (u64), margin (f64 bits), violation count (u64), dimension count
//! (u64), then per dimension: name (u64 length + UTF-8), region lo
//! (f64), region hi (f64), witness value (f64).
//!
//! Decoding fails **closed** — [`FalsifyError::BadWitness`] on a bad
//! magic, unknown version or kind tag, length or checksum mismatch,
//! short read, trailing garbage, non-UTF-8 or oversized name, non-finite
//! or positive margin, zero violation count, an inverted region
//! interval, or a witness value outside its region. No partially decoded
//! witness escapes.

use safex_tensor::crc::crc32;

use crate::error::FalsifyError;
use crate::falsifier::CounterexampleCell;
use crate::space::{ParamRange, ScenarioPoint};
use crate::spec::ViolationKind;

/// Witness container magic.
pub const WITNESS_MAGIC: &[u8; 6] = b"SXWITN";
/// Current witness format version.
pub const WITNESS_VERSION: u16 = 1;
/// Longest accepted spec or dimension name, in bytes.
const MAX_NAME: usize = 256;
/// Most dimensions a witness point may carry.
const MAX_DIMS: usize = 64;

/// One counterexample witness plus the campaign seed that replays it.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessFile {
    /// Master search seed of the campaign that found the witness; with
    /// [`CounterexampleCell::witness_eval`] it reproduces the exact
    /// evaluation stream.
    pub seed: u64,
    /// The frozen counterexample.
    pub cell: CounterexampleCell,
}

impl WitnessFile {
    /// Wraps a cell with its campaign seed.
    pub fn new(seed: u64, cell: CounterexampleCell) -> Self {
        WitnessFile { seed, cell }
    }

    /// Encodes to the versioned, checksummed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u64(&mut p, self.seed);
        put_str(&mut p, &self.cell.spec);
        p.push(kind_tag(self.cell.kind));
        put_u64(&mut p, self.cell.witness_eval);
        put_u64(&mut p, self.cell.witness_digest);
        put_u64(&mut p, self.cell.margin.to_bits());
        put_u64(&mut p, self.cell.violations);
        put_u64(&mut p, self.cell.region.len() as u64);
        for (range, &value) in self.cell.region.iter().zip(&self.cell.witness.values) {
            put_str(&mut p, &range.name);
            put_u64(&mut p, range.lo.to_bits());
            put_u64(&mut p, range.hi.to_bits());
            put_u64(&mut p, value.to_bits());
        }
        let mut out = Vec::with_capacity(p.len() + 20);
        out.extend_from_slice(WITNESS_MAGIC);
        out.extend_from_slice(&WITNESS_VERSION.to_le_bytes());
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        let checksum = crc32(p.iter().copied());
        out.extend_from_slice(&p);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes and fully validates a witness container.
    ///
    /// # Errors
    ///
    /// Returns [`FalsifyError::BadWitness`] on any structural or
    /// semantic defect (see the module docs for the full list); no
    /// partial state escapes.
    pub fn decode(bytes: &[u8]) -> Result<Self, FalsifyError> {
        if bytes.len() < 20 {
            return Err(bad("container shorter than the fixed header"));
        }
        if &bytes[..6] != WITNESS_MAGIC {
            return Err(bad("bad magic"));
        }
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        if version != WITNESS_VERSION {
            return Err(FalsifyError::BadWitness(format!(
                "unsupported witness version {version} (expected {WITNESS_VERSION})"
            )));
        }
        let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        // Compare against the actual remainder instead of computing
        // `16 + len + 4` from the attacker-controlled field, which would
        // overflow on a lie.
        let len = bytes.len() - 20;
        if declared != len as u64 {
            return Err(FalsifyError::BadWitness(format!(
                "container length {} does not match declared payload of {declared} bytes",
                bytes.len()
            )));
        }
        let payload = &bytes[16..16 + len];
        let stored = u32::from_le_bytes(bytes[16 + len..].try_into().expect("4 bytes"));
        let actual = crc32(payload.iter().copied());
        if stored != actual {
            return Err(FalsifyError::BadWitness(format!(
                "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }

        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let seed = r.u64()?;
        let spec = r.str("spec name")?;
        if spec.is_empty() {
            return Err(bad("empty spec name"));
        }
        let kind = kind_from_tag(r.u8()?)?;
        let witness_eval = r.u64()?;
        let witness_digest = r.u64()?;
        let margin = f64::from_bits(r.u64()?);
        if !margin.is_finite() || margin > 0.0 {
            return Err(FalsifyError::BadWitness(format!(
                "witness margin {margin} is not a finite violation (must be <= 0)"
            )));
        }
        let violations = r.u64()?;
        if violations == 0 {
            return Err(bad("witness with zero violations"));
        }
        let dims = r.u64()? as usize;
        if dims == 0 || dims > MAX_DIMS {
            return Err(FalsifyError::BadWitness(format!(
                "implausible dimension count {dims}"
            )));
        }
        let mut region = Vec::with_capacity(dims);
        let mut values = Vec::with_capacity(dims);
        for d in 0..dims {
            let name = r.str("dimension name")?;
            if name.is_empty() {
                return Err(bad("empty dimension name"));
            }
            let lo = f64::from_bits(r.u64()?);
            let hi = f64::from_bits(r.u64()?);
            let value = f64::from_bits(r.u64()?);
            if !lo.is_finite() || !hi.is_finite() || !value.is_finite() {
                return Err(FalsifyError::BadWitness(format!(
                    "non-finite bound or value in dimension {d}"
                )));
            }
            if lo > hi {
                return Err(FalsifyError::BadWitness(format!(
                    "inverted region [{lo}, {hi}] in dimension {d}"
                )));
            }
            if value < lo || value > hi {
                return Err(FalsifyError::BadWitness(format!(
                    "witness value {value} outside its region [{lo}, {hi}] in dimension {d}"
                )));
            }
            region.push(ParamRange { name, lo, hi });
            values.push(value);
        }
        r.finish()?;

        Ok(WitnessFile {
            seed,
            cell: CounterexampleCell {
                spec,
                kind,
                region,
                witness: ScenarioPoint { values },
                witness_eval,
                witness_digest,
                margin,
                violations,
            },
        })
    }
}

fn bad(msg: &str) -> FalsifyError {
    FalsifyError::BadWitness(msg.into())
}

fn kind_tag(kind: ViolationKind) -> u8 {
    match kind {
        ViolationKind::SupervisorMisGate => 0,
        ViolationKind::PatternDisagreement => 1,
        ViolationKind::ConfidentMisclass => 2,
        ViolationKind::TemporalErrorBound => 3,
    }
}

fn kind_from_tag(tag: u8) -> Result<ViolationKind, FalsifyError> {
    Ok(match tag {
        0 => ViolationKind::SupervisorMisGate,
        1 => ViolationKind::PatternDisagreement,
        2 => ViolationKind::ConfidentMisclass,
        3 => ViolationKind::TemporalErrorBound,
        _ => {
            return Err(FalsifyError::BadWitness(format!(
                "unknown violation kind tag {tag}"
            )))
        }
    })
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], FalsifyError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("payload truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FalsifyError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, FalsifyError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self, what: &str) -> Result<String, FalsifyError> {
        let len = self.u64()? as usize;
        if len > MAX_NAME {
            return Err(FalsifyError::BadWitness(format!(
                "{what} of {len} bytes exceeds the {MAX_NAME}-byte bound"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FalsifyError::BadWitness(format!("{what} is not valid UTF-8")))
    }

    fn finish(&self) -> Result<(), FalsifyError> {
        if self.pos != self.buf.len() {
            return Err(FalsifyError::BadWitness(format!(
                "{} bytes of trailing garbage after the payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CounterexampleCell {
        CounterexampleCell {
            spec: "confident_misclass".into(),
            kind: ViolationKind::ConfidentMisclass,
            region: vec![
                ParamRange {
                    name: "noise_std".into(),
                    lo: 0.4,
                    hi: 0.9,
                },
                ParamRange {
                    name: "shift".into(),
                    lo: 2.0,
                    hi: 2.0,
                },
            ],
            witness: ScenarioPoint {
                values: vec![0.7125, 2.0],
            },
            witness_eval: 137,
            witness_digest: 0xD16E57,
            margin: -0.25,
            violations: 12,
        }
    }

    #[test]
    fn round_trip() {
        let file = WitnessFile::new(0xFA15, cell());
        let bytes = file.encode();
        let decoded = WitnessFile::decode(&bytes).expect("decode");
        assert_eq!(decoded, file);
    }

    #[test]
    fn every_truncation_fails_closed() {
        let bytes = WitnessFile::new(7, cell()).encode();
        for len in 0..bytes.len() {
            assert!(
                WitnessFile::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(WitnessFile::decode(&extended).is_err(), "trailing garbage");
    }

    #[test]
    fn any_flipped_byte_fails_closed() {
        let bytes = WitnessFile::new(7, cell()).encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                WitnessFile::decode(&corrupt).is_err(),
                "flip at byte {i} must fail"
            );
        }
    }

    #[test]
    fn semantic_lies_behind_a_valid_checksum_fail_closed() {
        // Rebuild the container around a tampered payload with a correct
        // CRC: the structural validators must still refuse it.
        let reject = |tamper: fn(&mut CounterexampleCell)| {
            let mut c = cell();
            tamper(&mut c);
            WitnessFile::decode(&WitnessFile::new(7, c).encode())
        };
        assert!(reject(|c| c.margin = 0.5).is_err(), "positive margin");
        assert!(reject(|c| c.margin = f64::NAN).is_err(), "NaN margin");
        assert!(reject(|c| c.violations = 0).is_err(), "zero violations");
        assert!(
            reject(|c| c.region[0].lo = 1.5).is_err(),
            "inverted interval"
        );
        assert!(
            reject(|c| c.witness.values[0] = 99.0).is_err(),
            "witness outside region"
        );
        assert!(reject(|c| c.spec = String::new()).is_err(), "empty spec");
    }

    #[test]
    fn length_lie_is_a_typed_error_not_a_panic() {
        let mut bytes = WitnessFile::new(7, cell()).encode();
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            WitnessFile::decode(&bytes),
            Err(FalsifyError::BadWitness(_))
        ));
    }
}
