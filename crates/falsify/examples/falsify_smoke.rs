//! Bounded falsification smoke check, driven by `scripts/check.sh
//! --falsify-smoke`.
//!
//! Runs the default search budget against the automotive classification
//! workload and the temporal trajectory task and exits non-zero unless
//! both rediscover a seeded violation region. This is the cheap
//! end-to-end guard that the search driver, runners, and specification
//! catalogue still compose: a few hundred pipeline evaluations, a couple
//! of seconds in release.

use safex_falsify::{
    BackendKind, ClassificationRunner, ConfidentMisclass, Domain, Falsifier, FalsifyConfig,
    FalsifyReport, ScenarioRunner, Specification, SupervisorMisGate, TemporalErrorBound,
};

fn summarize(label: &str, report: &FalsifyReport) {
    println!(
        "{label}: {} evaluations, first violation at {:?}",
        report.evaluations, report.first_violation_eval
    );
    for cell in &report.cells {
        let region: Vec<String> = cell
            .region
            .iter()
            .map(|r| format!("{} in [{:.3}, {:.3}]", r.name, r.lo, r.hi))
            .collect();
        println!(
            "  {}: {} violations, worst margin {:.3}, region {{{}}}",
            cell.spec,
            cell.violations,
            cell.margin,
            region.join(", ")
        );
    }
}

fn search(
    label: &str,
    runner: &dyn ScenarioRunner,
    specs: &[Box<dyn Specification>],
    expect: &str,
) -> Result<bool, safex_falsify::FalsifyError> {
    let report = Falsifier::new(FalsifyConfig {
        workers: 4,
        ..FalsifyConfig::default()
    })?
    .falsify(runner, specs)?;
    summarize(label, &report);
    let found = report.cell(expect).is_some();
    if !found {
        println!("  MISSING expected counterexample for {expect:?}");
    }
    Ok(found)
}

fn main() -> Result<(), safex_falsify::FalsifyError> {
    let train_seed = 11;

    let automotive = ClassificationRunner::new(Domain::Automotive, BackendKind::F32, train_seed)?;
    let class_specs: Vec<Box<dyn Specification>> = vec![
        Box::new(SupervisorMisGate),
        Box::new(ConfidentMisclass::new(0.7)?),
    ];
    let auto_ok = search(
        "automotive",
        &automotive,
        &class_specs,
        "confident_misclass",
    )?;

    let trajectory = safex_falsify::TrajectoryRunner::new(BackendKind::F32, train_seed)?;
    let traj_specs: Vec<Box<dyn Specification>> = vec![
        Box::new(SupervisorMisGate),
        Box::new(TemporalErrorBound::new(3.0)?),
    ];
    let traj_ok = search(
        "trajectory",
        &trajectory,
        &traj_specs,
        "temporal_error_bound",
    )?;

    if auto_ok && traj_ok {
        println!("falsify smoke: OK");
        Ok(())
    } else {
        println!("falsify smoke: FAILED");
        std::process::exit(1);
    }
}
