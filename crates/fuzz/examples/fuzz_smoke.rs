//! The `check.sh --fuzz-smoke` entry point: one bounded, seed-printed
//! smoke run across all five fuzzing surfaces.
//!
//! ```text
//! SAFEX_FUZZ_SEED=0x5afef02220260808 SAFEX_FUZZ_ITERS=12000 \
//!     cargo run --release -p safex-fuzz --example fuzz_smoke
//! ```
//!
//! Exits nonzero if any surface produced a finding; byte-surface
//! findings are printed with their minimised reproducer hex, ready to
//! land in `crates/fuzz/corpus/` as a named regression test.

use std::process::ExitCode;
use std::time::Instant;

use safex_fuzz::{run_smoke, SmokeConfig};

fn main() -> ExitCode {
    let config = SmokeConfig::from_env();
    println!(
        "fuzz-smoke seed {:#018x} (override: SAFEX_FUZZ_SEED; scale: SAFEX_FUZZ_ITERS)",
        config.seed
    );
    let start = Instant::now();
    let report = run_smoke(&config, true);
    let wall = start.elapsed().as_secs_f64();

    for (surface, cases) in &report.cases {
        let found = report
            .findings
            .iter()
            .filter(|f| f.surface.starts_with(surface.as_str()))
            .count();
        println!("  {surface:<10} {cases:>6} cases  {found} findings");
    }
    println!(
        "fuzz-smoke: {} cases, {} findings, {wall:.2}s wall",
        report.total_cases(),
        report.findings.len()
    );

    if report.findings.is_empty() {
        return ExitCode::SUCCESS;
    }
    for f in &report.findings {
        println!(
            "FINDING [{}] seed {:#x} case {}: {}",
            f.surface, f.seed, f.case, f.detail
        );
        if let Some(bytes) = &f.reproducer {
            let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
            println!("  minimised reproducer ({} bytes): {hex}", bytes.len());
        }
    }
    ExitCode::FAILURE
}
