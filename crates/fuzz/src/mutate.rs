//! Typed byte-level mutators over serialized containers.
//!
//! A mutation is *typed* — the harness records which operator produced a
//! failing input, so a finding reads "length-field lie at offset 8", not
//! "bytes differed". All operators are pure functions of
//! `(input, DetRng state)`: replaying the same seed reproduces the same
//! mutated byte string, which is what lets a finding be named by its
//! `(surface, seed, case)` coordinates alone.
//!
//! The operator palette follows the grammar of the formats under test
//! (length-prefixed little-endian fields behind a CRC/digest footer):
//!
//! * [`Mutation::BitFlip`] — classic SEU-style single-bit damage.
//! * [`Mutation::ByteSplat`] — overwrite a run of bytes with one value
//!   (simulates a torn write / zero page).
//! * [`Mutation::Truncate`] — cut the container short.
//! * [`Mutation::Extend`] — append trailing garbage.
//! * [`Mutation::LengthLie`] — rewrite 8 consecutive bytes as a huge
//!   little-endian u64, aimed at length/count fields.
//! * [`Mutation::CrcFixup`] — corrupt the payload *and* recompute the
//!   container CRC so the damage reaches the structural validators
//!   behind the checksum (snapshot surface only; formats whose integrity
//!   field is a semantic digest cannot be fixed up from bytes alone).
//! * [`Mutation::Splice`] — head of one valid container glued to the
//!   tail of another.

use safex_tensor::crc::crc32;
use safex_tensor::DetRng;

/// One applied mutation, in reproducible coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flipped bit `bit` of byte `offset`.
    BitFlip {
        /// Byte offset.
        offset: usize,
        /// Bit index 0..8.
        bit: u8,
    },
    /// Overwrote `len` bytes at `offset` with `value`.
    ByteSplat {
        /// Start offset.
        offset: usize,
        /// Run length.
        len: usize,
        /// Splat value.
        value: u8,
    },
    /// Truncated the container to `len` bytes.
    Truncate {
        /// Retained prefix length.
        len: usize,
    },
    /// Appended `extra` garbage bytes.
    Extend {
        /// Appended byte count.
        extra: usize,
    },
    /// Rewrote 8 bytes at `offset` as the little-endian u64 `value`.
    LengthLie {
        /// Field offset.
        offset: usize,
        /// The lie.
        value: u64,
    },
    /// Flipped bit `bit` of payload byte `offset`, then rewrote the
    /// trailing CRC-32 so the container checksum still verifies.
    CrcFixup {
        /// Payload byte offset (absolute, within the container).
        offset: usize,
        /// Bit index 0..8.
        bit: u8,
    },
    /// Glued `head` bytes of input A onto the tail of input B starting
    /// at `tail`.
    Splice {
        /// Prefix length taken from the first input.
        head: usize,
        /// Suffix start in the second input.
        tail: usize,
    },
}

impl Mutation {
    /// Short stable tag for finding reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Mutation::BitFlip { .. } => "bit_flip",
            Mutation::ByteSplat { .. } => "byte_splat",
            Mutation::Truncate { .. } => "truncate",
            Mutation::Extend { .. } => "extend",
            Mutation::LengthLie { .. } => "length_lie",
            Mutation::CrcFixup { .. } => "crc_fixup",
            Mutation::Splice { .. } => "splice",
        }
    }
}

/// Layout facts a mutator needs to aim structure-aware operators.
#[derive(Debug, Clone, Copy)]
pub struct ContainerLayout {
    /// First byte of the length-prefixed payload (after magic/version/
    /// length header), when the format has one.
    pub payload_start: usize,
    /// Offset of the container's u64 length field, when the format has
    /// one ([`Mutation::LengthLie`] prefers it).
    pub length_field: Option<usize>,
    /// `true` when the container ends in a CRC-32 over the payload that
    /// [`Mutation::CrcFixup`] can recompute from bytes alone.
    pub crc_trailer: bool,
}

impl ContainerLayout {
    /// A format with no known structure: aim everywhere, fix up nothing.
    pub fn opaque() -> Self {
        ContainerLayout {
            payload_start: 0,
            length_field: None,
            crc_trailer: false,
        }
    }
}

/// Applies one seeded mutation to `input` (with `other` as the splice
/// partner), returning the mutated bytes and the typed record of what
/// was done. Deterministic in `rng`'s state.
pub fn mutate(
    input: &[u8],
    other: &[u8],
    layout: ContainerLayout,
    rng: &mut DetRng,
) -> (Vec<u8>, Mutation) {
    // Weighted operator draw: cheap, always-applicable operators carry
    // the bulk; structure-aware ones fire when the layout allows.
    loop {
        match rng.below_usize(8) {
            0 | 1 => {
                if input.is_empty() {
                    continue;
                }
                let offset = rng.below_usize(input.len());
                let bit = (rng.next_u64() % 8) as u8;
                let mut out = input.to_vec();
                out[offset] ^= 1 << bit;
                return (out, Mutation::BitFlip { offset, bit });
            }
            2 => {
                if input.is_empty() {
                    continue;
                }
                let offset = rng.below_usize(input.len());
                let len = 1 + rng.below_usize((input.len() - offset).min(16));
                let value = [0x00, 0xFF, 0x7F, 0x80][rng.below_usize(4)];
                let mut out = input.to_vec();
                out[offset..offset + len].fill(value);
                return (out, Mutation::ByteSplat { offset, len, value });
            }
            3 => {
                let len = rng.below_usize(input.len() + 1);
                return (input[..len].to_vec(), Mutation::Truncate { len });
            }
            4 => {
                let extra = 1 + rng.below_usize(24);
                let mut out = input.to_vec();
                for _ in 0..extra {
                    out.push(rng.next_u64() as u8);
                }
                return (out, Mutation::Extend { extra });
            }
            5 => {
                if input.len() < 8 {
                    continue;
                }
                // Aim the declared length field when known, otherwise any
                // 8-byte window — most fields in these formats are u64
                // counts, so random windows still hit counts often.
                let offset = match (layout.length_field, rng.below_usize(3)) {
                    (Some(f), 0 | 1) if f + 8 <= input.len() => f,
                    _ => rng.below_usize(input.len() - 7),
                };
                let value = match rng.below_usize(4) {
                    0 => u64::MAX,
                    1 => u64::MAX - rng.next_u64() % 32,
                    2 => 1u64 << (32 + rng.next_u64() % 32),
                    _ => input.len() as u64 + 1 + rng.next_u64() % 1024,
                };
                let mut out = input.to_vec();
                out[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
                return (out, Mutation::LengthLie { offset, value });
            }
            6 => {
                // CRC-preserving corruption: only meaningful when the
                // trailer is a recomputable CRC and a payload exists.
                if !layout.crc_trailer || input.len() < layout.payload_start + 5 {
                    continue;
                }
                let payload_end = input.len() - 4;
                if payload_end <= layout.payload_start {
                    continue;
                }
                let offset =
                    layout.payload_start + rng.below_usize(payload_end - layout.payload_start);
                let bit = (rng.next_u64() % 8) as u8;
                let mut out = input.to_vec();
                out[offset] ^= 1 << bit;
                let crc = crc32(out[layout.payload_start..payload_end].iter().copied());
                out[payload_end..].copy_from_slice(&crc.to_le_bytes());
                return (out, Mutation::CrcFixup { offset, bit });
            }
            _ => {
                if input.is_empty() || other.is_empty() {
                    continue;
                }
                let head = rng.below_usize(input.len() + 1);
                let tail = rng.below_usize(other.len());
                let mut out = input[..head].to_vec();
                out.extend_from_slice(&other[tail..]);
                return (out, Mutation::Splice { head, tail });
            }
        }
    }
}

/// Greedy corpus minimiser: shrinks `input` while `still_fails` holds.
///
/// Three passes run to a fixed point: remove exponentially shrinking
/// chunks, then truncate from the tail, then zero bytes (so the surviving
/// non-zero bytes are exactly the ones the failure needs). The result is
/// the corpus artefact checked in as a named regression test — small
/// enough to read, byte-reproducible forever.
pub fn minimize(input: &[u8], still_fails: impl Fn(&[u8]) -> bool) -> Vec<u8> {
    let mut best = input.to_vec();
    debug_assert!(still_fails(&best), "minimize needs a failing input");
    loop {
        let before = best.clone();
        // Pass 1: chunk removal, halving chunk sizes.
        let mut chunk = (best.len() / 2).max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < best.len() {
                let end = (start + chunk).min(best.len());
                let mut candidate = best[..start].to_vec();
                candidate.extend_from_slice(&best[end..]);
                if !candidate.is_empty() && still_fails(&candidate) {
                    best = candidate;
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Pass 2: tail truncation.
        while best.len() > 1 && still_fails(&best[..best.len() - 1]) {
            best.pop();
        }
        // Pass 3: byte zeroing.
        for i in 0..best.len() {
            if best[i] != 0 {
                let mut candidate = best.clone();
                candidate[i] = 0;
                if still_fails(&candidate) {
                    best = candidate;
                }
            }
        }
        if best == before {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_are_seed_reproducible() {
        let input: Vec<u8> = (0..64u8).collect();
        let other: Vec<u8> = (64..128u8).collect();
        let layout = ContainerLayout {
            payload_start: 16,
            length_field: Some(8),
            crc_trailer: true,
        };
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..200 {
            let (ba, ma) = mutate(&input, &other, layout, &mut a);
            let (bb, mb) = mutate(&input, &other, layout, &mut b);
            assert_eq!(ba, bb);
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn every_operator_fires() {
        let input: Vec<u8> = (0..64u8).collect();
        let other: Vec<u8> = (64..128u8).collect();
        let layout = ContainerLayout {
            payload_start: 16,
            length_field: Some(8),
            crc_trailer: true,
        };
        let mut rng = DetRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (_, m) = mutate(&input, &other, layout, &mut rng);
            seen.insert(m.tag());
        }
        for tag in [
            "bit_flip",
            "byte_splat",
            "truncate",
            "extend",
            "length_lie",
            "crc_fixup",
            "splice",
        ] {
            assert!(seen.contains(tag), "operator {tag} never fired");
        }
    }

    #[test]
    fn crc_fixup_keeps_the_container_checksum_valid() {
        // Build a miniature "container": 16-byte header, payload, CRC.
        let payload: Vec<u8> = (0..32u8).collect();
        let mut container = vec![0u8; 16];
        container.extend_from_slice(&payload);
        let crc = crc32(payload.iter().copied());
        container.extend_from_slice(&crc.to_le_bytes());
        let layout = ContainerLayout {
            payload_start: 16,
            length_field: None,
            crc_trailer: true,
        };
        let mut rng = DetRng::new(11);
        let mut fixed = 0;
        for _ in 0..300 {
            let (out, m) = mutate(&container, &container, layout, &mut rng);
            if let Mutation::CrcFixup { .. } = m {
                fixed += 1;
                let end = out.len() - 4;
                let actual = crc32(out[16..end].iter().copied());
                let stored = u32::from_le_bytes(out[end..].try_into().unwrap());
                assert_eq!(actual, stored, "fixup must recompute the CRC");
                assert_ne!(out[16..end], container[16..container.len() - 4]);
            }
        }
        assert!(fixed > 0);
    }

    #[test]
    fn minimizer_reaches_a_small_reproducer() {
        // Failure condition: contains the byte 0xAB somewhere.
        let mut input = vec![0u8; 500];
        input[321] = 0xAB;
        input[400] = 0x55;
        let minimal = minimize(&input, |bytes| bytes.contains(&0xAB));
        assert_eq!(minimal, vec![0xAB]);
    }
}
