//! Decode harnesses for the byte-level surfaces.
//!
//! Every untrusted decoder in the workspace promises the same contract:
//! **fail closed with a typed error, never panic, never partially
//! apply**. A probe runs one decoder on one (usually mutated) byte
//! string under `catch_unwind` and classifies the outcome:
//!
//! * [`ProbeOutcome::Rejected`] — a typed error; the promised behaviour
//!   for invalid input.
//! * [`ProbeOutcome::Accepted`] — decoded successfully *and* survived a
//!   round-trip stability check (re-encode → re-decode → equal value).
//!   Mutations that keep the container coherent — CRC-preserving
//!   corruption that still passes every field validator — are allowed to
//!   decode, but what decodes must be a fixed point of the codec.
//! * [`ProbeOutcome::Panicked`] — a crash escaped the decoder; always a
//!   finding.
//! * [`ProbeOutcome::FailOpen`] — an accepted value failed the
//!   stability check, i.e. the decoder manufactured state the encoder
//!   cannot represent; always a finding.

use std::panic::{catch_unwind, AssertUnwindSafe};

use safex_falsify::WitnessFile;
use safex_nn::io::{load_model, save_model};
use safex_serve::ServerSnapshot;

/// Classified result of one decode probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Typed error — the contract held.
    Rejected,
    /// Decoded and round-trip stable.
    Accepted,
    /// A panic escaped the decoder (payload message when extractable).
    Panicked(String),
    /// Decoded but not round-trip stable.
    FailOpen(String),
}

impl ProbeOutcome {
    /// `true` for the two outcome classes that constitute a finding.
    pub fn is_finding(&self) -> bool {
        matches!(self, ProbeOutcome::Panicked(_) | ProbeOutcome::FailOpen(_))
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Probes [`ServerSnapshot::decode`].
pub fn probe_snapshot(bytes: &[u8]) -> ProbeOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| ServerSnapshot::decode(bytes)));
    match result {
        Err(payload) => ProbeOutcome::Panicked(panic_message(payload)),
        Ok(Err(_)) => ProbeOutcome::Rejected,
        Ok(Ok(snapshot)) => {
            let reencoded = snapshot.encode();
            match ServerSnapshot::decode(&reencoded) {
                Ok(again) if again == snapshot => ProbeOutcome::Accepted,
                Ok(_) => ProbeOutcome::FailOpen("re-decode disagrees with first decode".into()),
                Err(e) => ProbeOutcome::FailOpen(format!("re-encode does not decode: {e}")),
            }
        }
    }
}

/// Probes [`load_model`]. Stability oracle: a loaded model re-saves to
/// bytes that load again; weight equality is enforced by the format's
/// own content digest.
pub fn probe_model(bytes: &[u8]) -> ProbeOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| load_model(bytes)));
    match result {
        Err(payload) => ProbeOutcome::Panicked(panic_message(payload)),
        Ok(Err(_)) => ProbeOutcome::Rejected,
        Ok(Ok(model)) => {
            let mut reencoded = Vec::new();
            if save_model(&model, &mut reencoded).is_err() {
                return ProbeOutcome::FailOpen("loaded model does not re-save".into());
            }
            match load_model(&reencoded[..]) {
                Ok(_) => ProbeOutcome::Accepted,
                Err(e) => ProbeOutcome::FailOpen(format!("re-save does not load: {e}")),
            }
        }
    }
}

/// Probes [`WitnessFile::decode`].
pub fn probe_witness(bytes: &[u8]) -> ProbeOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| WitnessFile::decode(bytes)));
    match result {
        Err(payload) => ProbeOutcome::Panicked(panic_message(payload)),
        Ok(Err(_)) => ProbeOutcome::Rejected,
        Ok(Ok(witness)) => {
            let reencoded = witness.encode();
            match WitnessFile::decode(&reencoded) {
                Ok(again) if again == witness => ProbeOutcome::Accepted,
                Ok(_) => ProbeOutcome::FailOpen("re-decode disagrees with first decode".into()),
                Err(e) => ProbeOutcome::FailOpen(format!("re-encode does not decode: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn valid_inputs_are_accepted_garbage_is_rejected() {
        assert_eq!(
            probe_snapshot(&gen::snapshot_bytes(2)),
            ProbeOutcome::Accepted
        );
        assert_eq!(probe_model(&gen::model_bytes(2)), ProbeOutcome::Accepted);
        assert_eq!(
            probe_witness(&gen::witness_bytes(2)),
            ProbeOutcome::Accepted
        );

        for probe in [probe_snapshot, probe_model, probe_witness] {
            assert_eq!(probe(b""), ProbeOutcome::Rejected);
            assert_eq!(
                probe(b"garbage that is not a container"),
                ProbeOutcome::Rejected
            );
        }
    }
}
