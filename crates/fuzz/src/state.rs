//! Stateful command-sequence fuzzing for the admission machinery and
//! the health ladder.
//!
//! Byte fuzzing covers what comes *off the wire*; these drivers cover
//! what happens *after* — arbitrary interleavings of operations against
//! the [`AdmissionQueue`] + [`BatchPolicy`] + [`FairnessPolicy`] stack
//! and the [`HealthMonitor`] ladder, each checked against explicit
//! invariants rather than example-based expectations:
//!
//! **Queue:** full-state agreement with an independently written
//! reference model after every operation, request conservation (nothing
//! silently dropped: admitted = queued + selected + displaced), bounded
//! depth, admission-ordered selection output, displacement legality
//! (victim strictly below the incoming tier, only when full), and
//! [`BatchPolicy::flush_at`] bounds (never before `free_at` or the
//! oldest entry, exact on a full batch, never past the linger bound).
//!
//! **Ladder:** time-in-state accounting equals the decision count,
//! transition-log continuity, latched SafeStop under `resume_after = 0`,
//! and export → restore → lockstep equivalence, including tampered
//! exports that must fail closed or restore to a state indistinguishable
//! from a live monitor.

use std::panic::{catch_unwind, AssertUnwindSafe};

use safex_core::health::{HealthConfig, HealthMonitor, HealthState, HealthVerdict, LadderState};
use safex_serve::{Admission, AdmissionQueue, BatchPolicy, FairnessPolicy, Pending, Request, Tier};
use safex_tensor::DetRng;

/// One invariant violation found by a state-machine driver.
#[derive(Debug, Clone)]
pub struct StateFinding {
    /// Which invariant broke.
    pub invariant: String,
    /// The sequence seed that reproduces it.
    pub seed: u64,
    /// Operation index within the sequence.
    pub op: usize,
}

fn tier_of(rng: &mut DetRng) -> Tier {
    match rng.next_u64() % 3 {
        0 => Tier::Low,
        1 => Tier::Medium,
        _ => Tier::High,
    }
}

/// Reference reimplementation of the documented fairness selection:
/// reserved slots highest tier first (admission order within a tier),
/// then aged priority with FIFO tie-breaks. Returns chosen indices.
fn reference_select(
    items: &[Pending],
    n: usize,
    now: u64,
    fairness: &FairnessPolicy,
) -> Vec<usize> {
    let n = n.min(items.len());
    if n == 0 {
        return Vec::new();
    }
    let mut chosen = vec![false; items.len()];
    let mut slots = n;
    for tier in [Tier::High, Tier::Medium, Tier::Low] {
        let mut quota = fairness.reserved[tier.index()].min(slots);
        for (i, p) in items.iter().enumerate() {
            if quota == 0 {
                break;
            }
            if !chosen[i] && p.request.tier == tier {
                chosen[i] = true;
                quota -= 1;
                slots -= 1;
            }
        }
    }
    if slots > 0 {
        let effective = |p: &Pending| -> u64 {
            let waited = now.saturating_sub(p.queued_at);
            let base = p.request.tier.index() as u64;
            match waited.checked_div(fairness.age_step) {
                Some(promoted) => base.saturating_add(promoted),
                None => base,
            }
        };
        let mut rest: Vec<usize> = (0..items.len()).filter(|&i| !chosen[i]).collect();
        rest.sort_by_key(|&i| {
            (
                std::cmp::Reverse(effective(&items[i])),
                items[i].queued_at,
                items[i].request.id,
            )
        });
        for &i in rest.iter().take(slots) {
            chosen[i] = true;
        }
    }
    (0..items.len()).filter(|&i| chosen[i]).collect()
}

/// Runs `sequences` seeded operation sequences against the admission
/// stack; returns `(cases, findings)`.
pub fn fuzz_queue(seed: u64, sequences: u64) -> (u64, Vec<StateFinding>) {
    let mut findings = Vec::new();
    for s in 0..sequences {
        let seq_seed = seed.wrapping_add(s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = DetRng::new(seq_seed);
        let cap = 1 + rng.below_usize(6);
        let mut fairness = FairnessPolicy::default();
        fairness.age_step = if rng.next_u64().is_multiple_of(4) {
            0
        } else {
            1 + rng.next_u64() % 80
        };
        fairness.reserved = [rng.below_usize(3), rng.below_usize(3), rng.below_usize(3)];
        let policy = BatchPolicy::default()
            .with_max_batch(1 + rng.below_usize(8))
            .with_flush_slack(rng.next_u64() % 64)
            .with_max_linger(rng.next_u64() % 64)
            .with_queue_cap(cap);
        let mut q = AdmissionQueue::new(cap);
        let mut mirror: Vec<Pending> = Vec::new();
        let mut next_id = 0u64;
        let mut now = 0u64;
        let mut admitted = 0u64;
        let mut displaced = 0u64;
        let mut selected_total = 0u64;
        let mut last_selected: Vec<Pending> = Vec::new();
        let ops = 8 + rng.below_usize(24);
        let fail = |invariant: String, op: usize| StateFinding {
            invariant,
            seed: seq_seed,
            op,
        };
        for op in 0..ops {
            now += rng.next_u64() % 16;
            match rng.next_u64() % 8 {
                // Offer dominates: admission is the displacement surface.
                0..=3 => {
                    let tier = tier_of(&mut rng);
                    let request = Request::new(next_id, vec![0.0], tier, now + 1_000);
                    next_id += 1;
                    let before = mirror.len();
                    let result = q.offer(request.clone(), now);
                    // Reference admission.
                    let expected = if before < cap {
                        mirror.push(Pending {
                            request: request.clone(),
                            queued_at: now,
                        });
                        Admission::Accepted
                    } else {
                        let victim = mirror
                            .iter()
                            .enumerate()
                            .filter(|(_, p)| p.request.tier < tier)
                            .min_by_key(|(i, p)| (p.request.tier, std::cmp::Reverse(*i)))
                            .map(|(i, _)| i);
                        match victim {
                            Some(i) => {
                                let evicted = mirror.remove(i);
                                mirror.push(Pending {
                                    request: request.clone(),
                                    queued_at: now,
                                });
                                Admission::Displaced(evicted)
                            }
                            None => Admission::Rejected,
                        }
                    };
                    match (&result, &expected) {
                        (Admission::Accepted, Admission::Accepted)
                        | (Admission::Rejected, Admission::Rejected) => {}
                        (Admission::Displaced(got), Admission::Displaced(want)) => {
                            if got != want {
                                findings.push(fail(
                                    format!(
                                        "displacement victim {} != reference {}",
                                        got.request.id, want.request.id
                                    ),
                                    op,
                                ));
                                break;
                            }
                            if got.request.tier >= tier {
                                findings.push(fail(
                                    "displaced a victim at or above the incoming tier".into(),
                                    op,
                                ));
                                break;
                            }
                        }
                        _ => {
                            findings.push(fail(
                                format!("admission {result:?} != reference {expected:?}"),
                                op,
                            ));
                            break;
                        }
                    }
                    match result {
                        Admission::Accepted => admitted += 1,
                        Admission::Displaced(_) => {
                            admitted += 1;
                            displaced += 1;
                        }
                        Admission::Rejected => {}
                    }
                    // Admission must never grow the queue beyond cap;
                    // only `put_back` may (transiently) overfill it.
                    if q.len() > cap.max(before) {
                        findings.push(fail(
                            format!("offer grew depth to {} over cap {cap}", q.len()),
                            op,
                        ));
                        break;
                    }
                }
                4 | 5 => {
                    let n = rng.below_usize(cap + 2);
                    let chosen = reference_select(&mirror, n, now, &fairness);
                    let batch = q.select(n, now, &fairness);
                    let want: Vec<u64> = chosen
                        .iter()
                        .map(|&i| mirror[i.to_owned()].request.id)
                        .collect();
                    let got: Vec<u64> = batch.iter().map(|p| p.request.id).collect();
                    if got != want {
                        findings.push(fail(format!("selection {got:?} != reference {want:?}"), op));
                        break;
                    }
                    // Selection output must be in admission order.
                    let ordered = batch.windows(2).all(|w| {
                        (w[0].queued_at, w[0].request.id) <= (w[1].queued_at, w[1].request.id)
                    });
                    if !ordered {
                        findings.push(fail("selected batch out of admission order".into(), op));
                        break;
                    }
                    let mut keep = Vec::new();
                    for (i, p) in mirror.drain(..).enumerate() {
                        if !chosen.contains(&i) {
                            keep.push(p);
                        }
                    }
                    mirror = keep;
                    selected_total += batch.len() as u64;
                    last_selected = batch;
                }
                6 => {
                    // Return a random subset of the last selection.
                    let mut back = Vec::new();
                    let mut rest = Vec::new();
                    for p in last_selected.drain(..) {
                        if rng.next_u64().is_multiple_of(2) {
                            back.push(p);
                        } else {
                            rest.push(p);
                        }
                    }
                    selected_total -= back.len() as u64;
                    mirror.extend(back.iter().cloned());
                    mirror.sort_by_key(|p| (p.queued_at, p.request.id));
                    q.put_back(back);
                    last_selected = rest;
                }
                _ => {
                    // flush_at bounds against a random free_at.
                    let free_at = rng.next_u64() % 256;
                    match policy.flush_at(q.items(), free_at) {
                        None => {
                            if !q.is_empty() {
                                findings.push(fail(
                                    "flush_at returned None on a non-empty queue".into(),
                                    op,
                                ));
                                break;
                            }
                        }
                        Some(t) => {
                            let oldest = &q.items()[0];
                            let floor = free_at.max(oldest.queued_at);
                            if t < floor {
                                findings.push(fail(
                                    format!("flush tick {t} below the floor {floor}"),
                                    op,
                                ));
                                break;
                            }
                            if q.len() >= policy.max_batch && t != floor {
                                findings.push(fail(
                                    format!("full batch must flush at {floor}, got {t}"),
                                    op,
                                ));
                                break;
                            }
                            let linger_cap =
                                free_at.max(oldest.queued_at.saturating_add(policy.max_linger));
                            if q.len() < policy.max_batch && t > linger_cap {
                                findings.push(fail(
                                    format!("flush tick {t} past the linger cap {linger_cap}"),
                                    op,
                                ));
                                break;
                            }
                        }
                    }
                }
            }
            // Full-state agreement and structural invariants, every op.
            if q.items() != mirror.as_slice() {
                findings.push(fail("queue state diverged from the reference".into(), op));
                break;
            }
            let queued = q.len() as u64 + selected_total + displaced;
            if queued != admitted {
                findings.push(fail(
                    format!("conservation broke: admitted {admitted}, accounted {queued}"),
                    op,
                ));
                break;
            }
        }
    }
    (sequences, findings)
}

fn verdict_of(rng: &mut DetRng) -> HealthVerdict {
    match rng.next_u64() % 8 {
        0 | 1 => HealthVerdict::Unhealthy,
        2 | 3 => HealthVerdict::Warning,
        _ => HealthVerdict::Clean,
    }
}

fn random_config(rng: &mut DetRng) -> HealthConfig {
    let window = 1 + (rng.next_u64() % 64) as u32;
    let degrade = 1 + (rng.next_u64() % u64::from(window)) as u32;
    let stop = degrade + (rng.next_u64() % u64::from(window - degrade + 1)) as u32;
    HealthConfig {
        window,
        degrade_events: degrade,
        stop_events: stop,
        recover_after: 1 + (rng.next_u64() % 24) as u32,
        resume_after: (rng.next_u64() % 4) as u32,
        warn_budget: (rng.next_u64() % 8) as u32,
    }
}

fn tamper(ladder: &mut LadderState, rng: &mut DetRng) {
    match rng.next_u64() % 6 {
        0 => ladder.history ^= 1 << (rng.next_u64() % 64),
        1 => ladder.warn_history ^= 1 << (rng.next_u64() % 64),
        2 => {
            ladder.clean_streak = ladder
                .clean_streak
                .wrapping_add(1 + (rng.next_u64() % 8) as u32)
        }
        3 => ladder.decisions = ladder.decisions.wrapping_add(rng.next_u64() % 16),
        4 => {
            ladder.state = match rng.next_u64() % 3 {
                0 => HealthState::Nominal,
                1 => HealthState::Degraded,
                _ => HealthState::SafeStop,
            }
        }
        _ => {
            ladder.time_in[(rng.next_u64() % 3) as usize] =
                ladder.time_in[(rng.next_u64() % 3) as usize].wrapping_add(1)
        }
    }
}

/// Runs `sequences` seeded verdict sequences against the health ladder;
/// returns `(cases, findings)`.
pub fn fuzz_ladder(seed: u64, sequences: u64) -> (u64, Vec<StateFinding>) {
    let mut findings = Vec::new();
    'seqs: for s in 0..sequences {
        let seq_seed = seed.wrapping_add(s.wrapping_mul(0xA076_1D64_78BD_642F));
        let mut rng = DetRng::new(seq_seed);
        let config = random_config(&mut rng);
        let mut monitor = HealthMonitor::new(config).expect("random config is valid");
        // A restored twin stepped in lockstep: export/restore must be
        // behaviourally invisible at every point of the walk.
        let mut twin = HealthMonitor::restore(config, monitor.export_state()).expect("restore");
        let mut latched = false;
        let steps = 16 + rng.below_usize(48);
        for op in 0..steps {
            let verdict = verdict_of(&mut rng);
            let t_live = monitor.step_verdict(verdict);
            let t_twin = twin.step_verdict(verdict);
            let fail = |invariant: String| StateFinding {
                invariant,
                seed: seq_seed,
                op,
            };
            if t_live != t_twin || monitor.state() != twin.state() {
                findings.push(fail("restored twin diverged from the live ladder".into()));
                continue 'seqs;
            }
            let time_total = monitor.time_in(HealthState::Nominal)
                + monitor.time_in(HealthState::Degraded)
                + monitor.time_in(HealthState::SafeStop);
            if time_total != monitor.decision_count() {
                findings.push(fail(format!(
                    "time-in-state {time_total} != decisions {}",
                    monitor.decision_count()
                )));
                continue 'seqs;
            }
            let log_state = monitor
                .transitions()
                .last()
                .map_or(HealthState::Nominal, |t| t.to);
            if log_state != monitor.state() {
                findings.push(fail("transition log disagrees with the state".into()));
                continue 'seqs;
            }
            let continuous = monitor
                .transitions()
                .windows(2)
                .all(|w| w[0].to == w[1].from);
            if !continuous {
                findings.push(fail("transition log breaks continuity".into()));
                continue 'seqs;
            }
            if config.resume_after == 0 {
                if monitor.state() == HealthState::SafeStop {
                    latched = true;
                } else if latched {
                    findings.push(fail("SafeStop un-latched with resume_after = 0".into()));
                    continue 'seqs;
                }
            }
            // Periodically re-derive the twin from a fresh export, so
            // restore is exercised mid-walk, not just at the start.
            if op % 13 == 7 {
                match HealthMonitor::restore(config, monitor.export_state()) {
                    Ok(m) => twin = m,
                    Err(e) => {
                        findings.push(fail(format!("live export failed to restore: {e}")));
                        continue 'seqs;
                    }
                }
            }
        }
        // Tampered exports: every mutation must fail closed, or restore
        // to a monitor whose own export is stable and which steps without
        // panicking — never a wedged or impossible ladder.
        let mut forged = monitor.export_state();
        tamper(&mut forged, &mut rng);
        if forged != monitor.export_state() {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                HealthMonitor::restore(config, forged.clone())
            }));
            match outcome {
                Err(_) => findings.push(StateFinding {
                    invariant: "restore panicked on a tampered export".into(),
                    seed: seq_seed,
                    op: steps,
                }),
                Ok(Err(_)) => {}
                Ok(Ok(mut accepted)) => {
                    let replay = HealthMonitor::restore(config, accepted.export_state());
                    if replay.is_err() {
                        findings.push(StateFinding {
                            invariant: "accepted tampered state does not re-restore".into(),
                            seed: seq_seed,
                            op: steps,
                        });
                    }
                    let stepped = catch_unwind(AssertUnwindSafe(|| {
                        for i in 0..32u64 {
                            accepted.step_verdict(if i % 3 == 0 {
                                HealthVerdict::Unhealthy
                            } else {
                                HealthVerdict::Clean
                            });
                        }
                    }));
                    if stepped.is_err() {
                        findings.push(StateFinding {
                            invariant: "accepted tampered state panics when stepped".into(),
                            seed: seq_seed,
                            op: steps,
                        });
                    }
                }
            }
        }
    }
    (sequences, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_driver_finds_nothing_on_the_real_queue() {
        let (cases, findings) = fuzz_queue(0xF00D, 64);
        assert_eq!(cases, 64);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn ladder_driver_finds_nothing_on_the_real_ladder() {
        let (cases, findings) = fuzz_ladder(0xF00D, 64);
        assert_eq!(cases, 64);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn drivers_are_seed_deterministic() {
        let a = fuzz_queue(42, 16);
        let b = fuzz_queue(42, 16);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.len(), b.1.len());
    }
}
