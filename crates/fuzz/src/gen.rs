//! Grammar-aware generators: *valid* instances of every untrusted
//! container, produced through the real encoders.
//!
//! Mutation-based fuzzing is only as good as its seeds. Random bytes die
//! at the magic check; these generators instead build semantically valid
//! snapshots (via a real soak run), model blobs (via the real
//! serializer), and falsifier witnesses, so a mutation lands *inside*
//! the grammar — past the CRC, into the field validators — where the
//! interesting bugs live.

use safex_falsify::{CounterexampleCell, ParamRange, ScenarioPoint, ViolationKind, WitnessFile};
use safex_nn::io::save_model;
use safex_nn::model::ModelBuilder;
use safex_nn::{EccConfig, HardenConfig, HardenedEngine, Model};
use safex_serve::{
    CacheConfig, Fleet, OpsPlan, PoolBackend, Server, ServerConfig, SimClock, TrafficConfig,
    WatchdogConfig,
};
use safex_tensor::{DetRng, Shape};

/// A small dense classifier plus a calibration set, keyed by `seed`.
pub fn small_model(seed: u64) -> (Model, Vec<Vec<f32>>) {
    let mut rng = DetRng::new(seed);
    let model = ModelBuilder::new(Shape::vector(6))
        .dense(10, &mut rng)
        .expect("dense")
        .relu()
        .dense(4, &mut rng)
        .expect("dense")
        .softmax()
        .build()
        .expect("model");
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    (model, inputs)
}

fn hardened(model: &Model, inputs: &[Vec<f32>]) -> HardenedEngine {
    let config = HardenConfig {
        repair: Some(EccConfig::default()),
        ..HardenConfig::default()
    };
    let mut engine = HardenedEngine::new(model.clone(), config).expect("engine");
    engine.calibrate(inputs).expect("calibrate");
    engine
}

/// Encodes a genuine [`safex_serve::ServerSnapshot`] by running a short
/// seeded soak with a mid-traffic capture point — live ladders, queue
/// residue, cache entries, and an evidence chain included, so mutations
/// reach every payload section.
pub fn snapshot_bytes(seed: u64) -> Vec<u8> {
    let (model, inputs) = small_model(seed);
    let engine = hardened(&model, &inputs);
    let fleet = Fleet::builder()
        .register("alpha", PoolBackend::new(&engine, 1).expect("backend"))
        .register("beta", PoolBackend::new(&engine, 1).expect("backend"))
        .build()
        .expect("fleet");
    let trace = TrafficConfig {
        seed,
        requests: 48,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .expect("trace");
    let config = ServerConfig::default()
        .with_cache(CacheConfig::enabled(32))
        .with_watchdog(WatchdogConfig::enabled(2048))
        .with_campaign("fuzz-gen");
    let mut server = Server::new(config, fleet).expect("server");
    let outcome = server
        .run_soak(&trace, OpsPlan::none().with_snapshot_at(24), &mut SimClock)
        .expect("soak");
    outcome.snapshot.expect("snapshot captured")
}

/// Serializes a valid model blob; `seed` also picks the architecture so
/// mutations see every layer tag the format defines.
pub fn model_bytes(seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let model = match seed % 3 {
        0 => small_model(seed).0,
        1 => ModelBuilder::new(Shape::chw(1, 6, 6))
            .conv2d(2, 3, 1, 1, &mut rng)
            .expect("conv")
            .relu()
            .maxpool2d(2, 2)
            .expect("pool")
            .flatten()
            .dense(3, &mut rng)
            .expect("dense")
            .softmax()
            .build()
            .expect("model"),
        _ => ModelBuilder::new(Shape::vector(5))
            .dense(8, &mut rng)
            .expect("dense")
            .leaky_relu(0.1)
            .dense(8, &mut rng)
            .expect("dense")
            .relu()
            .dense(2, &mut rng)
            .expect("dense")
            .softmax()
            .build()
            .expect("model"),
    };
    let mut out = Vec::new();
    save_model(&model, &mut out).expect("serialize");
    out
}

/// Encodes a valid falsifier witness file with seeded-but-consistent
/// fields (regions contain their witness values, the margin is a real
/// violation).
pub fn witness_bytes(seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let kinds = [
        ViolationKind::SupervisorMisGate,
        ViolationKind::PatternDisagreement,
        ViolationKind::ConfidentMisclass,
        ViolationKind::TemporalErrorBound,
    ];
    let dims = 1 + rng.below_usize(4);
    let names = ["noise_std", "shift", "drift", "initial_cte", "severity"];
    let mut region = Vec::with_capacity(dims);
    let mut values = Vec::with_capacity(dims);
    for d in 0..dims {
        let lo = rng.next_f64() * 2.0 - 1.0;
        let hi = lo + rng.next_f64();
        region.push(ParamRange {
            name: names[d % names.len()].to_string(),
            lo,
            hi,
        });
        values.push(lo + (hi - lo) * rng.next_f64());
    }
    let cell = CounterexampleCell {
        spec: format!("spec_{}", seed % 7),
        kind: kinds[rng.below_usize(kinds.len())],
        region,
        witness: ScenarioPoint { values },
        witness_eval: rng.next_u64() % 10_000,
        witness_digest: rng.next_u64(),
        margin: -rng.next_f64(),
        violations: 1 + rng.next_u64() % 100,
    };
    WitnessFile::new(seed, cell).encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_falsify::WitnessFile;
    use safex_nn::io::load_model;
    use safex_serve::ServerSnapshot;

    #[test]
    fn generated_bases_are_valid_and_deterministic() {
        let snap = snapshot_bytes(1);
        assert_eq!(snap, snapshot_bytes(1), "same seed, same bytes");
        let decoded = ServerSnapshot::decode(&snap).expect("valid snapshot");
        assert!(!decoded.monitors.is_empty());
        assert!(!decoded.chain.is_empty());

        for seed in 0..3 {
            let blob = model_bytes(seed);
            assert_eq!(blob, model_bytes(seed));
            load_model(&blob[..]).expect("valid model blob");

            let wit = witness_bytes(seed);
            assert_eq!(wit, witness_bytes(seed));
            WitnessFile::decode(&wit).expect("valid witness");
        }
    }
}
