//! The bounded smoke orchestrator behind `check.sh --fuzz-smoke`.
//!
//! One [`run_smoke`] call drives all five fuzzing surfaces — three byte
//! decoders, two state machines, plus the differential oracles and a
//! full corpus replay — from a single master seed, within fixed
//! per-surface iteration budgets. Everything downstream of the seed is
//! deterministic, so a finding's coordinates (`surface`, seed, case
//! index) are a complete reproduction recipe, and the whole run is
//! byte-reproducible from the one line the smoke tier prints.
//!
//! Budgets and seed can be overridden without recompiling:
//! `SAFEX_FUZZ_SEED` (u64, decimal or 0x-hex) repins the master seed and
//! `SAFEX_FUZZ_ITERS` rescales every per-surface budget proportionally
//! toward the requested total case count.

use std::panic;

use safex_tensor::DetRng;

use crate::corpus::load_corpus;
use crate::diff::fuzz_diff;
use crate::gen;
use crate::mutate::{minimize, mutate, ContainerLayout};
use crate::state::{fuzz_ladder, fuzz_queue};
use crate::surface::{probe_model, probe_snapshot, probe_witness, ProbeOutcome};

const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-surface iteration budgets plus the master seed.
#[derive(Debug, Clone, Copy)]
pub struct SmokeConfig {
    /// Master seed; every surface derives its streams from it.
    pub seed: u64,
    /// Mutated snapshot decodes.
    pub snapshot_cases: u64,
    /// Mutated model-blob loads.
    pub model_cases: u64,
    /// Mutated witness-file decodes.
    pub witness_cases: u64,
    /// Admission-queue command sequences.
    pub queue_sequences: u64,
    /// Health-ladder command sequences.
    pub ladder_sequences: u64,
    /// Differential-oracle rounds (fresh model seed per round).
    pub diff_rounds: u64,
    /// Inputs per oracle per differential round.
    pub diff_cases: usize,
}

impl Default for SmokeConfig {
    fn default() -> Self {
        SmokeConfig {
            seed: 0x5AFE_F022_2026_0808,
            snapshot_cases: 3_000,
            model_cases: 3_200,
            witness_cases: 2_400,
            queue_sequences: 1_600,
            ladder_sequences: 1_600,
            diff_rounds: 3,
            diff_cases: 50,
        }
    }
}

impl SmokeConfig {
    /// Default budgets, with `SAFEX_FUZZ_SEED` / `SAFEX_FUZZ_ITERS`
    /// environment overrides applied.
    pub fn from_env() -> Self {
        let mut config = SmokeConfig::default();
        if let Ok(raw) = std::env::var("SAFEX_FUZZ_SEED") {
            let parsed = raw
                .strip_prefix("0x")
                .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
            if let Ok(seed) = parsed {
                config.seed = seed;
            }
        }
        if let Ok(raw) = std::env::var("SAFEX_FUZZ_ITERS") {
            if let Ok(target) = raw.parse::<u64>() {
                config = config.scaled_to(target);
            }
        }
        config
    }

    /// Rescales every budget proportionally so the nominal total case
    /// count is roughly `target` (each surface keeps at least one case).
    pub fn scaled_to(mut self, target: u64) -> Self {
        let base = SmokeConfig::default().nominal_total();
        let scale = |v: u64| -> u64 {
            ((u128::from(v) * u128::from(target) / u128::from(base)) as u64).max(1)
        };
        self.snapshot_cases = scale(self.snapshot_cases);
        self.model_cases = scale(self.model_cases);
        self.witness_cases = scale(self.witness_cases);
        self.queue_sequences = scale(self.queue_sequences);
        self.ladder_sequences = scale(self.ladder_sequences);
        self.diff_rounds = scale(self.diff_rounds);
        self
    }

    /// The planned case count (diff counted per round × oracle input).
    pub fn nominal_total(&self) -> u64 {
        self.snapshot_cases
            + self.model_cases
            + self.witness_cases
            + self.queue_sequences
            + self.ladder_sequences
            + self.diff_rounds * 4 * self.diff_cases as u64
    }
}

/// One finding, in reproducible coordinates.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Surface that produced it.
    pub surface: String,
    /// Seed coordinate (master seed for byte surfaces, sequence seed
    /// for state surfaces, model seed for differential oracles).
    pub seed: u64,
    /// Case / operation index within that seed's stream.
    pub case: u64,
    /// What went wrong.
    pub detail: String,
    /// Minimised reproducer bytes (byte surfaces only) — the artefact
    /// to check into `crates/fuzz/corpus/` as a named regression test.
    pub reproducer: Option<Vec<u8>>,
}

/// Cases run and findings made, per surface and overall.
#[derive(Debug, Clone, Default)]
pub struct SmokeReport {
    /// `(surface, cases run)` in execution order.
    pub cases: Vec<(String, u64)>,
    /// Every finding, in discovery order.
    pub findings: Vec<Finding>,
}

impl SmokeReport {
    /// Total cases across all surfaces.
    pub fn total_cases(&self) -> u64 {
        self.cases.iter().map(|(_, n)| n).sum()
    }
}

/// The boxed process panic hook, as `std::panic::take_hook` returns it.
type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// Restores the previous panic hook on drop, so a quiet run cannot
/// leak its silence past the smoke call even if the runner unwinds.
struct HookGuard {
    prev: Option<PanicHook>,
}

impl HookGuard {
    fn silence() -> Self {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        HookGuard { prev: Some(prev) }
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            panic::set_hook(prev);
        }
    }
}

/// One byte-decoding attack surface: its base pool, container layout,
/// seed salt, and fail-closed probe.
struct ByteSurface<'a> {
    name: &'static str,
    salt: u64,
    bases: &'a [Vec<u8>],
    layout: ContainerLayout,
    probe: fn(&[u8]) -> ProbeOutcome,
}

fn fuzz_bytes(
    surface: &ByteSurface<'_>,
    seed: u64,
    cases: u64,
    findings: &mut Vec<Finding>,
) -> u64 {
    for case in 0..cases {
        let mut rng = DetRng::new(seed ^ surface.salt.wrapping_add(case.wrapping_mul(PHI)));
        let base = &surface.bases[rng.below_usize(surface.bases.len())];
        let other = &surface.bases[rng.below_usize(surface.bases.len())];
        let (mutated, mutation) = mutate(base, other, surface.layout, &mut rng);
        let outcome = (surface.probe)(&mutated);
        if outcome.is_finding() {
            let probe = surface.probe;
            let reproducer = minimize(&mutated, |bytes| probe(bytes).is_finding());
            findings.push(Finding {
                surface: surface.name.to_string(),
                seed,
                case,
                detail: format!("{outcome:?} via {}", mutation.tag()),
                reproducer: Some(reproducer),
            });
        }
    }
    cases
}

/// Runs the full smoke: byte surfaces, state machines, differential
/// oracles, corpus replay. `quiet` silences the process panic hook for
/// the duration (the probes intentionally trip panics to classify them;
/// their backtraces are noise, and the typed outcome is the record).
pub fn run_smoke(config: &SmokeConfig, quiet: bool) -> SmokeReport {
    let _hook = quiet.then(HookGuard::silence);
    let mut report = SmokeReport::default();

    // Grammar-aware bases, a handful per surface: snapshots come out of
    // real soak runs (expensive, so few), blobs and witnesses are cheap.
    let framed = ContainerLayout {
        payload_start: 16,
        length_field: Some(8),
        crc_trailer: true,
    };
    let snapshot_bases: Vec<Vec<u8>> = (0..3).map(gen::snapshot_bytes).collect();
    let n = fuzz_bytes(
        &ByteSurface {
            name: "snapshot",
            salt: 0x534E_4150,
            bases: &snapshot_bases,
            layout: framed,
            probe: probe_snapshot,
        },
        config.seed,
        config.snapshot_cases,
        &mut report.findings,
    );
    report.cases.push(("snapshot".into(), n));

    let model_bases: Vec<Vec<u8>> = (0..6).map(gen::model_bytes).collect();
    let n = fuzz_bytes(
        &ByteSurface {
            name: "model",
            salt: 0x4D4F_4445,
            bases: &model_bases,
            layout: ContainerLayout::opaque(),
            probe: probe_model,
        },
        config.seed,
        config.model_cases,
        &mut report.findings,
    );
    report.cases.push(("model".into(), n));

    let witness_bases: Vec<Vec<u8>> = (0..8).map(gen::witness_bytes).collect();
    let n = fuzz_bytes(
        &ByteSurface {
            name: "witness",
            salt: 0x5749_544E,
            bases: &witness_bases,
            layout: framed,
            probe: probe_witness,
        },
        config.seed,
        config.witness_cases,
        &mut report.findings,
    );
    report.cases.push(("witness".into(), n));

    let (n, found) = fuzz_queue(config.seed, config.queue_sequences);
    report.findings.extend(found.into_iter().map(|f| Finding {
        surface: "queue".into(),
        seed: f.seed,
        case: f.op as u64,
        detail: f.invariant,
        reproducer: None,
    }));
    report.cases.push(("queue".into(), n));

    let (n, found) = fuzz_ladder(config.seed, config.ladder_sequences);
    report.findings.extend(found.into_iter().map(|f| Finding {
        surface: "ladder".into(),
        seed: f.seed,
        case: f.op as u64,
        detail: f.invariant,
        reproducer: None,
    }));
    report.cases.push(("ladder".into(), n));

    let (n, found) = fuzz_diff(config.seed, config.diff_rounds, config.diff_cases);
    report.findings.extend(found.into_iter().map(|f| Finding {
        surface: format!("diff/{}", f.oracle),
        seed: f.seed,
        case: f.case as u64,
        detail: f.detail,
        reproducer: None,
    }));
    report.cases.push(("diff".into(), n));

    // Corpus replay: every past finding must still be handled cleanly.
    let corpus = load_corpus();
    for entry in &corpus {
        let outcome = match entry.surface.as_str() {
            "snapshot" => probe_snapshot(&entry.bytes),
            "model" => probe_model(&entry.bytes),
            "witness" => probe_witness(&entry.bytes),
            _ => continue,
        };
        if outcome.is_finding() {
            report.findings.push(Finding {
                surface: format!("corpus/{}", entry.name),
                seed: config.seed,
                case: 0,
                detail: format!("{outcome:?}"),
                reproducer: Some(entry.bytes.clone()),
            });
        }
    }
    report.cases.push(("corpus".into(), corpus.len() as u64));

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_smoke_is_clean_and_reproducible() {
        let config = SmokeConfig {
            snapshot_cases: 40,
            model_cases: 40,
            witness_cases: 40,
            queue_sequences: 24,
            ladder_sequences: 24,
            diff_rounds: 1,
            diff_cases: 8,
            ..SmokeConfig::default()
        };
        let a = run_smoke(&config, true);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        let b = run_smoke(&config, true);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.total_cases(), b.total_cases());
    }

    #[test]
    fn budget_scaling_keeps_proportions_and_floors() {
        // The diff surface floors at one full round, so a small target
        // may overshoot by up to one round's worth of oracle cases.
        let scaled = SmokeConfig::default().scaled_to(1_000);
        let ceiling = 1_000 + 4 * scaled.diff_cases as u64;
        assert!(
            scaled.nominal_total() <= ceiling,
            "{}",
            scaled.nominal_total()
        );
        assert!(scaled.snapshot_cases >= 1);
        assert!(scaled.diff_rounds >= 1);
        let default_total = SmokeConfig::default().nominal_total();
        assert!(default_total >= 10_000, "smoke floor: {default_total}");
    }
}
