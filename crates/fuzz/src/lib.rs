#![forbid(unsafe_code)]
//! # safex-fuzz
//!
//! Deterministic, structure-aware fuzzing and differential testing for
//! the workspace's untrusted boundary — no external fuzzer, no network,
//! every case derived from one printed seed.
//!
//! Certification arguments about "fail closed on invalid input" are
//! only as strong as the invalid inputs that were actually tried. This
//! crate makes that set systematic, across five surfaces:
//!
//! * **Byte decoders** ([`surface`]) — [`safex_serve::ServerSnapshot`],
//!   model blobs (`safex_nn::io`), and falsifier witness files
//!   ([`safex_falsify::WitnessFile`]), each probed with typed mutations
//!   ([`mutate`]) over grammar-aware valid bases ([`gen`]): bit flips,
//!   torn writes, truncation, length-field lies, CRC-preserving
//!   corruption, splices of two valid containers. Contract: typed error
//!   or round-trip-stable acceptance — never a panic, never fail-open.
//! * **State machines** ([`state`]) — arbitrary command interleavings
//!   against the admission queue + batcher + fairness stack (checked
//!   against an independent reference model plus conservation and
//!   ordering invariants) and the health ladder (time accounting,
//!   latched SafeStop, export/restore lockstep, tampered restores).
//! * **Differential oracles** ([`diff`]) — pinned implementation pairs
//!   (Full vs Fused CRC, pool worker counts, detect-only vs
//!   ECC-repaired, f32 vs Q16.16) that must agree case by case.
//!
//! Findings are auto-minimised ([`mutate::minimize`]) and land in
//! `crates/fuzz/corpus/` as named regression artefacts ([`corpus`]),
//! replayed by both the smoke tier ([`runner`]) and `cargo test`.

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod mutate;
pub mod runner;
pub mod state;
pub mod surface;

pub use corpus::{load_corpus, CorpusEntry};
pub use diff::{fuzz_diff, DiffFinding};
pub use mutate::{minimize, mutate, ContainerLayout, Mutation};
pub use runner::{run_smoke, Finding, SmokeConfig, SmokeReport};
pub use state::{fuzz_ladder, fuzz_queue, StateFinding};
pub use surface::{probe_model, probe_snapshot, probe_witness, ProbeOutcome};
