//! The crash/divergence corpus: every finding the harness ever made,
//! minimised and checked in as a named byte file.
//!
//! Files live in `crates/fuzz/corpus/` and are named
//! `<surface>__<slug>.bin`, where `<surface>` is one of `snapshot`,
//! `model`, or `witness`. The corpus is replayed twice:
//!
//! * inside every smoke run ([`crate::runner::run_smoke`]), so a fixed
//!   bug cannot quietly regress between fuzzing sessions, and
//! * by `tests/corpus.rs`, so plain `cargo test` pins each finding as a
//!   permanent named regression test.

use std::fs;
use std::path::PathBuf;

/// One minimised corpus artefact.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File stem, e.g. `snapshot__length_overflow`.
    pub name: String,
    /// Surface prefix parsed from the name.
    pub surface: String,
    /// The minimised reproducer bytes.
    pub bytes: Vec<u8>,
}

/// The on-disk corpus directory (rooted at this crate's manifest, so it
/// resolves identically under `cargo test` and `cargo run`).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Loads every `*.bin` corpus entry, sorted by name so replay order is
/// deterministic. A missing directory is an empty corpus, not an error.
pub fn load_corpus() -> Vec<CorpusEntry> {
    let mut entries = Vec::new();
    let Ok(dir) = fs::read_dir(corpus_dir()) else {
        return entries;
    };
    for entry in dir.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("bin") {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Some((surface, _)) = name.split_once("__") else {
            continue;
        };
        let Ok(bytes) = fs::read(&path) else {
            continue;
        };
        entries.push(CorpusEntry {
            name: name.to_string(),
            surface: surface.to_string(),
            bytes,
        });
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_entries_parse_and_are_nonempty() {
        for entry in load_corpus() {
            assert!(
                ["snapshot", "model", "witness"].contains(&entry.surface.as_str()),
                "unknown corpus surface in {}",
                entry.name
            );
            assert!(!entry.bytes.is_empty(), "{} is empty", entry.name);
        }
    }
}
