//! Differential oracles: the same input replayed through pinned pairs
//! of implementations that *promise* identical answers.
//!
//! Fuzzing a single implementation needs an explicit invariant; two
//! implementations of the same contract come with a free one —
//! agreement. Four pairs are pinned here, each an equivalence the
//! workspace already claims elsewhere (golden digests, bench sweeps):
//!
//! 1. [`CrcStrategy::Full`] vs [`CrcStrategy::Fused`] — fused in-loop
//!    verification must be bit-identical to the two-pass original.
//! 2. A [`CrcStrategy::Rotating`] [`HardenedPool`] at worker counts
//!    {1, 2, 4, 8} — results (outputs *and* health events) must not
//!    depend on scheduling.
//! 3. Detect-only vs ECC-repaired engines on clean weights — the repair
//!    sidecar must be output-invisible until a fault actually fires.
//! 4. f32 vs Q16.16 engines — the class decision must agree wherever
//!    the f32 top-1/top-2 margin clears a quantization guard band.

use safex_nn::{
    CrcStrategy, EccConfig, Engine, HardenConfig, HardenedEngine, HardenedPool, QEngine, QModel,
};
use safex_tensor::{DetRng, Q16_16};

use crate::gen;

/// One divergence between a pinned pair.
#[derive(Debug, Clone)]
pub struct DiffFinding {
    /// Which oracle pair diverged.
    pub oracle: String,
    /// Model/input seed that reproduces it.
    pub seed: u64,
    /// Input index within the batch.
    pub case: usize,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

fn engine_with(
    strategy: CrcStrategy,
    cadence: u64,
    repair: bool,
    seed: u64,
) -> (HardenedEngine, Vec<Vec<f32>>) {
    let (model, inputs) = gen::small_model(seed);
    let config = HardenConfig {
        crc_cadence: cadence,
        crc_strategy: strategy,
        repair: repair.then(EccConfig::default),
        ..HardenConfig::default()
    };
    let mut engine = HardenedEngine::new(model, config).expect("engine");
    engine.calibrate(&inputs).expect("calibrate");
    (engine, inputs)
}

fn fuzz_inputs(seed: u64, n: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut rng = DetRng::new(seed ^ 0x5EED_1E55);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.next_f32() * 4.0 - 2.0).collect())
        .collect()
}

/// Full vs Fused CRC strategies, bit-identical outputs.
pub fn diff_full_vs_fused(seed: u64, cases: usize) -> (u64, Vec<DiffFinding>) {
    let mut findings = Vec::new();
    let (mut full, _) = engine_with(CrcStrategy::Full, 1, false, seed);
    let (mut fused, _) = engine_with(CrcStrategy::Fused, 1, false, seed);
    for (i, input) in fuzz_inputs(seed, cases, 6).iter().enumerate() {
        let a = full.classify_indexed(i as u64, input).expect("full");
        let b = fused.classify_indexed(i as u64, input).expect("fused");
        if a != b {
            findings.push(DiffFinding {
                oracle: "full-vs-fused".into(),
                seed,
                case: i,
                detail: format!("Full {a:?} != Fused {b:?}"),
            });
        }
    }
    (cases as u64, findings)
}

/// Rotating-CRC pool at worker counts {1, 2, 4, 8}: the batch report
/// must be independent of the worker count.
pub fn diff_pool_workers(seed: u64, cases: usize) -> (u64, Vec<DiffFinding>) {
    let mut findings = Vec::new();
    let (engine, _) = engine_with(CrcStrategy::Rotating, 2, false, seed);
    let inputs = fuzz_inputs(seed, cases, 6);
    let reference = HardenedPool::new(&engine, 1)
        .expect("pool")
        .classify_batch(&inputs)
        .expect("batch");
    for workers in [2usize, 4, 8] {
        let got = HardenedPool::new(&engine, workers)
            .expect("pool")
            .classify_batch(&inputs)
            .expect("batch");
        for (i, (a, b)) in reference.iter().zip(got.iter()).enumerate() {
            if a.classification != b.classification || a.events != b.events {
                findings.push(DiffFinding {
                    oracle: "pool-workers".into(),
                    seed,
                    case: i,
                    detail: format!(
                        "1 worker {:?} != {workers} workers {:?}",
                        a.classification, b.classification
                    ),
                });
            }
        }
    }
    (cases as u64 * 3, findings)
}

/// Detect-only vs ECC-repaired engines on clean weights.
pub fn diff_plain_vs_repaired(seed: u64, cases: usize) -> (u64, Vec<DiffFinding>) {
    let mut findings = Vec::new();
    let (mut plain, _) = engine_with(CrcStrategy::Full, 1, false, seed);
    let (mut repaired, _) = engine_with(CrcStrategy::Full, 1, true, seed);
    for (i, input) in fuzz_inputs(seed, cases, 6).iter().enumerate() {
        let a = plain.classify_indexed(i as u64, input).expect("plain");
        let b = repaired
            .classify_indexed(i as u64, input)
            .expect("repaired");
        if a != b {
            findings.push(DiffFinding {
                oracle: "plain-vs-ecc".into(),
                seed,
                case: i,
                detail: format!("plain {a:?} != ECC-repaired {b:?}"),
            });
        }
    }
    (cases as u64, findings)
}

/// f32 vs Q16.16 engines: agreement on the class whenever the f32
/// top-1/top-2 margin exceeds `guard` (softmax units).
pub fn diff_f32_vs_q16(seed: u64, cases: usize, guard: f32) -> (u64, Vec<DiffFinding>) {
    let mut findings = Vec::new();
    let (model, _) = gen::small_model(seed);
    let qmodel = QModel::quantize(&model).expect("quantize");
    let mut f32_engine = Engine::new(model);
    let mut q_engine = QEngine::new(qmodel);
    let mut counted = 0u64;
    for (i, input) in fuzz_inputs(seed, cases, 6).iter().enumerate() {
        let out = f32_engine.infer(input).expect("f32 infer").to_vec();
        let mut idx: Vec<usize> = (0..out.len()).collect();
        idx.sort_by(|&a, &b| out[b].partial_cmp(&out[a]).expect("finite softmax"));
        let margin = out[idx[0]] - out[idx[1]];
        if margin <= guard {
            continue; // genuinely ambiguous; quantization may flip it
        }
        counted += 1;
        let q_input: Vec<Q16_16> = input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let q = q_engine.classify(&q_input).expect("q16 classify");
        if q.class != idx[0] {
            findings.push(DiffFinding {
                oracle: "f32-vs-q16".into(),
                seed,
                case: i,
                detail: format!(
                    "f32 class {} (margin {margin:.3}) != Q16.16 class {}",
                    idx[0], q.class
                ),
            });
        }
    }
    (counted, findings)
}

/// Runs all four oracles across `rounds` model seeds; returns
/// `(cases, findings)`.
pub fn fuzz_diff(seed: u64, rounds: u64, cases_per_round: usize) -> (u64, Vec<DiffFinding>) {
    let mut total = 0u64;
    let mut findings = Vec::new();
    for r in 0..rounds {
        let s = seed.wrapping_add(r.wrapping_mul(0x2545_F491_4F6C_DD1D));
        for (cases, found) in [
            diff_full_vs_fused(s, cases_per_round),
            diff_pool_workers(s, cases_per_round),
            diff_plain_vs_repaired(s, cases_per_round),
            diff_f32_vs_q16(s, cases_per_round, 0.05),
        ] {
            total += cases;
            findings.extend(found);
        }
    }
    (total, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_pairs_agree() {
        let (cases, findings) = fuzz_diff(7, 2, 12);
        assert!(cases >= 2 * 3 * 12, "cases: {cases}");
        assert!(findings.is_empty(), "{findings:?}");
    }
}
