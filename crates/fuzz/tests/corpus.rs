//! Named regression tests over the checked-in crash corpus.
//!
//! Every file in `crates/fuzz/corpus/` is a minimised reproducer for a
//! finding the harness once made. Each named test below pins the exact
//! bug; the catch-all sweep guarantees no corpus entry — present or
//! future — can decode into a panic or a fail-open acceptance again.

use safex_fuzz::{load_corpus, probe_model, probe_snapshot, probe_witness, ProbeOutcome};
use safex_nn::io::load_model;
use safex_nn::NnError;
use safex_serve::{ServeError, ServerSnapshot};

fn entry(name: &str) -> Vec<u8> {
    load_corpus()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("corpus entry {name} missing"))
        .bytes
}

/// Finding #1 (fuzz-smoke, length_lie operator): a declared payload
/// length of `u64::MAX` overflowed `16 + len + 4` in the snapshot frame
/// check and panicked under debug assertions instead of returning the
/// typed `BadSnapshot` error. Fixed by validating the declared length
/// against the actual remainder.
#[test]
fn snapshot_length_overflow_is_a_typed_error() {
    let bytes = entry("snapshot__length_overflow");
    match ServerSnapshot::decode(&bytes) {
        Err(ServeError::BadSnapshot(_)) => {}
        other => panic!("want BadSnapshot, got {other:?}"),
    }
}

/// Finding #2 (fuzz-smoke, full-budget run): a conv layer whose padding
/// field claims 1e8 inflates the reconstructed activation shape to
/// ~4e16 elements; the *next* dense layer then sized its weight buffer
/// from that shape and aborted the process on a ~27 PB allocation —
/// an uncatchable OOM, not an unwind. Fixed by bounding spatial extents
/// and binding each layer's declared fan-in to the reconstructed shape
/// before anything is allocated.
#[test]
fn model_conv_padding_alloc_bomb_is_a_typed_error() {
    let bytes = entry("model__conv_padding_alloc_bomb");
    match load_model(&bytes[..]) {
        Err(NnError::Serialization(msg)) => {
            assert!(msg.contains("padding"), "should name the field: {msg}")
        }
        other => panic!("want Serialization error, got {other:?}"),
    }
}

/// Finding #3 (same class): three 1e8 input dims individually pass the
/// per-field plausibility cap, but their product overflows `Shape::len`
/// — a panic under debug assertions, a silently wrapped size in
/// release. Fixed by bounding the input element count with checked
/// arithmetic right after the shape is read.
#[test]
fn model_shape_product_overflow_is_a_typed_error() {
    let bytes = entry("model__shape_overflow");
    match load_model(&bytes[..]) {
        Err(NnError::Serialization(msg)) => {
            assert!(msg.contains("implausible"), "should flag the shape: {msg}")
        }
        other => panic!("want Serialization error, got {other:?}"),
    }
}

/// Every corpus entry, replayed through its surface's probe: the typed
/// outcome must never be a finding (panic or fail-open decode).
#[test]
fn full_corpus_replays_clean() {
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "corpus directory should not be empty");
    for e in corpus {
        let outcome = match e.surface.as_str() {
            "snapshot" => probe_snapshot(&e.bytes),
            "model" => probe_model(&e.bytes),
            "witness" => probe_witness(&e.bytes),
            other => panic!("unknown surface {other} in {}", e.name),
        };
        assert!(!outcome.is_finding(), "{} regressed: {outcome:?}", e.name);
        assert_ne!(
            outcome,
            ProbeOutcome::Accepted,
            "{} should not decode",
            e.name
        );
    }
}
