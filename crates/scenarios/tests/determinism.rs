//! Determinism contract for the scenario generators.
//!
//! The falsification engine (`safex-falsify`) and the campaign sweeps
//! replay scenario evaluations from nothing but a seed, so every
//! generator path — `generate`, `Shift::apply`, `Dataset::shuffle`, and
//! the trajectory episode dynamics — must be a pure function of
//! `(config, seed)`. The properties here pin that by digest for
//! arbitrary seeds, and the golden test pins exact digests at a fixed
//! seed so generator drift is caught even when it stays self-consistent.

use proptest::prelude::*;
use safex_scenarios::automotive::{self, AutomotiveConfig};
use safex_scenarios::railway::{self, RailwayConfig};
use safex_scenarios::shift::{apply_all, Shift};
use safex_scenarios::space::{self, SpaceConfig};
use safex_scenarios::trajectory::{self, TaxiConfig};
use safex_scenarios::Dataset;
use safex_tensor::DetRng;
use safex_trace::{input_digest, Fnv64};

/// Canonical digest of a dataset: shape, class inventory, and every
/// sample's exact pixel bits, label, and salient region.
fn dataset_digest(data: &Dataset) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(data.shape().len() as u64);
    h.write_u64(data.classes() as u64);
    for name in data.class_names() {
        h.write_bytes(name.as_bytes());
    }
    for sample in data.samples() {
        h.write_u64(input_digest(&sample.input));
        h.write_u64(sample.label as u64);
        match sample.salient {
            Some(r) => {
                h.write_u64(r.y as u64);
                h.write_u64(r.x as u64);
                h.write_u64(r.h as u64);
                h.write_u64(r.w as u64);
            }
            None => h.write_u64(u64::MAX),
        }
    }
    h.finish()
}

fn small_automotive() -> AutomotiveConfig {
    AutomotiveConfig {
        samples_per_class: 3,
        ..Default::default()
    }
}

fn small_railway() -> RailwayConfig {
    RailwayConfig {
        samples_per_class: 3,
        ..Default::default()
    }
}

fn small_space() -> SpaceConfig {
    SpaceConfig {
        samples_per_class: 3,
        ..Default::default()
    }
}

fn small_taxi() -> TaxiConfig {
    TaxiConfig {
        samples_per_class: 3,
        ..Default::default()
    }
}

/// The shift chain the golden digest pins: one of every variant.
fn shift_chain() -> Vec<Shift> {
    vec![
        Shift::GaussianNoise(0.1),
        Shift::Brightness(-0.2),
        Shift::Contrast(1.3),
        Shift::Occlusion { size: 3 },
        Shift::DeadPixels(0.05),
    ]
}

proptest! {
    #[test]
    fn generation_is_a_pure_function_of_seed(seed in any::<u64>()) {
        let a = automotive::generate(&small_automotive(), &mut DetRng::new(seed)).unwrap();
        let b = automotive::generate(&small_automotive(), &mut DetRng::new(seed)).unwrap();
        prop_assert_eq!(dataset_digest(&a), dataset_digest(&b), "automotive");

        let a = railway::generate(&small_railway(), &mut DetRng::new(seed)).unwrap();
        let b = railway::generate(&small_railway(), &mut DetRng::new(seed)).unwrap();
        prop_assert_eq!(dataset_digest(&a), dataset_digest(&b), "railway");

        let a = space::generate(&small_space(), &mut DetRng::new(seed)).unwrap();
        let b = space::generate(&small_space(), &mut DetRng::new(seed)).unwrap();
        prop_assert_eq!(dataset_digest(&a), dataset_digest(&b), "space");

        let a = trajectory::generate(&small_taxi(), &mut DetRng::new(seed)).unwrap();
        let b = trajectory::generate(&small_taxi(), &mut DetRng::new(seed)).unwrap();
        prop_assert_eq!(dataset_digest(&a), dataset_digest(&b), "trajectory");
    }

    #[test]
    fn shift_application_is_a_pure_function_of_seed(
        gen_seed in any::<u64>(),
        shift_seed in any::<u64>(),
        noise in 0.0f64..0.5,
        dead in 0.0f64..0.5,
        occlusion in 1usize..5,
    ) {
        let base = automotive::generate(&small_automotive(), &mut DetRng::new(gen_seed)).unwrap();
        let shifts = [
            Shift::GaussianNoise(noise),
            Shift::Occlusion { size: occlusion },
            Shift::DeadPixels(dead),
        ];
        for shift in shifts {
            let a = shift.apply(&base, &mut DetRng::new(shift_seed)).unwrap();
            let b = shift.apply(&base, &mut DetRng::new(shift_seed)).unwrap();
            prop_assert_eq!(
                dataset_digest(&a),
                dataset_digest(&b),
                "shift {} must be seed-deterministic",
                shift.name()
            );
        }
        let a = apply_all(&shifts, &base, &mut DetRng::new(shift_seed)).unwrap();
        let b = apply_all(&shifts, &base, &mut DetRng::new(shift_seed)).unwrap();
        prop_assert_eq!(dataset_digest(&a), dataset_digest(&b), "apply_all");
    }

    #[test]
    fn shuffle_is_a_seed_deterministic_permutation(
        gen_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let base = railway::generate(&small_railway(), &mut DetRng::new(gen_seed)).unwrap();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut DetRng::new(shuffle_seed));
        b.shuffle(&mut DetRng::new(shuffle_seed));
        prop_assert_eq!(dataset_digest(&a), dataset_digest(&b));
        // A permutation: the sample multiset is untouched.
        let multiset = |d: &Dataset| {
            let mut keys: Vec<(usize, u64)> = d
                .samples()
                .iter()
                .map(|s| (s.label, input_digest(&s.input)))
                .collect();
            keys.sort_unstable();
            keys
        };
        prop_assert_eq!(multiset(&a), multiset(&base));
    }

    #[test]
    fn trajectory_episodes_are_a_pure_function_of_seed(
        seed in any::<u64>(),
        initial_cte in -2.0f64..2.0,
    ) {
        let config = small_taxi();
        // A fixed policy keyed only on observations, so any divergence
        // comes from the dynamics/rendering RNG, not the controller.
        let policy = |obs: &[f32], _step: usize| {
            let sum: f32 = obs.iter().sum();
            Some(if sum > 0.0 { 1 } else { 0 })
        };
        let a = trajectory::run_episode(&config, initial_cte, policy, &mut DetRng::new(seed)).unwrap();
        let b = trajectory::run_episode(&config, initial_cte, policy, &mut DetRng::new(seed)).unwrap();
        prop_assert_eq!(&a.ctes, &b.ctes);
        prop_assert_eq!(&a.actions, &b.actions);
        let obs_digest = |t: &trajectory::EpisodeTrace| {
            let mut h = Fnv64::new();
            for o in &t.observations {
                h.write_u64(input_digest(o));
            }
            h.finish()
        };
        prop_assert_eq!(obs_digest(&a), obs_digest(&b));
    }
}

#[test]
fn generator_digests_match_the_golden() {
    let seed = 42;
    let auto = automotive::generate(&small_automotive(), &mut DetRng::new(seed)).unwrap();
    let rail = railway::generate(&small_railway(), &mut DetRng::new(seed)).unwrap();
    let moon = space::generate(&small_space(), &mut DetRng::new(seed)).unwrap();
    let taxi = trajectory::generate(&small_taxi(), &mut DetRng::new(seed)).unwrap();
    let shifted = apply_all(&shift_chain(), &auto, &mut DetRng::new(seed + 1)).unwrap();
    let mut shuffled = rail.clone();
    shuffled.shuffle(&mut DetRng::new(seed + 2));

    let got: [(&str, u64, u64); 6] = [
        ("automotive", dataset_digest(&auto), 0x975d_56dc_962b_70d6),
        ("railway", dataset_digest(&rail), 0xa533_9285_32d1_723a),
        ("space", dataset_digest(&moon), 0x5ae3_db72_014e_a4d1),
        ("trajectory", dataset_digest(&taxi), 0xfda9_23eb_54f4_3528),
        (
            "shift_chain",
            dataset_digest(&shifted),
            0x4eb1_30b7_0649_0b63,
        ),
        ("shuffle", dataset_digest(&shuffled), 0x0ec7_01da_6428_2232),
    ];
    let drifted: Vec<String> = got
        .iter()
        .filter(|(_, digest, pinned)| digest != pinned)
        .map(|(name, digest, pinned)| format!("{name}: got {digest:#018x}, pinned {pinned:#018x}"))
        .collect();
    assert!(
        drifted.is_empty(),
        "generator output drifted from the golden:\n{}",
        drifted.join("\n")
    );
}
