//! Temporal trajectory scenario: aircraft-taxiing-style centerline
//! tracking where per-step error compounds.
//!
//! Unlike the single-shot domains, this workload has *state*: a
//! cross-track error (cte) evolves over an episode under the model's
//! steering decisions. The camera frame (`1 x size x size` CHW) shows a
//! centerline whose horizontal offset encodes the current cte, and the
//! model classifies the correct steering response:
//!
//! | label | class        | ideal when                       |
//! |-------|--------------|----------------------------------|
//! | 0     | `steer_left` | cte > deadband (drifted right)   |
//! | 1     | `straight`   | abs(cte) <= deadband             |
//! | 2     | `steer_right`| cte < -deadband (drifted left)   |
//!
//! Each step the chosen action's correction, a constant drift, and a
//! Gaussian disturbance are added to the cte, so a wrong (or withheld)
//! steering decision does not merely cost one frame of accuracy — it
//! moves the *next* frame further off-distribution, and errors compound
//! exactly the way Fremont et al.'s TaxiNet falsification study
//! exercises. The end-to-end safety specification is a bound on
//! `max |cte|` over the whole episode, which `safex-falsify` searches
//! against.

use safex_tensor::{DetRng, Shape};

use crate::dataset::{Dataset, Region, Sample};
use crate::error::ScenarioError;

/// Configuration for the taxiing trajectory task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiConfig {
    /// Square image side in pixels (minimum 12).
    pub image_size: usize,
    /// Samples generated per class by [`generate`].
    pub samples_per_class: usize,
    /// Episode length in steps for [`run_episode`].
    pub steps: usize,
    /// Half-width of the "straight is correct" band in cte units.
    pub deadband: f64,
    /// Correction applied by one steer step, in cte units.
    pub steer_effect: f64,
    /// Constant per-step drift added to the cte (crosswind / camber).
    pub drift: f64,
    /// Standard deviation of the per-step Gaussian disturbance.
    pub disturbance_std: f64,
    /// The cte magnitude mapped to the image edge; also the episode
    /// safety bound falsification specs judge against.
    pub max_cte: f64,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f64,
    /// Background tarmac intensity.
    pub tarmac_level: f32,
    /// Centerline intensity.
    pub line_level: f32,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig {
            image_size: 16,
            samples_per_class: 50,
            steps: 40,
            deadband: 0.3,
            steer_effect: 0.35,
            drift: 0.05,
            disturbance_std: 0.05,
            max_cte: 3.0,
            noise_std: 0.05,
            tarmac_level: 0.15,
            line_level: 0.9,
        }
    }
}

impl TaxiConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidConfig`] for an image smaller than
    /// 12 px, zero samples or steps, non-finite dynamics parameters, a
    /// non-positive steer effect, a negative deadband or noise level, or
    /// a `max_cte` that does not exceed the deadband.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.image_size < 12 {
            return Err(ScenarioError::InvalidConfig(
                "image_size must be at least 12".into(),
            ));
        }
        if self.samples_per_class == 0 {
            return Err(ScenarioError::InvalidConfig(
                "samples_per_class must be non-zero".into(),
            ));
        }
        if self.steps == 0 {
            return Err(ScenarioError::InvalidConfig(
                "steps must be non-zero".into(),
            ));
        }
        if !self.deadband.is_finite() || self.deadband < 0.0 {
            return Err(ScenarioError::InvalidConfig(
                "deadband must be finite and non-negative".into(),
            ));
        }
        if !self.steer_effect.is_finite() || self.steer_effect <= 0.0 {
            return Err(ScenarioError::InvalidConfig(
                "steer_effect must be finite and positive".into(),
            ));
        }
        if !self.drift.is_finite() {
            return Err(ScenarioError::InvalidConfig("drift must be finite".into()));
        }
        if !self.disturbance_std.is_finite() || self.disturbance_std < 0.0 {
            return Err(ScenarioError::InvalidConfig(
                "disturbance_std must be finite and non-negative".into(),
            ));
        }
        if !self.max_cte.is_finite() || self.max_cte <= self.deadband {
            return Err(ScenarioError::InvalidConfig(
                "max_cte must be finite and exceed the deadband".into(),
            ));
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err(ScenarioError::InvalidConfig(
                "noise_std must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Class names in label order.
pub const CLASS_NAMES: [&str; 3] = ["steer_left", "straight", "steer_right"];

/// The steering class a perfect controller picks at this cte.
pub fn ideal_action(config: &TaxiConfig, cte: f64) -> usize {
    if cte > config.deadband {
        0
    } else if cte < -config.deadband {
        2
    } else {
        1
    }
}

/// The cte correction an action applies (left steers negative).
pub fn steer_correction(config: &TaxiConfig, action: usize) -> f64 {
    match action {
        0 => -config.steer_effect,
        2 => config.steer_effect,
        _ => 0.0,
    }
}

/// Renders the camera frame for a cte: a 2-wide bright centerline whose
/// column offset encodes the error, over dim edge stripes marking the
/// taxiway borders. Pixel noise is drawn from `rng` when configured.
pub fn render(config: &TaxiConfig, cte: f64, rng: &mut DetRng) -> Vec<f32> {
    let n = config.image_size;
    let mut img = vec![config.tarmac_level; n * n];

    // Taxiway edge stripes: dim verticals one pixel in from each border.
    for y in 0..n {
        img[y * n + 1] = config.tarmac_level + 0.1;
        img[y * n + (n - 2)] = config.tarmac_level + 0.1;
    }

    let x0 = line_column(config, cte);
    for y in 0..n {
        // Dashed centerline, matching the automotive lane idiom.
        if y % 4 != 3 {
            img[y * n + x0] = config.line_level;
            img[y * n + x0 + 1] = config.line_level;
        }
    }

    if config.noise_std > 0.0 {
        for p in &mut img {
            *p = (*p as f64 + rng.gaussian(0.0, config.noise_std)) as f32;
        }
    }
    img
}

/// Leftmost column of the 2-wide centerline for a cte. A *positive* cte
/// (vehicle right of the line) shows the line *left* of centre; the
/// mapping saturates at the image border, modelling a camera that loses
/// the line past `max_cte`.
fn line_column(config: &TaxiConfig, cte: f64) -> usize {
    let n = config.image_size;
    let half = (n / 2 - 1) as f64;
    let offset = (-cte / config.max_cte * half).clamp(-half, half);
    let x = (n as f64 / 2.0 + offset).floor();
    (x.max(0.0) as usize).min(n - 2)
}

/// Generates a balanced steering-frame dataset: per class, ctes are drawn
/// uniformly from that class's ideal region and rendered. The salient
/// region is the centerline band the decision must attend to.
///
/// # Errors
///
/// Returns [`ScenarioError::InvalidConfig`] if the configuration fails
/// [`TaxiConfig::validate`].
pub fn generate(config: &TaxiConfig, rng: &mut DetRng) -> Result<Dataset, ScenarioError> {
    config.validate()?;
    let n = config.image_size;
    let mut samples = Vec::with_capacity(3 * config.samples_per_class);
    for label in 0..3 {
        for _ in 0..config.samples_per_class {
            samples.push(generate_sample(config, label, rng));
        }
    }
    Dataset::new(
        Shape::chw(1, n, n),
        3,
        CLASS_NAMES.iter().map(|s| s.to_string()).collect(),
        samples,
    )
}

/// Generates a single frame whose cte lies in the given class's ideal
/// region.
///
/// # Panics
///
/// Panics if `label >= 3` (internal helper contract; [`generate`] only
/// passes valid labels). Public so downstream crates can synthesise
/// streams of single frames.
pub fn generate_sample(config: &TaxiConfig, label: usize, rng: &mut DetRng) -> Sample {
    assert!(label < 3, "trajectory label out of range");
    let cte = match label {
        0 => rng.range_f64(config.deadband, config.max_cte),
        2 => rng.range_f64(-config.max_cte, -config.deadband),
        _ => rng.range_f64(-config.deadband, config.deadband),
    };
    let input = render(config, cte, rng);
    let n = config.image_size;
    let x0 = line_column(config, cte);
    Sample {
        input,
        label,
        salient: Some(Region::new(0, x0, n, 2).expect("line band is non-empty")),
    }
}

/// One completed episode: the cte trace, every rendered observation, and
/// the action taken at each step (`None` when the controller withheld a
/// command — a fallback or safe-stop leaves the vehicle uncorrected).
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeTrace {
    /// Cross-track error before each step plus the final value
    /// (`steps + 1` entries).
    pub ctes: Vec<f64>,
    /// The frame observed at each step (`steps` entries).
    pub observations: Vec<Vec<f32>>,
    /// The action applied at each step (`steps` entries).
    pub actions: Vec<Option<usize>>,
}

impl EpisodeTrace {
    /// The worst excursion over the episode — what the temporal safety
    /// specification bounds.
    pub fn max_abs_cte(&self) -> f64 {
        self.ctes.iter().fold(0.0, |m, c| m.max(c.abs()))
    }

    /// Number of steps taken.
    pub fn steps(&self) -> usize {
        self.actions.len()
    }
}

/// Runs one closed-loop episode from `initial_cte`: render a frame, ask
/// the policy for a steering class, apply its correction plus drift and
/// disturbance, repeat for [`TaxiConfig::steps`].
///
/// The policy sees the observation and the step index and returns
/// `Some(class)` to steer or `None` to withhold actuation (how a
/// conservative pipeline outcome maps into the loop). All randomness —
/// disturbances and pixel noise — comes from `rng`, so the episode is a
/// pure function of `(config, initial_cte, policy, rng)`.
///
/// # Errors
///
/// Returns [`ScenarioError::InvalidConfig`] if the configuration fails
/// [`TaxiConfig::validate`] or `initial_cte` is not finite.
pub fn run_episode(
    config: &TaxiConfig,
    initial_cte: f64,
    mut policy: impl FnMut(&[f32], usize) -> Option<usize>,
    rng: &mut DetRng,
) -> Result<EpisodeTrace, ScenarioError> {
    config.validate()?;
    if !initial_cte.is_finite() {
        return Err(ScenarioError::InvalidConfig(
            "initial_cte must be finite".into(),
        ));
    }
    let mut cte = initial_cte;
    let mut ctes = Vec::with_capacity(config.steps + 1);
    let mut observations = Vec::with_capacity(config.steps);
    let mut actions = Vec::with_capacity(config.steps);
    ctes.push(cte);
    for step in 0..config.steps {
        let obs = render(config, cte, rng);
        let action = policy(&obs, step);
        let correction = action.map_or(0.0, |a| steer_correction(config, a));
        let disturbance = if config.disturbance_std > 0.0 {
            rng.gaussian(0.0, config.disturbance_std)
        } else {
            0.0
        };
        cte += config.drift + correction + disturbance;
        observations.push(obs);
        actions.push(action);
        ctes.push(cte);
    }
    Ok(EpisodeTrace {
        ctes,
        observations,
        actions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_dataset() {
        let mut rng = DetRng::new(1);
        let cfg = TaxiConfig {
            samples_per_class: 10,
            ..Default::default()
        };
        let d = generate(&cfg, &mut rng).unwrap();
        assert_eq!(d.len(), 30);
        assert_eq!(d.classes(), 3);
        assert_eq!(d.class_counts(), vec![10, 10, 10]);
        assert_eq!(d.shape().dims(), &[1, 16, 16]);
    }

    #[test]
    fn config_validation() {
        let ok = TaxiConfig::default();
        assert!(ok.validate().is_ok());
        for bad in [
            TaxiConfig {
                image_size: 8,
                ..ok
            },
            TaxiConfig {
                samples_per_class: 0,
                ..ok
            },
            TaxiConfig { steps: 0, ..ok },
            TaxiConfig {
                deadband: -0.1,
                ..ok
            },
            TaxiConfig {
                steer_effect: 0.0,
                ..ok
            },
            TaxiConfig {
                drift: f64::NAN,
                ..ok
            },
            TaxiConfig {
                disturbance_std: -1.0,
                ..ok
            },
            TaxiConfig { max_cte: 0.2, ..ok },
            TaxiConfig {
                noise_std: f64::INFINITY,
                ..ok
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn ideal_action_partitions_the_cte_axis() {
        let cfg = TaxiConfig::default();
        assert_eq!(ideal_action(&cfg, 1.0), 0);
        assert_eq!(ideal_action(&cfg, 0.0), 1);
        assert_eq!(ideal_action(&cfg, -1.0), 2);
        // Corrections oppose the error.
        assert!(steer_correction(&cfg, 0) < 0.0);
        assert_eq!(steer_correction(&cfg, 1), 0.0);
        assert!(steer_correction(&cfg, 2) > 0.0);
    }

    #[test]
    fn line_position_encodes_cte() {
        let cfg = TaxiConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let mut rng = DetRng::new(0);
        let centered = render(&cfg, 0.0, &mut rng);
        let right_of_line = render(&cfg, 2.0, &mut rng);
        let left_of_line = render(&cfg, -2.0, &mut rng);
        let col = |img: &[f32]| {
            let n = cfg.image_size;
            (0..n)
                .max_by(|&a, &b| {
                    let sum = |x: usize| (0..n).map(|y| img[y * n + x]).sum::<f32>();
                    sum(a).total_cmp(&sum(b))
                })
                .unwrap()
        };
        // Positive cte (vehicle right of line) puts the line left of centre.
        assert!(col(&right_of_line) < col(&centered));
        assert!(col(&left_of_line) > col(&centered));
    }

    #[test]
    fn rendering_saturates_past_max_cte() {
        let cfg = TaxiConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let mut rng = DetRng::new(0);
        let at_edge = render(&cfg, cfg.max_cte, &mut rng);
        let beyond = render(&cfg, cfg.max_cte * 10.0, &mut rng);
        assert_eq!(at_edge, beyond, "camera loses the line past max_cte");
    }

    #[test]
    fn perfect_policy_holds_the_centerline() {
        let cfg = TaxiConfig {
            noise_std: 0.0,
            disturbance_std: 0.0,
            ..Default::default()
        };
        let cfg_ref = cfg;
        let mut cte_now = 1.0;
        let trace = run_episode(
            &cfg,
            1.0,
            |_obs, step| {
                // Oracle policy: steer from the true state (tests the
                // dynamics, not the renderer).
                let action = ideal_action(&cfg_ref, cte_now);
                cte_now += cfg_ref.drift + steer_correction(&cfg_ref, action);
                let _ = step;
                Some(action)
            },
            &mut DetRng::new(5),
        )
        .unwrap();
        assert!(
            trace.max_abs_cte() <= 1.0 + cfg.steer_effect,
            "oracle steering must keep the excursion bounded, got {}",
            trace.max_abs_cte()
        );
        assert!(trace.ctes.last().unwrap().abs() < cfg.deadband + cfg.steer_effect);
    }

    #[test]
    fn withheld_actuation_compounds_drift() {
        let cfg = TaxiConfig {
            noise_std: 0.0,
            disturbance_std: 0.0,
            ..Default::default()
        };
        let trace = run_episode(&cfg, 0.0, |_, _| None, &mut DetRng::new(5)).unwrap();
        let expected = cfg.drift * cfg.steps as f64;
        assert!(
            (trace.ctes.last().unwrap() - expected).abs() < 1e-9,
            "uncorrected drift must integrate linearly"
        );
        assert_eq!(trace.steps(), cfg.steps);
        assert_eq!(trace.ctes.len(), cfg.steps + 1);
        assert_eq!(trace.observations.len(), cfg.steps);
    }

    #[test]
    fn episodes_are_deterministic() {
        let cfg = TaxiConfig::default();
        let run = |seed| {
            run_episode(&cfg, 0.5, |_, step| Some(step % 3), &mut DetRng::new(seed)).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "a different seed must change the episode");
    }

    #[test]
    fn deterministic_generation() {
        let cfg = TaxiConfig::default();
        let a = generate(&cfg, &mut DetRng::new(7)).unwrap();
        let b = generate(&cfg, &mut DetRng::new(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn samples_carry_the_line_band_as_salient() {
        let mut rng = DetRng::new(3);
        let cfg = TaxiConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let s = generate_sample(&cfg, 0, &mut rng);
        let r = s.salient.unwrap();
        assert_eq!(r.w, 2);
        assert_eq!(r.h, cfg.image_size);
        let n = cfg.image_size;
        // The band's top-left pixel is on the (dashed) line.
        assert_eq!(s.input[r.x], cfg.line_level);
        let _ = n;
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        generate_sample(&TaxiConfig::default(), 3, &mut DetRng::new(0));
    }

    #[test]
    fn bad_episode_inputs_are_rejected() {
        let cfg = TaxiConfig::default();
        assert!(run_episode(&cfg, f64::NAN, |_, _| None, &mut DetRng::new(0)).is_err());
        let bad = TaxiConfig { steps: 0, ..cfg };
        assert!(run_episode(&bad, 0.0, |_, _| None, &mut DetRng::new(0)).is_err());
    }
}
