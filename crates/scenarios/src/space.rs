//! Space scenario: terrain hazard classification for visual landing.
//!
//! Generates grayscale nadir terrain views (`1 x size x size`) with three
//! classes:
//!
//! | label | class      | evidence geometry                     |
//! |-------|------------|----------------------------------------|
//! | 0     | `safe`     | smooth regolith (texture noise only)   |
//! | 1     | `crater`   | bright ring with dark interior         |
//! | 2     | `boulders` | scatter of small bright dots           |
//!
//! The crater sample carries the crater's bounding box as salient ground
//! truth; the boulder field marks the densest cluster.

use safex_tensor::{DetRng, Shape};

use crate::dataset::{Dataset, Region, Sample};
use crate::error::ScenarioError;

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceConfig {
    /// Square image side in pixels (minimum 12).
    pub image_size: usize,
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Standard deviation of additive Gaussian sensor noise.
    pub noise_std: f64,
    /// Regolith base intensity.
    pub terrain_level: f32,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            image_size: 16,
            samples_per_class: 50,
            noise_std: 0.05,
            terrain_level: 0.4,
        }
    }
}

impl SpaceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidConfig`] for an image smaller than
    /// 12 px, zero samples, or invalid noise.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.image_size < 12 {
            return Err(ScenarioError::InvalidConfig(
                "image_size must be at least 12".into(),
            ));
        }
        if self.samples_per_class == 0 {
            return Err(ScenarioError::InvalidConfig(
                "samples_per_class must be non-zero".into(),
            ));
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err(ScenarioError::InvalidConfig(
                "noise_std must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Class names in label order.
pub const CLASS_NAMES: [&str; 3] = ["safe", "crater", "boulders"];

/// Generates a balanced space-terrain dataset.
///
/// # Errors
///
/// Returns [`ScenarioError::InvalidConfig`] on a bad configuration.
pub fn generate(config: &SpaceConfig, rng: &mut DetRng) -> Result<Dataset, ScenarioError> {
    config.validate()?;
    let n = config.image_size;
    let mut samples = Vec::with_capacity(3 * config.samples_per_class);
    for label in 0..3 {
        for _ in 0..config.samples_per_class {
            samples.push(generate_sample(config, label, rng));
        }
    }
    Dataset::new(
        Shape::chw(1, n, n),
        3,
        CLASS_NAMES.iter().map(|s| s.to_string()).collect(),
        samples,
    )
}

/// Generates a single terrain sample.
///
/// # Panics
///
/// Panics if `label >= 3`.
pub fn generate_sample(config: &SpaceConfig, label: usize, rng: &mut DetRng) -> Sample {
    assert!(label < 3, "space label out of range");
    let n = config.image_size;
    let mut img = vec![config.terrain_level; n * n];

    let salient = match label {
        0 => None,
        1 => {
            // Crater: ring of radius r centred somewhere with full ring inside.
            let r = 3 + rng.below_usize(n / 6);
            let cy = r + 1 + rng.below_usize(n - 2 * (r + 1));
            let cx = r + 1 + rng.below_usize(n - 2 * (r + 1));
            for y in 0..n {
                for x in 0..n {
                    let dy = y as f64 - cy as f64;
                    let dx = x as f64 - cx as f64;
                    let dist = (dy * dy + dx * dx).sqrt();
                    if (dist - r as f64).abs() < 0.8 {
                        img[y * n + x] = 0.9; // rim highlight
                    } else if dist < r as f64 - 0.8 {
                        img[y * n + x] = 0.1; // shadowed floor
                    }
                }
            }
            Some(Region::new(cy - r, cx - r, 2 * r + 1, 2 * r + 1).expect("crater bounds non-zero"))
        }
        _ => {
            // Boulder field: cluster of bright 1-2 px dots in a 7x7 box,
            // plus a few stragglers elsewhere.
            let box_side = 7.min(n - 1);
            let y0 = rng.below_usize(n - box_side);
            let x0 = rng.below_usize(n - box_side);
            for _ in 0..10 {
                let y = y0 + rng.below_usize(box_side);
                let x = x0 + rng.below_usize(box_side);
                img[y * n + x] = 0.95;
            }
            for _ in 0..3 {
                let y = rng.below_usize(n);
                let x = rng.below_usize(n);
                img[y * n + x] = 0.85;
            }
            Some(Region::new(y0, x0, box_side, box_side).expect("non-zero box"))
        }
    };

    if config.noise_std > 0.0 {
        for p in &mut img {
            *p = (*p as f64 + rng.gaussian(0.0, config.noise_std)) as f32;
        }
    }

    Sample {
        input: img,
        label,
        salient,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_three_classes() {
        let mut rng = DetRng::new(1);
        let cfg = SpaceConfig {
            samples_per_class: 6,
            ..Default::default()
        };
        let d = generate(&cfg, &mut rng).unwrap();
        assert_eq!(d.len(), 18);
        assert_eq!(d.classes(), 3);
        assert_eq!(d.class_counts(), vec![6, 6, 6]);
    }

    #[test]
    fn crater_has_dark_floor_and_bright_rim() {
        let cfg = SpaceConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let s = generate_sample(&cfg, 1, &mut DetRng::new(2));
        let n = cfg.image_size;
        let r = s.salient.unwrap();
        let cy = r.y + r.h / 2;
        let cx = r.x + r.w / 2;
        // Centre pixel is shadowed floor.
        assert!(s.input[cy * n + cx] < cfg.terrain_level);
        // Some pixel in the region is rim-bright.
        let bright = (r.y..r.y + r.h)
            .flat_map(|y| (r.x..r.x + r.w).map(move |x| (y, x)))
            .any(|(y, x)| s.input[y * n + x] > 0.8);
        assert!(bright);
    }

    #[test]
    fn boulders_have_bright_dots_in_region() {
        let cfg = SpaceConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let s = generate_sample(&cfg, 2, &mut DetRng::new(3));
        let n = cfg.image_size;
        let r = s.salient.unwrap();
        let dots = (r.y..r.y + r.h)
            .flat_map(|y| (r.x..r.x + r.w).map(move |x| (y, x)))
            .filter(|&(y, x)| s.input[y * n + x] > 0.9)
            .count();
        assert!(
            dots >= 3,
            "boulder cluster should have several dots: {dots}"
        );
    }

    #[test]
    fn safe_terrain_is_flat_without_noise() {
        let cfg = SpaceConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let s = generate_sample(&cfg, 0, &mut DetRng::new(4));
        assert!(s.input.iter().all(|&p| p == cfg.terrain_level));
        assert!(s.salient.is_none());
    }

    #[test]
    fn deterministic() {
        let cfg = SpaceConfig::default();
        assert_eq!(
            generate(&cfg, &mut DetRng::new(5)).unwrap(),
            generate(&cfg, &mut DetRng::new(5)).unwrap()
        );
    }

    #[test]
    fn config_rejected() {
        let mut rng = DetRng::new(1);
        assert!(generate(
            &SpaceConfig {
                samples_per_class: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }
}
