#![forbid(unsafe_code)]
//! # safex-scenarios
//!
//! Synthetic Critical Autonomous AI-based System (CAIS) workload
//! generators for the SAFEXPLAIN reproduction.
//!
//! The paper's case studies are proprietary automotive, space, and railway
//! DL stacks. This crate substitutes parameterised synthetic equivalents
//! (documented in `DESIGN.md`) that preserve the properties the experiment
//! suite needs:
//!
//! * **Learnable structure.** Each domain generates small grayscale CHW
//!   images with class-specific geometry (vehicles are blocks, pedestrians
//!   are vertical bars, craters are rings, ...). A few hundred samples
//!   train the `safex-nn` reference models to high accuracy.
//! * **Ground-truth explanations.** Every sample that contains an object
//!   records its salient [`Region`], so explanation fidelity (experiment
//!   E4) can be scored objectively.
//! * **Controllable distribution shift.** [`shift::Shift`] transforms
//!   (noise, brightness, contrast, occlusion, dead pixels) create
//!   out-of-distribution variants with a known severity knob, which is what
//!   the supervisor experiments (E1) sweep.
//! * **Temporal dynamics.** [`trajectory`] adds a closed-loop
//!   taxiing-style task where a cross-track error compounds across an
//!   episode under the model's steering decisions — the workload
//!   `safex-falsify` searches for specification violations.
//!
//! All generation is driven by an explicit [`safex_tensor::DetRng`]; a
//! `(config, seed)` pair identifies a dataset exactly.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), safex_scenarios::ScenarioError> {
//! use safex_scenarios::automotive::{self, AutomotiveConfig};
//! use safex_tensor::DetRng;
//!
//! let mut rng = DetRng::new(7);
//! let data = automotive::generate(&AutomotiveConfig::default(), &mut rng)?;
//! assert_eq!(data.classes(), 4);
//! assert!(data.len() > 0);
//! # Ok(())
//! # }
//! ```

pub mod automotive;
pub mod dataset;
pub mod error;
pub mod railway;
pub mod shift;
pub mod space;
pub mod trajectory;

pub use dataset::{Dataset, Region, Sample};
pub use error::ScenarioError;
