//! Distribution-shift transforms for out-of-distribution experiments.
//!
//! A [`Shift`] maps an in-distribution [`Dataset`] to a shifted variant.
//! Experiment E1 trains supervisors on clean data and measures their
//! detection of shifted data as the severity knob increases — the setup of
//! the Henriksson et al. out-of-distribution supervisor studies the
//! SAFEXPLAIN consortium builds on.

use safex_tensor::DetRng;

use crate::dataset::{Dataset, Sample};
use crate::error::ScenarioError;

/// A distribution-shift transform with an explicit severity parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Shift {
    /// Additive Gaussian noise with the given standard deviation.
    GaussianNoise(f64),
    /// Constant brightness offset added to every pixel.
    Brightness(f64),
    /// Contrast scaling around 0.5: `p' = 0.5 + factor * (p - 0.5)`.
    Contrast(f64),
    /// An opaque square occlusion patch of the given side placed uniformly
    /// at random (simulates lens blockage / dirt).
    Occlusion {
        /// Patch side in pixels.
        size: usize,
    },
    /// Each pixel dies (reads 0) independently with the given probability
    /// (simulates sensor defects / radiation upsets).
    DeadPixels(f64),
}

impl Shift {
    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Shift::GaussianNoise(_) => "gaussian_noise",
            Shift::Brightness(_) => "brightness",
            Shift::Contrast(_) => "contrast",
            Shift::Occlusion { .. } => "occlusion",
            Shift::DeadPixels(_) => "dead_pixels",
        }
    }

    /// The severity knob value (interpretation depends on the variant).
    pub fn severity(&self) -> f64 {
        match self {
            Shift::GaussianNoise(s) => *s,
            Shift::Brightness(b) => *b,
            Shift::Contrast(c) => *c,
            Shift::Occlusion { size } => *size as f64,
            Shift::DeadPixels(p) => *p,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidConfig`] for non-finite severities,
    /// negative noise, an occlusion size of zero, or a dead-pixel
    /// probability outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let bad = |msg: &str| Err(ScenarioError::InvalidConfig(msg.into()));
        match self {
            Shift::GaussianNoise(s) => {
                if !s.is_finite() || *s < 0.0 {
                    return bad("noise std must be finite and non-negative");
                }
            }
            Shift::Brightness(b) => {
                if !b.is_finite() {
                    return bad("brightness offset must be finite");
                }
            }
            Shift::Contrast(c) => {
                if !c.is_finite() || *c < 0.0 {
                    return bad("contrast factor must be finite and non-negative");
                }
            }
            Shift::Occlusion { size } => {
                if *size == 0 {
                    return bad("occlusion size must be non-zero");
                }
            }
            Shift::DeadPixels(p) => {
                if !p.is_finite() || !(0.0..=1.0).contains(p) {
                    return bad("dead-pixel probability must be in [0, 1]");
                }
            }
        }
        Ok(())
    }

    /// Applies the shift to every sample of a dataset, producing a new
    /// dataset with identical labels and salient regions.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidConfig`] if the parameters fail
    /// [`Shift::validate`], or [`ScenarioError::InvalidData`] if an
    /// occlusion patch does not fit the image.
    pub fn apply(&self, data: &Dataset, rng: &mut DetRng) -> Result<Dataset, ScenarioError> {
        self.validate()?;
        let shape = data.shape();
        let dims = shape.dims();
        let (h, w) = if dims.len() == 3 {
            (dims[1], dims[2])
        } else {
            (1, data.shape().len())
        };
        if let Shift::Occlusion { size } = self {
            if *size > h || *size > w {
                return Err(ScenarioError::InvalidData(format!(
                    "occlusion {size} exceeds image {h}x{w}"
                )));
            }
        }
        let channels = data.shape().len() / (h * w);
        let samples: Vec<Sample> = data
            .samples()
            .iter()
            .map(|s| {
                let mut input = s.input.clone();
                self.apply_pixels(&mut input, channels, h, w, rng);
                Sample {
                    input,
                    label: s.label,
                    salient: s.salient,
                }
            })
            .collect();
        Dataset::new(
            data.shape(),
            data.classes(),
            data.class_names().to_vec(),
            samples,
        )
        .map_err(|e| match e {
            // Preserve the error but make the origin explicit.
            ScenarioError::InvalidData(msg) => {
                ScenarioError::InvalidData(format!("shift produced invalid dataset: {msg}"))
            }
            other => other,
        })
    }

    fn apply_pixels(
        &self,
        pixels: &mut [f32],
        channels: usize,
        h: usize,
        w: usize,
        rng: &mut DetRng,
    ) {
        match self {
            Shift::GaussianNoise(std) => {
                for p in pixels.iter_mut() {
                    *p = (*p as f64 + rng.gaussian(0.0, *std)) as f32;
                }
            }
            Shift::Brightness(b) => {
                for p in pixels.iter_mut() {
                    *p = (*p as f64 + b) as f32;
                }
            }
            Shift::Contrast(c) => {
                for p in pixels.iter_mut() {
                    *p = (0.5 + c * (*p as f64 - 0.5)) as f32;
                }
            }
            Shift::Occlusion { size } => {
                let y0 = rng.below_usize(h - size + 1);
                let x0 = rng.below_usize(w - size + 1);
                for ch in 0..channels {
                    for y in y0..y0 + size {
                        for x in x0..x0 + size {
                            pixels[ch * h * w + y * w + x] = 0.0;
                        }
                    }
                }
            }
            Shift::DeadPixels(prob) => {
                for p in pixels.iter_mut() {
                    if rng.chance(*prob) {
                        *p = 0.0;
                    }
                }
            }
        }
    }
}

/// Applies a sequence of shifts left to right.
///
/// # Errors
///
/// Propagates the first failing shift.
pub fn apply_all(
    shifts: &[Shift],
    data: &Dataset,
    rng: &mut DetRng,
) -> Result<Dataset, ScenarioError> {
    let mut current = data.clone();
    for s in shifts {
        current = s.apply(&current, rng)?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automotive::{self, AutomotiveConfig};

    fn base() -> Dataset {
        automotive::generate(
            &AutomotiveConfig {
                samples_per_class: 4,
                noise_std: 0.0,
                ..Default::default()
            },
            &mut DetRng::new(1),
        )
        .unwrap()
    }

    #[test]
    fn noise_changes_pixels_keeps_labels() {
        let d = base();
        let shifted = Shift::GaussianNoise(0.2)
            .apply(&d, &mut DetRng::new(2))
            .unwrap();
        assert_eq!(shifted.labels(), d.labels());
        assert_ne!(shifted.samples()[0].input, d.samples()[0].input);
        assert_eq!(shifted.samples()[0].salient, d.samples()[0].salient);
    }

    #[test]
    fn brightness_adds_offset() {
        let d = base();
        let shifted = Shift::Brightness(0.3)
            .apply(&d, &mut DetRng::new(3))
            .unwrap();
        let orig = d.samples()[0].input[0];
        let new = shifted.samples()[0].input[0];
        assert!((new - orig - 0.3).abs() < 1e-6);
    }

    #[test]
    fn contrast_pivots_at_half() {
        let d = base();
        let shifted = Shift::Contrast(0.5).apply(&d, &mut DetRng::new(4)).unwrap();
        for (o, n) in d.samples()[0].input.iter().zip(&shifted.samples()[0].input) {
            let expected = 0.5 + 0.5 * (o - 0.5);
            assert!((n - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn occlusion_zeroes_square() {
        let d = base();
        let shifted = Shift::Occlusion { size: 5 }
            .apply(&d, &mut DetRng::new(5))
            .unwrap();
        let zeros = shifted.samples()[0]
            .input
            .iter()
            .filter(|&&p| p == 0.0)
            .count();
        assert!(zeros >= 25, "at least the patch is zeroed: {zeros}");
    }

    #[test]
    fn occlusion_too_big_rejected() {
        let d = base();
        assert!(matches!(
            Shift::Occlusion { size: 99 }.apply(&d, &mut DetRng::new(6)),
            Err(ScenarioError::InvalidData(_))
        ));
    }

    #[test]
    fn dead_pixels_probability() {
        let d = base();
        let shifted = Shift::DeadPixels(0.5)
            .apply(&d, &mut DetRng::new(7))
            .unwrap();
        let total: usize = shifted.samples().iter().map(|s| s.input.len()).sum();
        let dead: usize = shifted
            .samples()
            .iter()
            .map(|s| s.input.iter().filter(|&&p| p == 0.0).count())
            .sum();
        let frac = dead as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "dead fraction {frac}");
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(Shift::GaussianNoise(-1.0).validate().is_err());
        assert!(Shift::Brightness(f64::INFINITY).validate().is_err());
        assert!(Shift::Contrast(-0.1).validate().is_err());
        assert!(Shift::Occlusion { size: 0 }.validate().is_err());
        assert!(Shift::DeadPixels(1.5).validate().is_err());
        assert!(Shift::DeadPixels(0.5).validate().is_ok());
    }

    #[test]
    fn apply_all_composes() {
        let d = base();
        let out = apply_all(
            &[Shift::Brightness(0.1), Shift::Contrast(0.9)],
            &d,
            &mut DetRng::new(8),
        )
        .unwrap();
        assert_eq!(out.len(), d.len());
        let o = d.samples()[0].input[0] as f64;
        let expected = 0.5 + 0.9 * ((o + 0.1) - 0.5);
        assert!((out.samples()[0].input[0] as f64 - expected).abs() < 1e-6);
    }

    #[test]
    fn names_and_severity() {
        assert_eq!(Shift::GaussianNoise(0.1).name(), "gaussian_noise");
        assert_eq!(Shift::Occlusion { size: 3 }.severity(), 3.0);
        assert_eq!(Shift::DeadPixels(0.2).severity(), 0.2);
    }
}
