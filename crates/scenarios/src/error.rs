//! Error type for scenario generation.

use std::error::Error;
use std::fmt;

/// Errors produced by scenario generators and dataset operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// A configuration field is invalid; the message names it.
    InvalidConfig(String),
    /// A dataset operation received incompatible data.
    InvalidData(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::InvalidConfig(msg) => write!(f, "invalid scenario config: {msg}"),
            ScenarioError::InvalidData(msg) => write!(f, "invalid dataset operation: {msg}"),
        }
    }
}

impl Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ScenarioError::InvalidConfig("image_size".into());
        assert!(e.to_string().contains("image_size"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScenarioError>();
    }
}
