//! Automotive perception scenario: forward-camera object classification.
//!
//! Generates grayscale road scenes (`1 x size x size` CHW) with four
//! classes:
//!
//! | label | class        | evidence geometry                         |
//! |-------|--------------|-------------------------------------------|
//! | 0     | `clear_road` | lane markings only                        |
//! | 1     | `vehicle`    | bright square block on the road           |
//! | 2     | `pedestrian` | narrow bright vertical bar                |
//! | 3     | `cyclist`    | bright diagonal stroke                    |
//!
//! Object-bearing samples carry the object's bounding box as their
//! ground-truth salient [`Region`], which experiment E4 scores explanation
//! overlap against.

use safex_tensor::{DetRng, Shape};

use crate::dataset::{Dataset, Region, Sample};
use crate::error::ScenarioError;

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutomotiveConfig {
    /// Square image side in pixels (minimum 12).
    pub image_size: usize,
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f64,
    /// Background road intensity.
    pub road_level: f32,
    /// Object intensity.
    pub object_level: f32,
}

impl Default for AutomotiveConfig {
    fn default() -> Self {
        AutomotiveConfig {
            image_size: 16,
            samples_per_class: 50,
            noise_std: 0.05,
            road_level: 0.2,
            object_level: 0.9,
        }
    }
}

impl AutomotiveConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidConfig`] for an image smaller than
    /// 12 px, zero samples, or a non-finite/negative noise level.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.image_size < 12 {
            return Err(ScenarioError::InvalidConfig(
                "image_size must be at least 12".into(),
            ));
        }
        if self.samples_per_class == 0 {
            return Err(ScenarioError::InvalidConfig(
                "samples_per_class must be non-zero".into(),
            ));
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err(ScenarioError::InvalidConfig(
                "noise_std must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Class names in label order.
pub const CLASS_NAMES: [&str; 4] = ["clear_road", "vehicle", "pedestrian", "cyclist"];

/// Generates a balanced automotive dataset.
///
/// # Errors
///
/// Returns [`ScenarioError::InvalidConfig`] if the configuration fails
/// [`AutomotiveConfig::validate`].
pub fn generate(config: &AutomotiveConfig, rng: &mut DetRng) -> Result<Dataset, ScenarioError> {
    config.validate()?;
    let n = config.image_size;
    let mut samples = Vec::with_capacity(4 * config.samples_per_class);
    for label in 0..4 {
        for _ in 0..config.samples_per_class {
            samples.push(generate_sample(config, label, rng));
        }
    }
    Dataset::new(
        Shape::chw(1, n, n),
        4,
        CLASS_NAMES.iter().map(|s| s.to_string()).collect(),
        samples,
    )
}

/// Generates a single sample of the given class.
///
/// # Panics
///
/// Panics if `label >= 4` (internal helper contract; [`generate`] only
/// passes valid labels). Public so downstream crates can synthesise
/// streams of single frames.
pub fn generate_sample(config: &AutomotiveConfig, label: usize, rng: &mut DetRng) -> Sample {
    assert!(label < 4, "automotive label out of range");
    let n = config.image_size;
    let mut img = vec![config.road_level; n * n];

    // Lane markings: two dim vertical dashed lines at 1/3 and 2/3.
    for &cx in &[n / 3, 2 * n / 3] {
        for y in 0..n {
            if y % 3 != 2 {
                img[y * n + cx] = config.road_level + 0.15;
            }
        }
    }

    let salient = match label {
        0 => None,
        1 => {
            // Vehicle: bright block.
            let side = 4 + rng.below_usize(n / 4);
            let y0 = rng.below_usize(n - side);
            let x0 = rng.below_usize(n - side);
            for y in y0..y0 + side {
                for x in x0..x0 + side {
                    img[y * n + x] = config.object_level;
                }
            }
            Some(Region::new(y0, x0, side, side).expect("non-zero side"))
        }
        2 => {
            // Pedestrian: 2-wide, 6-tall bar.
            let h = 6.min(n - 1);
            let y0 = rng.below_usize(n - h);
            let x0 = rng.below_usize(n - 2);
            for y in y0..y0 + h {
                for x in x0..x0 + 2 {
                    img[y * n + x] = config.object_level;
                }
            }
            Some(Region::new(y0, x0, h, 2).expect("non-zero extent"))
        }
        _ => {
            // Cyclist: diagonal stroke of width 2 in a 6x6 box.
            let side = 6.min(n - 1);
            let y0 = rng.below_usize(n - side);
            let x0 = rng.below_usize(n - side);
            for d in 0..side {
                img[(y0 + d) * n + x0 + d] = config.object_level;
                if d + 1 < side {
                    img[(y0 + d) * n + x0 + d + 1] = config.object_level;
                }
            }
            Some(Region::new(y0, x0, side, side).expect("non-zero side"))
        }
    };

    if config.noise_std > 0.0 {
        for p in &mut img {
            *p = (*p as f64 + rng.gaussian(0.0, config.noise_std)) as f32;
        }
    }

    Sample {
        input: img,
        label,
        salient,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_dataset() {
        let mut rng = DetRng::new(1);
        let cfg = AutomotiveConfig {
            samples_per_class: 10,
            ..Default::default()
        };
        let d = generate(&cfg, &mut rng).unwrap();
        assert_eq!(d.len(), 40);
        assert_eq!(d.classes(), 4);
        assert_eq!(d.class_counts(), vec![10, 10, 10, 10]);
        assert_eq!(d.shape().dims(), &[1, 16, 16]);
    }

    #[test]
    fn config_validation() {
        let mut rng = DetRng::new(1);
        let bad = AutomotiveConfig {
            image_size: 4,
            ..Default::default()
        };
        assert!(generate(&bad, &mut rng).is_err());
        let bad = AutomotiveConfig {
            samples_per_class: 0,
            ..Default::default()
        };
        assert!(generate(&bad, &mut rng).is_err());
        let bad = AutomotiveConfig {
            noise_std: -1.0,
            ..Default::default()
        };
        assert!(generate(&bad, &mut rng).is_err());
    }

    #[test]
    fn object_classes_have_salient_regions() {
        let mut rng = DetRng::new(2);
        let d = generate(&AutomotiveConfig::default(), &mut rng).unwrap();
        for s in d.samples() {
            if s.label == 0 {
                assert!(s.salient.is_none());
            } else {
                assert!(s.salient.is_some(), "class {} needs a region", s.label);
            }
        }
    }

    #[test]
    fn salient_region_is_actually_bright() {
        let mut rng = DetRng::new(3);
        let cfg = AutomotiveConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let s = generate_sample(&cfg, 1, &mut rng);
        let r = s.salient.unwrap();
        let n = cfg.image_size;
        // Every pixel inside a vehicle block is at object level.
        for y in r.y..r.y + r.h {
            for x in r.x..r.x + r.w {
                assert_eq!(s.input[y * n + x], cfg.object_level);
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = AutomotiveConfig::default();
        let a = generate(&cfg, &mut DetRng::new(7)).unwrap();
        let b = generate(&cfg, &mut DetRng::new(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_perturbs_pixels() {
        let cfg = AutomotiveConfig::default();
        let clean_cfg = AutomotiveConfig {
            noise_std: 0.0,
            ..cfg
        };
        let noisy = generate_sample(&cfg, 0, &mut DetRng::new(9));
        let clean = generate_sample(&clean_cfg, 0, &mut DetRng::new(9));
        assert_ne!(noisy.input, clean.input);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        generate_sample(&AutomotiveConfig::default(), 4, &mut DetRng::new(0));
    }
}
