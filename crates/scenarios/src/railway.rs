//! Railway scenario: signal-aspect and obstruction classification.
//!
//! Generates grayscale track-side views (`1 x size x size`) with four
//! classes:
//!
//! | label | class        | evidence geometry                               |
//! |-------|--------------|--------------------------------------------------|
//! | 0     | `proceed`    | signal lamp lit in the *top* lamp position       |
//! | 1     | `caution`    | signal lamp lit in the *middle* lamp position    |
//! | 2     | `stop`       | signal lamp lit in the *bottom* lamp position    |
//! | 3     | `obstructed` | horizontal obstacle bar across the track         |
//!
//! The track (two vertical rails) is always present; lamp position on the
//! signal mast carries the class evidence, mirroring how real aspect
//! recognition keys on lamp geometry.

use safex_tensor::{DetRng, Shape};

use crate::dataset::{Dataset, Region, Sample};
use crate::error::ScenarioError;

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailwayConfig {
    /// Square image side in pixels (minimum 12).
    pub image_size: usize,
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f64,
    /// Lamp / obstacle intensity.
    pub signal_level: f32,
}

impl Default for RailwayConfig {
    fn default() -> Self {
        RailwayConfig {
            image_size: 16,
            samples_per_class: 50,
            noise_std: 0.05,
            signal_level: 0.95,
        }
    }
}

impl RailwayConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidConfig`] for an image smaller than
    /// 12 px, zero samples, or invalid noise.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.image_size < 12 {
            return Err(ScenarioError::InvalidConfig(
                "image_size must be at least 12".into(),
            ));
        }
        if self.samples_per_class == 0 {
            return Err(ScenarioError::InvalidConfig(
                "samples_per_class must be non-zero".into(),
            ));
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err(ScenarioError::InvalidConfig(
                "noise_std must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Class names in label order.
pub const CLASS_NAMES: [&str; 4] = ["proceed", "caution", "stop", "obstructed"];

/// Generates a balanced railway dataset.
///
/// # Errors
///
/// Returns [`ScenarioError::InvalidConfig`] on a bad configuration.
pub fn generate(config: &RailwayConfig, rng: &mut DetRng) -> Result<Dataset, ScenarioError> {
    config.validate()?;
    let n = config.image_size;
    let mut samples = Vec::with_capacity(4 * config.samples_per_class);
    for label in 0..4 {
        for _ in 0..config.samples_per_class {
            samples.push(generate_sample(config, label, rng));
        }
    }
    Dataset::new(
        Shape::chw(1, n, n),
        4,
        CLASS_NAMES.iter().map(|s| s.to_string()).collect(),
        samples,
    )
}

/// Generates a single railway sample.
///
/// # Panics
///
/// Panics if `label >= 4`.
pub fn generate_sample(config: &RailwayConfig, label: usize, rng: &mut DetRng) -> Sample {
    assert!(label < 4, "railway label out of range");
    let n = config.image_size;
    let mut img = vec![0.1f32; n * n];

    // Rails: two vertical lines converging slightly is overkill; keep two
    // parallel rails at 40 % and 60 % of the width.
    let rail_l = (n * 2) / 5;
    let rail_r = (n * 3) / 5;
    for y in 0..n {
        img[y * n + rail_l] = 0.35;
        img[y * n + rail_r] = 0.35;
    }

    // Signal mast on the left edge with three lamp slots (top/mid/bottom).
    let mast_x = 2 + rng.below_usize(2);
    for y in 0..n {
        img[y * n + mast_x] = 0.3;
    }

    let salient = if label < 3 {
        // Lamp lit at slot `label` (0 = top).
        let slot_h = n / 4;
        let y0 = 1 + label * slot_h;
        let lamp = 2usize;
        for y in y0..(y0 + lamp).min(n) {
            for x in mast_x..(mast_x + lamp).min(n) {
                img[y * n + x] = config.signal_level;
            }
        }
        Some(Region::new(y0, mast_x, lamp, lamp).expect("non-zero lamp"))
    } else {
        // Obstacle: horizontal bar across the rails at random height.
        let h = 2usize;
        let y0 = rng.below_usize(n - h);
        let x0 = rail_l.saturating_sub(1);
        let w = rail_r + 2 - x0;
        for y in y0..y0 + h {
            for x in x0..(x0 + w).min(n) {
                img[y * n + x] = config.signal_level;
            }
        }
        Some(Region::new(y0, x0, h, w.min(n - x0)).expect("non-zero bar"))
    };

    if config.noise_std > 0.0 {
        for p in &mut img {
            *p = (*p as f64 + rng.gaussian(0.0, config.noise_std)) as f32;
        }
    }

    Sample {
        input: img,
        label,
        salient,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_and_shaped() {
        let mut rng = DetRng::new(1);
        let cfg = RailwayConfig {
            samples_per_class: 8,
            ..Default::default()
        };
        let d = generate(&cfg, &mut rng).unwrap();
        assert_eq!(d.len(), 32);
        assert_eq!(d.class_counts(), vec![8, 8, 8, 8]);
        assert_eq!(d.classes(), 4);
    }

    #[test]
    fn lamp_position_differs_by_class() {
        let cfg = RailwayConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let mut rng = DetRng::new(2);
        let proceed = generate_sample(&cfg, 0, &mut rng);
        let stop = generate_sample(&cfg, 2, &mut rng);
        let ry_p = proceed.salient.unwrap().y;
        let ry_s = stop.salient.unwrap().y;
        assert!(ry_p < ry_s, "proceed lamp above stop lamp");
    }

    #[test]
    fn obstruction_spans_rails() {
        let cfg = RailwayConfig {
            noise_std: 0.0,
            ..Default::default()
        };
        let s = generate_sample(&cfg, 3, &mut DetRng::new(3));
        let r = s.salient.unwrap();
        let n = cfg.image_size;
        // The bar must cover both rail columns.
        assert!(r.x <= (n * 2) / 5);
        assert!(r.x + r.w > (n * 3) / 5);
    }

    #[test]
    fn every_sample_has_salient_region() {
        let mut rng = DetRng::new(4);
        let d = generate(&RailwayConfig::default(), &mut rng).unwrap();
        assert!(d.samples().iter().all(|s| s.salient.is_some()));
    }

    #[test]
    fn deterministic() {
        let cfg = RailwayConfig::default();
        assert_eq!(
            generate(&cfg, &mut DetRng::new(11)).unwrap(),
            generate(&cfg, &mut DetRng::new(11)).unwrap()
        );
    }

    #[test]
    fn config_rejected() {
        let mut rng = DetRng::new(1);
        assert!(generate(
            &RailwayConfig {
                image_size: 8,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(generate(
            &RailwayConfig {
                noise_std: f64::NAN,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }
}
