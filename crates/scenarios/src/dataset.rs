//! Labelled sample collections with ground-truth salient regions.

use safex_tensor::{DetRng, Shape};

use crate::error::ScenarioError;

/// An axis-aligned rectangular region inside an image, in pixel
/// coordinates (`y` down, `x` right), used as explanation ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Top row.
    pub y: usize,
    /// Left column.
    pub x: usize,
    /// Height in pixels (non-zero).
    pub h: usize,
    /// Width in pixels (non-zero).
    pub w: usize,
}

impl Region {
    /// Creates a region, validating non-zero extent.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidData`] for a zero-sized region.
    pub fn new(y: usize, x: usize, h: usize, w: usize) -> Result<Self, ScenarioError> {
        if h == 0 || w == 0 {
            return Err(ScenarioError::InvalidData(
                "region extent must be non-zero".into(),
            ));
        }
        Ok(Region { y, x, h, w })
    }

    /// Whether pixel `(py, px)` lies inside the region.
    pub fn contains(&self, py: usize, px: usize) -> bool {
        py >= self.y && py < self.y + self.h && px >= self.x && px < self.x + self.w
    }

    /// Region area in pixels.
    pub fn area(&self) -> usize {
        self.h * self.w
    }

    /// Intersection-over-union with another region (0 when disjoint).
    pub fn iou(&self, other: &Region) -> f64 {
        let y0 = self.y.max(other.y);
        let x0 = self.x.max(other.x);
        let y1 = (self.y + self.h).min(other.y + other.h);
        let x1 = (self.x + self.w).min(other.x + other.w);
        if y1 <= y0 || x1 <= x0 {
            return 0.0;
        }
        let inter = ((y1 - y0) * (x1 - x0)) as f64;
        let union = (self.area() + other.area()) as f64 - inter;
        inter / union
    }
}

/// One labelled sample: flat CHW pixel data, class label, optional
/// ground-truth salient region.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Row-major CHW pixel values, typically in `[0, 1]` before shift.
    pub input: Vec<f32>,
    /// Class label, `< Dataset::classes()`.
    pub label: usize,
    /// Where the class evidence sits, if the class has localised evidence.
    pub salient: Option<Region>,
}

/// A labelled dataset with a fixed input shape and class inventory.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), safex_scenarios::ScenarioError> {
/// use safex_scenarios::{Dataset, Sample};
/// use safex_tensor::Shape;
///
/// let samples = vec![
///     Sample { input: vec![0.0; 4], label: 0, salient: None },
///     Sample { input: vec![1.0; 4], label: 1, salient: None },
/// ];
/// let data = Dataset::new(Shape::chw(1, 2, 2), 2, vec!["a".into(), "b".into()], samples)?;
/// assert_eq!(data.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    shape: Shape,
    classes: usize,
    class_names: Vec<String>,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates a dataset, validating labels and sample lengths.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidData`] if `classes == 0`, the name
    /// list length differs from `classes`, any sample's input length
    /// differs from `shape.len()`, or any label is out of range.
    pub fn new(
        shape: Shape,
        classes: usize,
        class_names: Vec<String>,
        samples: Vec<Sample>,
    ) -> Result<Self, ScenarioError> {
        if classes == 0 {
            return Err(ScenarioError::InvalidData(
                "classes must be non-zero".into(),
            ));
        }
        if class_names.len() != classes {
            return Err(ScenarioError::InvalidData(format!(
                "{} class names for {} classes",
                class_names.len(),
                classes
            )));
        }
        for (i, s) in samples.iter().enumerate() {
            if s.input.len() != shape.len() {
                return Err(ScenarioError::InvalidData(format!(
                    "sample {i} has {} values, shape {shape} needs {}",
                    s.input.len(),
                    shape.len()
                )));
            }
            if s.label >= classes {
                return Err(ScenarioError::InvalidData(format!(
                    "sample {i} label {} out of range for {classes} classes",
                    s.label
                )));
            }
        }
        Ok(Dataset {
            shape,
            classes,
            class_names,
            samples,
        })
    }

    /// Input shape of every sample.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Class display names (length equals [`Dataset::classes`]).
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Owned copies of all inputs, in order (the layout `safex-nn`'s
    /// trainer consumes).
    pub fn inputs_owned(&self) -> Vec<Vec<f32>> {
        self.samples.iter().map(|s| s.input.clone()).collect()
    }

    /// All labels, in order.
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Splits into `(train, test)` with `train_fraction` of samples (after
    /// a deterministic shuffle) in the training set.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidData`] if the fraction is outside
    /// `(0, 1)` or either side would be empty.
    pub fn split(
        &self,
        train_fraction: f64,
        rng: &mut DetRng,
    ) -> Result<(Dataset, Dataset), ScenarioError> {
        if !(0.0..=1.0).contains(&train_fraction) || !train_fraction.is_finite() {
            return Err(ScenarioError::InvalidData(format!(
                "train fraction {train_fraction} outside [0, 1]"
            )));
        }
        let n_train = (self.len() as f64 * train_fraction).round() as usize;
        if n_train == 0 || n_train == self.len() {
            return Err(ScenarioError::InvalidData(
                "split would leave an empty side".into(),
            ));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        let make = |idx: &[usize]| Dataset {
            shape: self.shape,
            classes: self.classes,
            class_names: self.class_names.clone(),
            samples: idx.iter().map(|&i| self.samples[i].clone()).collect(),
        };
        Ok((make(&order[..n_train]), make(&order[n_train..])))
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// Deterministically shuffles the samples in place.
    pub fn shuffle(&mut self, rng: &mut DetRng) {
        rng.shuffle(&mut self.samples);
    }

    /// Merges two datasets with identical shape/classes.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidData`] on shape or class mismatch.
    pub fn merged(&self, other: &Dataset) -> Result<Dataset, ScenarioError> {
        if self.shape != other.shape || self.classes != other.classes {
            return Err(ScenarioError::InvalidData(
                "cannot merge datasets with different shape or classes".into(),
            ));
        }
        let mut samples = self.samples.clone();
        samples.extend(other.samples.iter().cloned());
        Ok(Dataset {
            shape: self.shape,
            classes: self.classes,
            class_names: self.class_names.clone(),
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let samples = (0..10)
            .map(|i| Sample {
                input: vec![i as f32; 4],
                label: i % 2,
                salient: None,
            })
            .collect();
        Dataset::new(
            Shape::chw(1, 2, 2),
            2,
            vec!["a".into(), "b".into()],
            samples,
        )
        .unwrap()
    }

    #[test]
    fn region_contains_and_area() {
        let r = Region::new(1, 2, 3, 4).unwrap();
        assert!(r.contains(1, 2));
        assert!(r.contains(3, 5));
        assert!(!r.contains(4, 2));
        assert!(!r.contains(1, 6));
        assert_eq!(r.area(), 12);
        assert!(Region::new(0, 0, 0, 1).is_err());
    }

    #[test]
    fn region_iou() {
        let a = Region::new(0, 0, 2, 2).unwrap();
        let b = Region::new(0, 0, 2, 2).unwrap();
        assert_eq!(a.iou(&b), 1.0);
        let c = Region::new(1, 1, 2, 2).unwrap();
        // Intersection 1, union 7.
        assert!((a.iou(&c) - 1.0 / 7.0).abs() < 1e-12);
        let d = Region::new(5, 5, 2, 2).unwrap();
        assert_eq!(a.iou(&d), 0.0);
    }

    #[test]
    fn dataset_validation() {
        assert!(Dataset::new(Shape::chw(1, 2, 2), 0, vec![], vec![]).is_err());
        assert!(Dataset::new(Shape::chw(1, 2, 2), 2, vec!["a".into()], vec![]).is_err());
        let bad_len = vec![Sample {
            input: vec![0.0; 3],
            label: 0,
            salient: None,
        }];
        assert!(Dataset::new(Shape::chw(1, 2, 2), 1, vec!["a".into()], bad_len).is_err());
        let bad_label = vec![Sample {
            input: vec![0.0; 4],
            label: 3,
            salient: None,
        }];
        assert!(Dataset::new(
            Shape::chw(1, 2, 2),
            2,
            vec!["a".into(), "b".into()],
            bad_label
        )
        .is_err());
    }

    #[test]
    fn split_partitions() {
        let d = tiny();
        let mut rng = DetRng::new(5);
        let (train, test) = d.split(0.7, &mut rng).unwrap();
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Same shape metadata.
        assert_eq!(train.shape(), d.shape());
        assert_eq!(test.classes(), 2);
        // No overlap, full coverage (inputs are distinct by construction).
        let mut all: Vec<f32> = train
            .samples()
            .iter()
            .chain(test.samples())
            .map(|s| s.input[0])
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..10).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn split_rejects_degenerate() {
        let d = tiny();
        let mut rng = DetRng::new(5);
        assert!(d.split(0.0, &mut rng).is_err());
        assert!(d.split(1.0, &mut rng).is_err());
        assert!(d.split(f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn split_deterministic() {
        let d = tiny();
        let (a, _) = d.split(0.5, &mut DetRng::new(9)).unwrap();
        let (b, _) = d.split(0.5, &mut DetRng::new(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn class_counts_and_accessors() {
        let d = tiny();
        assert_eq!(d.class_counts(), vec![5, 5]);
        assert_eq!(d.labels().len(), 10);
        assert_eq!(d.inputs_owned()[3], vec![3.0; 4]);
        assert_eq!(d.class_names()[1], "b");
    }

    #[test]
    fn merged_checks_compat() {
        let d = tiny();
        let m = d.merged(&d).unwrap();
        assert_eq!(m.len(), 20);
        let other =
            Dataset::new(Shape::chw(1, 1, 4), 2, vec!["a".into(), "b".into()], vec![]).unwrap();
        assert!(d.merged(&other).is_err());
    }
}
