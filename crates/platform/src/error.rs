//! Error type for the platform simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by platform construction and measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A cache or platform parameter is invalid; the message names it.
    BadConfig(String),
    /// A measurement request is invalid (zero runs, empty program).
    BadMeasurement(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::BadConfig(msg) => write!(f, "bad platform config: {msg}"),
            PlatformError::BadMeasurement(msg) => write!(f, "bad measurement request: {msg}"),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(PlatformError::BadConfig("ways".into())
            .to_string()
            .contains("ways"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }
}
