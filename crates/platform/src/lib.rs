#![forbid(unsafe_code)]
//! # safex-platform
//!
//! A cycle-approximate embedded-platform simulator: the substrate for
//! pillar 4 of the SAFEXPLAIN paper — *"computing platform configurations,
//! to regain determinism, and probabilistic timing analyses, to handle the
//! remaining non-determinism"*.
//!
//! The paper's consortium evaluates on embedded multicores (Jetson-class
//! automotive boards, space MPSoCs) that this reproduction does not have;
//! per the substitution rule in `DESIGN.md`, this crate models the parts
//! of such platforms that *matter for timing analysis*:
//!
//! * **Set-associative caches** ([`cache`]) with the three configurations
//!   the MBPTA literature contrasts: deterministic modulo-placement + LRU,
//!   **time-randomised** (random placement hash per run + random
//!   replacement — the configuration that makes measurement-based
//!   probabilistic timing analysis sound), and **partitioned** (per-core
//!   slices that remove inter-core conflicts).
//! * **A two-level memory hierarchy** ([`hierarchy`]) with configurable
//!   hit/miss latencies and a shared-bus contention model.
//! * **Co-runner interference** ([`platform`]): contending cores add
//!   arbitration delay and L2 pollution, scaled by the number of active
//!   co-runners — flat when the L2 is partitioned.
//! * **DL workload traces** ([`program`]): a `safex-nn` model compiles to
//!   a deterministic memory-access/compute trace, so the execution-time
//!   distributions analysed by `safex-timing` come from the *actual* DL
//!   workload structure (weight streaming, activation ping-pong), not a
//!   synthetic kernel.
//!
//! Everything is driven by explicit seeds; a `(config, seed)` pair
//! reproduces a measurement campaign exactly.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), safex_platform::PlatformError> {
//! use safex_platform::platform::{Platform, PlatformConfig};
//! use safex_platform::program::TraceProgram;
//! use safex_tensor::DetRng;
//!
//! let program = TraceProgram::synthetic_kernel(500, 64, 7);
//! let platform = Platform::new(PlatformConfig::time_randomized())?;
//! let mut rng = DetRng::new(42);
//! let cycles = platform.measure(&program, 50, &mut rng)?;
//! assert_eq!(cycles.len(), 50);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod error;
pub mod hierarchy;
pub mod platform;
pub mod program;

pub use error::PlatformError;
pub use platform::{Platform, PlatformConfig};
pub use program::TraceProgram;
