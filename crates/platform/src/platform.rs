//! The platform: configuration presets and measurement campaigns.

use safex_tensor::DetRng;

use crate::cache::{CacheConfig, Placement, Replacement};
use crate::error::PlatformError;
use crate::hierarchy::{Interference, Latencies, MemoryHierarchy};
use crate::program::{TraceOp, TraceProgram};

/// A complete platform configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// Access latencies.
    pub latencies: Latencies,
    /// Co-runner interference model.
    pub interference: Interference,
}

impl PlatformConfig {
    /// Baseline deterministic platform: modulo placement, LRU, no
    /// co-runners. Execution time is a single repeatable number.
    pub fn deterministic() -> Self {
        PlatformConfig {
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                line_bytes: 64,
                ways: 2,
                placement: Placement::Modulo,
                replacement: Replacement::Lru,
            },
            l2: CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 8,
                placement: Placement::Modulo,
                replacement: Replacement::Lru,
            },
            latencies: Latencies::default(),
            interference: Interference::none(),
        }
    }

    /// Time-randomised platform: random placement + random replacement in
    /// both levels — the MBPTA-friendly configuration whose execution
    /// times are i.i.d.-enough for extreme-value fitting.
    pub fn time_randomized() -> Self {
        let mut c = Self::deterministic();
        c.l1.placement = Placement::RandomHash;
        c.l1.replacement = Replacement::Random;
        c.l2.placement = Placement::RandomHash;
        c.l2.replacement = Replacement::Random;
        c
    }

    /// Adds `co_runners` contending cores with default interference
    /// parameters (shared L2).
    pub fn with_co_runners(mut self, co_runners: usize) -> Self {
        self.interference = Interference {
            co_runners,
            bus_delay_per_runner: 12,
            pollution_per_runner: 0.05,
            partitioned_l2: false,
        };
        self
    }

    /// Switches the shared L2 to per-core partitioning.
    pub fn partitioned(mut self) -> Self {
        self.interference.partitioned_l2 = true;
        self
    }

    /// Validates all components.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadConfig`] if any component is invalid.
    pub fn validate(&self) -> Result<(), PlatformError> {
        self.l1.validate()?;
        self.l2.validate()?;
        self.latencies.validate()?;
        self.interference.validate()?;
        Ok(())
    }
}

/// One execution's result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Total cycles.
    pub cycles: u64,
    /// L1 hit rate over the run.
    pub l1_hit_rate: f64,
    /// L2 hit rate over the run.
    pub l2_hit_rate: f64,
}

/// An execution platform that measures trace programs.
///
/// Each run rebuilds the hierarchy with a fresh sub-stream of the
/// campaign RNG: under time-randomised placement every run gets a new
/// placement hash (exactly how MBPTA collects its measurement samples);
/// under deterministic configuration runs are identical unless co-runner
/// randomness is present.
#[derive(Debug, Clone)]
pub struct Platform {
    config: PlatformConfig,
}

impl Platform {
    /// Creates a platform after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadConfig`] on an invalid configuration.
    pub fn new(config: PlatformConfig) -> Result<Self, PlatformError> {
        config.validate()?;
        Ok(Platform { config })
    }

    /// The configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Executes the program once with a dedicated RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadMeasurement`] for an empty program.
    pub fn run(
        &self,
        program: &TraceProgram,
        rng: &mut DetRng,
    ) -> Result<RunResult, PlatformError> {
        if program.is_empty() {
            return Err(PlatformError::BadMeasurement("empty program".into()));
        }
        let mut hierarchy = MemoryHierarchy::new(
            self.config.l1,
            self.config.l2,
            self.config.latencies,
            self.config.interference,
            rng,
        )?;
        let mut cycles = 0u64;
        for op in program.ops() {
            match op {
                TraceOp::Compute(c) => cycles += c,
                TraceOp::Load(addr) | TraceOp::Store(addr) => {
                    cycles += hierarchy.access(*addr, rng);
                }
            }
        }
        let (l1_hit_rate, l2_hit_rate) = hierarchy.hit_rates();
        Ok(RunResult {
            cycles,
            l1_hit_rate,
            l2_hit_rate,
        })
    }

    /// Runs a measurement campaign: `runs` executions, each with a forked
    /// RNG stream, returning the execution times in cycles.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadMeasurement`] for zero runs or an empty
    /// program.
    pub fn measure(
        &self,
        program: &TraceProgram,
        runs: usize,
        rng: &mut DetRng,
    ) -> Result<Vec<f64>, PlatformError> {
        if runs == 0 {
            return Err(PlatformError::BadMeasurement("zero runs".into()));
        }
        let mut out = Vec::with_capacity(runs);
        for i in 0..runs {
            let mut run_rng = rng.fork(i as u64);
            out.push(self.run(program, &mut run_rng)?.cycles as f64);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> TraceProgram {
        TraceProgram::synthetic_kernel(50, 128, 3)
    }

    #[test]
    fn presets_are_valid() {
        assert!(PlatformConfig::deterministic().validate().is_ok());
        assert!(PlatformConfig::time_randomized().validate().is_ok());
        assert!(PlatformConfig::time_randomized()
            .with_co_runners(3)
            .partitioned()
            .validate()
            .is_ok());
    }

    #[test]
    fn deterministic_platform_constant_cycles() {
        let p = Platform::new(PlatformConfig::deterministic()).unwrap();
        let mut rng = DetRng::new(1);
        let cycles = p.measure(&kernel(), 10, &mut rng).unwrap();
        assert!(cycles.windows(2).all(|w| w[0] == w[1]), "{cycles:?}");
    }

    #[test]
    fn randomized_platform_varies_cycles() {
        let p = Platform::new(PlatformConfig::time_randomized()).unwrap();
        let mut rng = DetRng::new(2);
        let cycles = p.measure(&kernel(), 20, &mut rng).unwrap();
        let distinct: std::collections::HashSet<u64> = cycles.iter().map(|&c| c as u64).collect();
        assert!(distinct.len() > 3, "expected variation: {cycles:?}");
    }

    #[test]
    fn measurement_campaign_reproducible() {
        let p = Platform::new(PlatformConfig::time_randomized()).unwrap();
        let a = p.measure(&kernel(), 20, &mut DetRng::new(3)).unwrap();
        let b = p.measure(&kernel(), 20, &mut DetRng::new(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn co_runners_slow_execution() {
        let alone = Platform::new(PlatformConfig::time_randomized()).unwrap();
        let contended =
            Platform::new(PlatformConfig::time_randomized().with_co_runners(3)).unwrap();
        let mut rng = DetRng::new(4);
        let a = alone.measure(&kernel(), 20, &mut rng).unwrap();
        let mut rng = DetRng::new(4);
        let c = contended.measure(&kernel(), 20, &mut rng).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&c) > mean(&a) * 1.1,
            "contended {} vs alone {}",
            mean(&c),
            mean(&a)
        );
    }

    #[test]
    fn partitioning_tames_co_runner_slowdown() {
        let shared = Platform::new(PlatformConfig::time_randomized().with_co_runners(3)).unwrap();
        let part = Platform::new(
            PlatformConfig::time_randomized()
                .with_co_runners(3)
                .partitioned(),
        )
        .unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let s = mean(&shared.measure(&kernel(), 20, &mut DetRng::new(5)).unwrap());
        let p = mean(&part.measure(&kernel(), 20, &mut DetRng::new(5)).unwrap());
        assert!(p < s, "partitioned {p} vs shared {s}");
    }

    #[test]
    fn run_reports_hit_rates() {
        let p = Platform::new(PlatformConfig::deterministic()).unwrap();
        let mut rng = DetRng::new(6);
        let r = p.run(&kernel(), &mut rng).unwrap();
        assert!(r.cycles > 0);
        assert!((0.0..=1.0).contains(&r.l1_hit_rate));
        assert!((0.0..=1.0).contains(&r.l2_hit_rate));
        // The 128-line working set exceeds the 64-line L1 (thrashes) but
        // fits the L2, so reuse shows up there.
        assert!(r.l2_hit_rate > 0.5, "l2 hit rate {}", r.l2_hit_rate);
    }

    #[test]
    fn measurement_validation() {
        let p = Platform::new(PlatformConfig::deterministic()).unwrap();
        let mut rng = DetRng::new(7);
        assert!(p.measure(&kernel(), 0, &mut rng).is_err());
        let empty = TraceProgram::new("empty", vec![]);
        assert!(p.run(&empty, &mut rng).is_err());
    }

    #[test]
    fn bad_config_rejected() {
        let mut c = PlatformConfig::deterministic();
        c.l1.size_bytes = 1000;
        assert!(Platform::new(c).is_err());
    }
}
