//! Trace programs: the workloads the platform executes.
//!
//! A [`TraceProgram`] is a deterministic sequence of compute bursts and
//! memory accesses. [`TraceProgram::from_model`] compiles a `safex-nn`
//! model into the access pattern a real embedded inference engine would
//! issue (stream weights, read activations from one buffer, write to the
//! other), so timing experiments measure the *DL workload's* memory
//! behaviour rather than a synthetic kernel's.

use safex_nn::layer::Layer;
use safex_nn::Model;
use safex_tensor::DetRng;

/// One step of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// Busy the core for the given cycles (ALU/MAC work).
    Compute(u64),
    /// Read the byte address.
    Load(u64),
    /// Write the byte address.
    Store(u64),
}

/// A deterministic instruction/access trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceProgram {
    name: String,
    ops: Vec<TraceOp>,
}

impl TraceProgram {
    /// Creates a program from raw ops.
    pub fn new(name: impl Into<String>, ops: Vec<TraceOp>) -> Self {
        TraceProgram {
            name: name.into(),
            ops,
        }
    }

    /// Program name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total memory accesses (loads + stores).
    pub fn access_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Load(_) | TraceOp::Store(_)))
            .count()
    }

    /// A synthetic strided kernel: `iterations` rounds, each touching
    /// `footprint_lines` cache lines with the given stride-in-lines, with
    /// one compute cycle between accesses. Useful for cache studies
    /// independent of any model.
    pub fn synthetic_kernel(
        iterations: usize,
        footprint_lines: usize,
        stride_lines: usize,
    ) -> Self {
        let line = 64u64;
        let mut ops = Vec::with_capacity(iterations * footprint_lines);
        for _ in 0..iterations {
            for i in 0..footprint_lines {
                let addr = (i * stride_lines) as u64 * line;
                ops.push(TraceOp::Load(addr));
                ops.push(TraceOp::Compute(1));
            }
        }
        TraceProgram::new("synthetic_kernel", ops)
    }

    /// A memory-hog co-runner: random loads over `footprint_bytes`,
    /// maximising pressure on shared levels.
    pub fn memory_hog(accesses: usize, footprint_bytes: u64, rng: &mut DetRng) -> Self {
        let ops = (0..accesses)
            .map(|_| TraceOp::Load(rng.below(footprint_bytes)))
            .collect();
        TraceProgram::new("memory_hog", ops)
    }

    /// Compiles a `safex-nn` model into an inference trace.
    ///
    /// Memory map: weights live in a read-only region starting at
    /// `WEIGHT_BASE` (laid out layer after layer); activations ping-pong
    /// between two buffers. Per output element the trace issues the loads
    /// a straightforward (non-blocked) implementation would: every weight
    /// of the receptive field plus the corresponding input activations,
    /// then one store. Compute cycles count one MAC per weight.
    ///
    /// The trace is *sampled*: for layers with more than
    /// `max_outputs_per_layer` outputs, a deterministic subset of outputs
    /// is traced and the per-output cost is scaled, keeping trace sizes
    /// bounded while preserving the access pattern. Sampling is
    /// deterministic (stride-based, no RNG).
    pub fn from_model(model: &Model, max_outputs_per_layer: usize) -> Self {
        const WEIGHT_BASE: u64 = 0x1000_0000;
        const ACT_A: u64 = 0x2000_0000;
        const ACT_B: u64 = 0x3000_0000;
        let elem = 4u64; // f32

        let mut ops = Vec::new();
        let mut weight_cursor = WEIGHT_BASE;
        let mut in_base = ACT_A;
        let mut out_base = ACT_B;
        let mut in_shape = model.input_shape();

        for (li, layer) in model.layers().iter().enumerate() {
            let out_shape = model.layer_output_shape(li).expect("index in range");
            match layer {
                Layer::Dense(d) => {
                    let inputs = d.inputs() as u64;
                    let outputs = d.outputs();
                    let step = (outputs / max_outputs_per_layer.max(1)).max(1);
                    for o in (0..outputs).step_by(step) {
                        let row_base = weight_cursor + (o as u64) * inputs * elem;
                        for i in 0..inputs {
                            ops.push(TraceOp::Load(row_base + i * elem));
                            ops.push(TraceOp::Load(in_base + i * elem));
                            ops.push(TraceOp::Compute(1));
                        }
                        ops.push(TraceOp::Store(out_base + (o as u64) * elem));
                    }
                    weight_cursor += (d.weights().len() + d.bias().len()) as u64 * elem;
                }
                Layer::Conv2d(c) => {
                    let dims = in_shape.dims();
                    let (in_c, in_h, in_w) = (dims[0] as u64, dims[1] as u64, dims[2] as u64);
                    let odims = out_shape.dims();
                    let (out_c, oh, ow) = (odims[0], odims[1], odims[2]);
                    let k = c.kernel() as u64;
                    let total_out = out_c * oh * ow;
                    let step = (total_out / max_outputs_per_layer.max(1)).max(1);
                    for flat in (0..total_out).step_by(step) {
                        let oc = (flat / (oh * ow)) as u64;
                        let rem = flat % (oh * ow);
                        let oy = (rem / ow) as u64;
                        let ox = (rem % ow) as u64;
                        let w_base = weight_cursor + oc * in_c * k * k * elem;
                        for ic in 0..in_c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    ops.push(TraceOp::Load(
                                        w_base + (ic * k * k + ky * k + kx) * elem,
                                    ));
                                    let iy = oy * c.stride() as u64 + ky;
                                    let ix = ox * c.stride() as u64 + kx;
                                    let in_idx =
                                        ic * in_h * in_w + (iy % in_h) * in_w + (ix % in_w);
                                    ops.push(TraceOp::Load(in_base + in_idx * elem));
                                    ops.push(TraceOp::Compute(1));
                                }
                            }
                        }
                        ops.push(TraceOp::Store(out_base + flat as u64 * elem));
                    }
                    weight_cursor += (c.weights().len() + c.bias().len()) as u64 * elem;
                }
                Layer::MaxPool2d { pool, stride } | Layer::AvgPool2d { pool, stride } => {
                    let dims = in_shape.dims();
                    let (in_h, in_w) = (dims[1] as u64, dims[2] as u64);
                    let odims = out_shape.dims();
                    let total_out = odims[0] * odims[1] * odims[2];
                    let step = (total_out / max_outputs_per_layer.max(1)).max(1);
                    let (oh, ow) = (odims[1] as u64, odims[2] as u64);
                    for flat in (0..total_out).step_by(step) {
                        let c = (flat as u64) / (oh * ow);
                        let rem = (flat as u64) % (oh * ow);
                        let oy = rem / ow;
                        let ox = rem % ow;
                        for py in 0..*pool as u64 {
                            for px in 0..*pool as u64 {
                                let iy = oy * *stride as u64 + py;
                                let ix = ox * *stride as u64 + px;
                                let idx = c * in_h * in_w + (iy % in_h) * in_w + (ix % in_w);
                                ops.push(TraceOp::Load(in_base + idx * elem));
                                ops.push(TraceOp::Compute(1));
                            }
                        }
                        ops.push(TraceOp::Store(out_base + flat as u64 * elem));
                    }
                }
                Layer::Relu | Layer::LeakyRelu { .. } | Layer::Softmax => {
                    let n = out_shape.len();
                    let step = (n / max_outputs_per_layer.max(1)).max(1);
                    for i in (0..n).step_by(step) {
                        ops.push(TraceOp::Load(in_base + i as u64 * elem));
                        ops.push(TraceOp::Compute(1));
                        ops.push(TraceOp::Store(out_base + i as u64 * elem));
                    }
                }
                Layer::Flatten => {
                    // No data movement in a real engine (same buffer).
                }
                // `Layer` is #[non_exhaustive]; model any future layer as
                // an elementwise pass (load, compute, store per element).
                _ => {
                    let n = out_shape.len();
                    let step = (n / max_outputs_per_layer.max(1)).max(1);
                    for i in (0..n).step_by(step) {
                        ops.push(TraceOp::Load(in_base + i as u64 * elem));
                        ops.push(TraceOp::Compute(1));
                        ops.push(TraceOp::Store(out_base + i as u64 * elem));
                    }
                }
            }
            if !matches!(layer, Layer::Flatten) {
                std::mem::swap(&mut in_base, &mut out_base);
            }
            in_shape = out_shape;
        }
        TraceProgram::new("model_inference", ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_nn::model::ModelBuilder;
    use safex_tensor::Shape;

    fn small_model() -> Model {
        let mut rng = DetRng::new(1);
        ModelBuilder::new(Shape::chw(1, 8, 8))
            .conv2d(2, 3, 1, 1, &mut rng)
            .unwrap()
            .relu()
            .maxpool2d(2, 2)
            .unwrap()
            .flatten()
            .dense(4, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn synthetic_kernel_shape() {
        let p = TraceProgram::synthetic_kernel(3, 10, 2);
        assert_eq!(p.len(), 60);
        assert_eq!(p.access_count(), 30);
        assert!(!p.is_empty());
        assert_eq!(p.name(), "synthetic_kernel");
    }

    #[test]
    fn memory_hog_is_random_but_deterministic() {
        let a = TraceProgram::memory_hog(100, 4096, &mut DetRng::new(5));
        let b = TraceProgram::memory_hog(100, 4096, &mut DetRng::new(5));
        assert_eq!(a, b);
        assert_eq!(a.access_count(), 100);
        for op in a.ops() {
            if let TraceOp::Load(addr) = op {
                assert!(*addr < 4096);
            }
        }
    }

    #[test]
    fn model_trace_nonempty_and_deterministic() {
        let m = small_model();
        let a = TraceProgram::from_model(&m, 1000);
        let b = TraceProgram::from_model(&m, 1000);
        assert_eq!(a, b);
        assert!(a.access_count() > 100, "got {}", a.access_count());
    }

    #[test]
    fn sampling_bounds_trace_size() {
        let m = small_model();
        let full = TraceProgram::from_model(&m, usize::MAX);
        let sampled = TraceProgram::from_model(&m, 16);
        assert!(sampled.len() < full.len());
        assert!(!sampled.is_empty());
    }

    #[test]
    fn weights_and_activations_in_distinct_regions() {
        let m = small_model();
        let p = TraceProgram::from_model(&m, usize::MAX);
        let mut saw_weight = false;
        let mut saw_act = false;
        for op in p.ops() {
            match op {
                TraceOp::Load(a) if *a >= 0x1000_0000 && *a < 0x2000_0000 => saw_weight = true,
                TraceOp::Load(a) if *a >= 0x2000_0000 => saw_act = true,
                TraceOp::Store(a) => assert!(*a >= 0x2000_0000, "stores go to activations"),
                _ => {}
            }
        }
        assert!(saw_weight && saw_act);
    }

    #[test]
    fn mlp_trace_counts_match_structure() {
        let mut rng = DetRng::new(2);
        let m = ModelBuilder::new(Shape::vector(4))
            .dense(3, &mut rng)
            .unwrap()
            .build()
            .unwrap();
        let p = TraceProgram::from_model(&m, usize::MAX);
        // Per output: 4 weight loads + 4 act loads + 1 store; 3 outputs.
        let loads = p
            .ops()
            .iter()
            .filter(|o| matches!(o, TraceOp::Load(_)))
            .count();
        let stores = p
            .ops()
            .iter()
            .filter(|o| matches!(o, TraceOp::Store(_)))
            .count();
        assert_eq!(loads, 3 * 8);
        assert_eq!(stores, 3);
    }
}
