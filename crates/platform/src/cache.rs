//! Set-associative cache model with deterministic and time-randomised
//! policies.
//!
//! The time-randomised configuration reproduces the cache designs of the
//! MBPTA line of work (Cazorla, Abella et al.): **random placement** (the
//! set index is a seeded hash of the line address, re-seeded per run) and
//! **random replacement**. Randomisation converts systematic pathological
//! layouts into a probabilistically well-behaved execution-time
//! distribution — the property that makes extreme-value fitting of
//! measurements sound.

use safex_tensor::DetRng;

use crate::error::PlatformError;

/// Cache placement policy: how a line address maps to a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Classic modulo indexing (deterministic).
    Modulo,
    /// Seeded-hash indexing, re-seeded per run (time-randomised).
    RandomHash,
}

/// Cache replacement policy within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Least-recently-used (deterministic).
    Lru,
    /// Uniform random victim (time-randomised).
    Random,
}

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total size in bytes (power of two).
    pub size_bytes: usize,
    /// Line size in bytes (power of two, >= 4).
    pub line_bytes: usize,
    /// Associativity (>= 1, divides the line count).
    pub ways: usize,
    /// Placement policy.
    pub placement: Placement,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadConfig`] for non-power-of-two sizes,
    /// zero ways, or a geometry with no sets.
    pub fn validate(&self) -> Result<(), PlatformError> {
        let bad = |msg: String| Err(PlatformError::BadConfig(msg));
        if !self.size_bytes.is_power_of_two() || self.size_bytes == 0 {
            return bad(format!("cache size {} not a power of two", self.size_bytes));
        }
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 4 {
            return bad(format!(
                "line size {} must be a power of two >= 4",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return bad("ways must be non-zero".into());
        }
        let lines = self.size_bytes / self.line_bytes;
        if lines == 0 || !lines.is_multiple_of(self.ways) {
            return bad(format!(
                "{} lines not divisible into {} ways",
                lines, self.ways
            ));
        }
        Ok(())
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) / self.ways
    }
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss,
}

/// A set-associative cache instance.
///
/// Tags are full line addresses; the model tracks presence only (no dirty
/// bits — write-back traffic is folded into the miss latency by the
/// hierarchy).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets x ways` tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-line LRU stamps (only maintained under LRU).
    stamps: Vec<u64>,
    clock: u64,
    /// Placement hash key for this run (0 under modulo placement).
    hash_key: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache. For [`Placement::RandomHash`], `rng` seeds the
    /// per-run placement hash; re-create the cache to re-randomise.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadConfig`] on invalid geometry.
    pub fn new(config: CacheConfig, rng: &mut DetRng) -> Result<Self, PlatformError> {
        config.validate()?;
        let lines = config.size_bytes / config.line_bytes;
        let hash_key = match config.placement {
            Placement::Modulo => 0,
            Placement::RandomHash => rng.next_u64() | 1,
        };
        Ok(Cache {
            config,
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            clock: 0,
            hash_key,
            hits: 0,
            misses: 0,
        })
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// `(hits, misses)` since construction or the last [`Cache::reset`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]`; 0 when no accesses have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Invalidates all lines and clears statistics (placement key kept).
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }

    fn set_index(&self, line_addr: u64) -> usize {
        let sets = self.config.sets() as u64;
        match self.config.placement {
            Placement::Modulo => (line_addr % sets) as usize,
            Placement::RandomHash => {
                // Multiplicative hash with the per-run key.
                let mut x = line_addr.wrapping_mul(self.hash_key);
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                x ^= x >> 33;
                (x % sets) as usize
            }
        }
    }

    /// Accesses the byte address, filling on miss.
    ///
    /// `rng` supplies victim choices under random replacement (unused for
    /// LRU).
    pub fn access(&mut self, addr: u64, rng: &mut DetRng) -> AccessResult {
        let line_addr = addr / self.config.line_bytes as u64;
        let set = self.set_index(line_addr);
        let ways = self.config.ways;
        let base = set * ways;
        self.clock += 1;

        // Lookup.
        for w in 0..ways {
            if self.tags[base + w] == line_addr {
                self.hits += 1;
                self.stamps[base + w] = self.clock;
                return AccessResult::Hit;
            }
        }
        self.misses += 1;

        // Fill: prefer an invalid way.
        for w in 0..ways {
            if self.tags[base + w] == u64::MAX {
                self.tags[base + w] = line_addr;
                self.stamps[base + w] = self.clock;
                return AccessResult::Miss;
            }
        }
        // Evict.
        let victim = match self.config.replacement {
            Replacement::Lru => {
                let mut best = 0usize;
                let mut best_stamp = u64::MAX;
                for w in 0..ways {
                    if self.stamps[base + w] < best_stamp {
                        best_stamp = self.stamps[base + w];
                        best = w;
                    }
                }
                best
            }
            Replacement::Random => rng.below_usize(ways),
        };
        self.tags[base + victim] = line_addr;
        self.stamps[base + victim] = self.clock;
        AccessResult::Miss
    }

    /// Invalidates one random line (models a co-runner evicting shared
    /// cache content).
    pub fn evict_random_line(&mut self, rng: &mut DetRng) {
        let idx = rng.below_usize(self.tags.len());
        self.tags[idx] = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: usize, line: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            size_bytes: size,
            line_bytes: line,
            ways,
            placement: Placement::Modulo,
            replacement: Replacement::Lru,
        }
    }

    #[test]
    fn config_validation() {
        assert!(cfg(1024, 32, 2).validate().is_ok());
        assert!(cfg(1000, 32, 2).validate().is_err()); // not pow2
        assert!(cfg(1024, 3, 2).validate().is_err()); // bad line
        assert!(cfg(1024, 32, 0).validate().is_err()); // zero ways
        assert!(cfg(128, 32, 3).validate().is_err()); // 4 lines % 3 != 0
        assert_eq!(cfg(1024, 32, 2).sets(), 16);
    }

    #[test]
    fn repeated_access_hits() {
        let mut rng = DetRng::new(1);
        let mut c = Cache::new(cfg(1024, 32, 2), &mut rng).unwrap();
        assert_eq!(c.access(0x100, &mut rng), AccessResult::Miss);
        assert_eq!(c.access(0x100, &mut rng), AccessResult::Hit);
        assert_eq!(c.access(0x11F, &mut rng), AccessResult::Hit); // same line
        assert_eq!(c.access(0x120, &mut rng), AccessResult::Miss); // next line
        assert_eq!(c.stats(), (2, 2));
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped-ish: 2 ways, force 3 conflicting lines.
        let mut rng = DetRng::new(2);
        let config = cfg(256, 32, 2); // 4 sets
        let mut c = Cache::new(config, &mut rng).unwrap();
        let sets = config.sets() as u64; // 4
        let stride = 32 * sets; // same set every stride bytes
        let a = 0u64;
        let b = stride;
        let d = 2 * stride;
        c.access(a, &mut rng);
        c.access(b, &mut rng);
        c.access(a, &mut rng); // a freshly used; b is LRU
        assert_eq!(c.access(d, &mut rng), AccessResult::Miss); // evicts b
        assert_eq!(c.access(a, &mut rng), AccessResult::Hit);
        assert_eq!(c.access(b, &mut rng), AccessResult::Miss); // b gone
    }

    #[test]
    fn working_set_within_capacity_all_hits_second_pass() {
        let mut rng = DetRng::new(3);
        let mut c = Cache::new(cfg(4096, 32, 4), &mut rng).unwrap();
        let lines = 4096 / 32;
        for i in 0..lines as u64 {
            assert_eq!(c.access(i * 32, &mut rng), AccessResult::Miss);
        }
        for i in 0..lines as u64 {
            assert_eq!(c.access(i * 32, &mut rng), AccessResult::Hit, "line {i}");
        }
    }

    #[test]
    fn random_placement_varies_across_runs() {
        // A pathological modulo stride that thrashes one set should not
        // systematically thrash under random placement.
        let config = CacheConfig {
            placement: Placement::RandomHash,
            replacement: Replacement::Random,
            ..cfg(1024, 32, 2)
        };
        // Same trace, two different run seeds -> (almost surely) different
        // hit counts.
        let run = |seed: u64| {
            let mut rng = DetRng::new(seed);
            let mut c = Cache::new(config, &mut rng).unwrap();
            let stride = 32 * config.sets() as u64;
            for rep in 0..20 {
                for i in 0..4u64 {
                    let _ = rep;
                    c.access(i * stride, &mut rng);
                }
            }
            c.stats().0
        };
        let hits: Vec<u64> = (0..8).map(run).collect();
        let all_same = hits.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "random placement should vary: {hits:?}");
    }

    #[test]
    fn modulo_placement_is_run_invariant() {
        let config = cfg(1024, 32, 2);
        let run = |seed: u64| {
            let mut rng = DetRng::new(seed);
            let mut c = Cache::new(config, &mut rng).unwrap();
            for i in 0..200u64 {
                c.access(i * 64 % 4096, &mut rng);
            }
            c.stats()
        };
        assert_eq!(run(1), run(99));
    }

    #[test]
    fn reset_clears_content_and_stats() {
        let mut rng = DetRng::new(4);
        let mut c = Cache::new(cfg(1024, 32, 2), &mut rng).unwrap();
        c.access(0, &mut rng);
        c.access(0, &mut rng);
        c.reset();
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.access(0, &mut rng), AccessResult::Miss);
    }

    #[test]
    fn evict_random_line_can_cause_miss() {
        let mut rng = DetRng::new(5);
        // Tiny cache: 2 lines total, so random eviction hits quickly.
        let mut c = Cache::new(cfg(64, 32, 1), &mut rng).unwrap();
        c.access(0, &mut rng);
        c.access(32, &mut rng);
        let mut missed = false;
        for _ in 0..20 {
            c.evict_random_line(&mut rng);
            if c.access(0, &mut rng) == AccessResult::Miss {
                missed = true;
                break;
            }
        }
        assert!(missed, "pollution should eventually evict the line");
    }

    #[test]
    fn hit_rate_empty_cache() {
        let mut rng = DetRng::new(6);
        let c = Cache::new(cfg(1024, 32, 2), &mut rng).unwrap();
        assert_eq!(c.hit_rate(), 0.0);
    }
}
