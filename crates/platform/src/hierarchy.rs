//! Two-level memory hierarchy with latencies and interference hooks.

use safex_tensor::DetRng;

use crate::cache::{AccessResult, Cache, CacheConfig};
use crate::error::PlatformError;

/// Latency parameters in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Latencies {
    /// L1 hit.
    pub l1_hit: u64,
    /// L2 hit (on L1 miss).
    pub l2_hit: u64,
    /// Main-memory access (on L2 miss).
    pub memory: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            l1_hit: 1,
            l2_hit: 10,
            memory: 80,
        }
    }
}

impl Latencies {
    /// Validates monotone, non-zero latencies.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadConfig`] if any latency is zero or the
    /// ordering `l1 <= l2 <= memory` is violated.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.l1_hit == 0 || self.l2_hit == 0 || self.memory == 0 {
            return Err(PlatformError::BadConfig(
                "latencies must be non-zero".into(),
            ));
        }
        if self.l1_hit > self.l2_hit || self.l2_hit > self.memory {
            return Err(PlatformError::BadConfig(
                "latencies must satisfy l1 <= l2 <= memory".into(),
            ));
        }
        Ok(())
    }
}

/// Interference injected by co-runner cores on shared resources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interference {
    /// Number of actively contending co-runner cores.
    pub co_runners: usize,
    /// Maximum extra arbitration cycles a contended L2/memory access can
    /// suffer *per co-runner* (uniform in `[0, per_runner]`).
    pub bus_delay_per_runner: u64,
    /// Probability per primary L2 access that co-runners evict one random
    /// shared-L2 line, *per co-runner*.
    pub pollution_per_runner: f64,
    /// When true the L2 is partitioned per core: co-runners cause no
    /// pollution and no arbitration delay on the cache slice (only the
    /// memory bus is still shared, at a reduced factor).
    pub partitioned_l2: bool,
}

impl Interference {
    /// No co-runners.
    pub fn none() -> Self {
        Interference {
            co_runners: 0,
            bus_delay_per_runner: 0,
            pollution_per_runner: 0.0,
            partitioned_l2: false,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadConfig`] if the pollution probability
    /// is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if !(0.0..=1.0).contains(&self.pollution_per_runner)
            || !self.pollution_per_runner.is_finite()
        {
            return Err(PlatformError::BadConfig(
                "pollution probability must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// A private L1 + (shared or partitioned) L2 + memory, with co-runner
/// interference applied at the shared levels.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    latencies: Latencies,
    interference: Interference,
}

impl MemoryHierarchy {
    /// Builds the hierarchy. Under partitioned L2 the primary core's L2
    /// slice shrinks to `size / (co_runners + 1)` (rounded down to a
    /// power of two), modelling way/colour partitioning.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadConfig`] on invalid cache geometry,
    /// latencies, or interference parameters.
    pub fn new(
        l1: CacheConfig,
        mut l2: CacheConfig,
        latencies: Latencies,
        interference: Interference,
        rng: &mut DetRng,
    ) -> Result<Self, PlatformError> {
        latencies.validate()?;
        interference.validate()?;
        if interference.partitioned_l2 && interference.co_runners > 0 {
            let share = (interference.co_runners + 1).next_power_of_two();
            let new_size = (l2.size_bytes / share).max(l2.line_bytes * l2.ways);
            l2.size_bytes = new_size.next_power_of_two().min(l2.size_bytes);
            // Keep geometry consistent: shrink ways if needed.
            while !(l2.size_bytes / l2.line_bytes).is_multiple_of(l2.ways)
                || l2.size_bytes / l2.line_bytes < l2.ways
            {
                l2.ways /= 2;
                if l2.ways == 0 {
                    return Err(PlatformError::BadConfig(
                        "partitioned L2 slice too small".into(),
                    ));
                }
            }
        }
        Ok(MemoryHierarchy {
            l1: Cache::new(l1, rng)?,
            l2: Cache::new(l2, rng)?,
            latencies,
            interference,
        })
    }

    /// The latency parameters.
    pub fn latencies(&self) -> &Latencies {
        &self.latencies
    }

    /// `(l1_hit_rate, l2_hit_rate)` so far.
    pub fn hit_rates(&self) -> (f64, f64) {
        (self.l1.hit_rate(), self.l2.hit_rate())
    }

    /// Effective L2 size in bytes (smaller than configured when
    /// partitioned).
    pub fn effective_l2_bytes(&self) -> usize {
        self.l2.config().size_bytes
    }

    /// Performs one data access and returns its latency in cycles,
    /// including any interference delay.
    pub fn access(&mut self, addr: u64, rng: &mut DetRng) -> u64 {
        let inter = self.interference;
        match self.l1.access(addr, rng) {
            AccessResult::Hit => self.latencies.l1_hit,
            AccessResult::Miss => {
                // Co-runner pollution of the shared L2 (none if partitioned).
                if inter.co_runners > 0 && !inter.partitioned_l2 {
                    let p = inter.pollution_per_runner * inter.co_runners as f64;
                    if rng.chance(p.min(1.0)) {
                        self.l2.evict_random_line(rng);
                    }
                }
                let base = match self.l2.access(addr, rng) {
                    AccessResult::Hit => self.latencies.l2_hit,
                    AccessResult::Miss => self.latencies.memory,
                };
                let contention = self.contention_delay(rng);
                self.latencies.l1_hit + base + contention
            }
        }
    }

    fn contention_delay(&mut self, rng: &mut DetRng) -> u64 {
        let inter = self.interference;
        if inter.co_runners == 0 || inter.bus_delay_per_runner == 0 {
            return 0;
        }
        // Partitioning removes cache-bank contention; the memory bus is
        // still shared but with a much smaller window.
        let per_runner = if inter.partitioned_l2 {
            inter.bus_delay_per_runner / 4
        } else {
            inter.bus_delay_per_runner
        };
        let max = per_runner * inter.co_runners as u64;
        if max == 0 {
            0
        } else {
            rng.below(max + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Placement, Replacement};

    fn l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 2,
            placement: Placement::Modulo,
            replacement: Replacement::Lru,
        }
    }

    fn l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 8192,
            line_bytes: 32,
            ways: 4,
            placement: Placement::Modulo,
            replacement: Replacement::Lru,
        }
    }

    #[test]
    fn latency_levels() {
        let mut rng = DetRng::new(1);
        let mut h = MemoryHierarchy::new(
            l1(),
            l2(),
            Latencies::default(),
            Interference::none(),
            &mut rng,
        )
        .unwrap();
        // Cold: L1 miss + L2 miss -> 1 + 80.
        assert_eq!(h.access(0, &mut rng), 81);
        // Warm: L1 hit.
        assert_eq!(h.access(0, &mut rng), 1);
        // Evict from L1 only (L1 has 32 sets * 2 ways; force conflict):
        let stride = 32 * (1024 / 32 / 2) as u64; // L1 set stride
        h.access(stride, &mut rng);
        h.access(2 * stride, &mut rng);
        // addr 0 now out of L1 but still in L2 -> 1 + 10.
        assert_eq!(h.access(0, &mut rng), 11);
    }

    #[test]
    fn latency_validation() {
        let bad = Latencies {
            l1_hit: 10,
            l2_hit: 5,
            memory: 80,
        };
        assert!(bad.validate().is_err());
        let zero = Latencies {
            l1_hit: 0,
            l2_hit: 5,
            memory: 80,
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn interference_adds_delay() {
        let run = |co_runners: usize, seed: u64| {
            let mut rng = DetRng::new(seed);
            let mut h = MemoryHierarchy::new(
                l1(),
                l2(),
                Latencies::default(),
                Interference {
                    co_runners,
                    bus_delay_per_runner: 20,
                    pollution_per_runner: 0.1,
                    partitioned_l2: false,
                },
                &mut rng,
            )
            .unwrap();
            let mut total = 0u64;
            for i in 0..2000u64 {
                total += h.access((i * 64) % 65536, &mut rng);
            }
            total
        };
        let alone = run(0, 1);
        let contended = run(3, 1);
        assert!(
            contended as f64 > alone as f64 * 1.2,
            "contention should slow down: {alone} vs {contended}"
        );
    }

    #[test]
    fn partitioning_reduces_interference() {
        let run = |partitioned: bool| {
            let mut rng = DetRng::new(7);
            let mut h = MemoryHierarchy::new(
                l1(),
                l2(),
                Latencies::default(),
                Interference {
                    co_runners: 3,
                    bus_delay_per_runner: 20,
                    pollution_per_runner: 0.2,
                    partitioned_l2: partitioned,
                },
                &mut rng,
            )
            .unwrap();
            // Working set sized to fit even the partitioned slice, so the
            // comparison isolates contention rather than capacity.
            let mut total = 0u64;
            for i in 0..2000u64 {
                total += h.access((i * 64) % 1024, &mut rng);
            }
            total
        };
        let shared = run(false);
        let partitioned = run(true);
        assert!(
            partitioned < shared,
            "partitioning should reduce slowdown: {partitioned} vs {shared}"
        );
    }

    #[test]
    fn partitioned_l2_shrinks() {
        let mut rng = DetRng::new(2);
        let h = MemoryHierarchy::new(
            l1(),
            l2(),
            Latencies::default(),
            Interference {
                co_runners: 3,
                bus_delay_per_runner: 0,
                pollution_per_runner: 0.0,
                partitioned_l2: true,
            },
            &mut rng,
        )
        .unwrap();
        assert!(h.effective_l2_bytes() <= 8192 / 4);
    }

    #[test]
    fn interference_validation() {
        let mut i = Interference::none();
        i.pollution_per_runner = 1.5;
        assert!(i.validate().is_err());
        i.pollution_per_runner = f64::NAN;
        assert!(i.validate().is_err());
    }

    #[test]
    fn hit_rates_tracked() {
        let mut rng = DetRng::new(3);
        let mut h = MemoryHierarchy::new(
            l1(),
            l2(),
            Latencies::default(),
            Interference::none(),
            &mut rng,
        )
        .unwrap();
        h.access(0, &mut rng);
        h.access(0, &mut rng);
        let (r1, _r2) = h.hit_rates();
        assert_eq!(r1, 0.5);
    }
}
