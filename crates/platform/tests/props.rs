//! Property-based tests for the platform simulator.

use proptest::prelude::*;
use safex_platform::cache::{AccessResult, Cache, CacheConfig, Placement, Replacement};
use safex_platform::platform::{Platform, PlatformConfig};
use safex_platform::program::{TraceOp, TraceProgram};
use safex_tensor::DetRng;

fn any_cache_config() -> impl Strategy<Value = CacheConfig> {
    (4u32..10, 2u32..7, 0usize..3, any::<bool>(), any::<bool>()).prop_filter_map(
        "geometry must divide",
        |(size_pow, line_pow, ways_pow, rand_place, rand_repl)| {
            let config = CacheConfig {
                size_bytes: 1 << size_pow.max(line_pow + 1),
                line_bytes: 1 << line_pow,
                ways: 1 << ways_pow,
                placement: if rand_place {
                    Placement::RandomHash
                } else {
                    Placement::Modulo
                },
                replacement: if rand_repl {
                    Replacement::Random
                } else {
                    Replacement::Lru
                },
            };
            config.validate().ok().map(|()| config)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hit + miss counts always equal the access count, for any geometry
    /// and access pattern.
    #[test]
    fn cache_accounting_conserved(
        config in any_cache_config(),
        addrs in prop::collection::vec(0u64..100_000, 1..200),
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::new(seed);
        let mut cache = Cache::new(config, &mut rng).expect("cache");
        for &a in &addrs {
            let _ = cache.access(a, &mut rng);
        }
        let (hits, misses) = cache.stats();
        prop_assert_eq!(hits + misses, addrs.len() as u64);
    }

    /// Accessing the same address twice in a row always hits the second
    /// time, under every policy.
    #[test]
    fn immediate_reuse_always_hits(
        config in any_cache_config(),
        addr in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::new(seed);
        let mut cache = Cache::new(config, &mut rng).expect("cache");
        let _ = cache.access(addr, &mut rng);
        prop_assert_eq!(cache.access(addr, &mut rng), AccessResult::Hit);
    }

    /// A working set no larger than the cache always fully hits on the
    /// second pass under LRU with modulo placement when it maps without
    /// set conflicts (sequential lines).
    #[test]
    fn sequential_working_set_fits(
        seed in any::<u64>(),
        lines_pow in 2u32..6,
    ) {
        let config = CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
            placement: Placement::Modulo,
            replacement: Replacement::Lru,
        };
        let lines = 1usize << lines_pow; // 4..32 <= 64 lines capacity
        let mut rng = DetRng::new(seed);
        let mut cache = Cache::new(config, &mut rng).expect("cache");
        for i in 0..lines as u64 {
            let _ = cache.access(i * 64, &mut rng);
        }
        for i in 0..lines as u64 {
            prop_assert_eq!(cache.access(i * 64, &mut rng), AccessResult::Hit);
        }
    }

    /// Platform measurements are reproducible for any seed and both cache
    /// disciplines.
    #[test]
    fn measurement_reproducible(seed in any::<u64>(), randomized in any::<bool>()) {
        let config = if randomized {
            PlatformConfig::time_randomized()
        } else {
            PlatformConfig::deterministic()
        };
        let platform = Platform::new(config).expect("platform");
        let program = TraceProgram::synthetic_kernel(10, 32, 3);
        let a = platform.measure(&program, 5, &mut DetRng::new(seed)).expect("measure");
        let b = platform.measure(&program, 5, &mut DetRng::new(seed)).expect("measure");
        prop_assert_eq!(a, b);
    }

    /// Execution time is bounded below by pure compute cycles plus one L1
    /// hit per access, and is finite.
    #[test]
    fn cycles_lower_bound(
        seed in any::<u64>(),
        iterations in 1usize..20,
        footprint in 1usize..64,
    ) {
        let program = TraceProgram::synthetic_kernel(iterations, footprint, 1);
        let compute: u64 = program.ops().iter().map(|op| match op {
            TraceOp::Compute(c) => *c,
            _ => 0,
        }).sum();
        let accesses = program.access_count() as u64;
        let platform = Platform::new(PlatformConfig::time_randomized()).expect("platform");
        let mut rng = DetRng::new(seed);
        let result = platform.run(&program, &mut rng).expect("run");
        prop_assert!(result.cycles >= compute + accesses);
    }

    /// Adding co-runners never makes the mean execution time faster.
    #[test]
    fn interference_monotone_on_average(seed in 0u64..1000) {
        let program = TraceProgram::synthetic_kernel(20, 64, 3);
        let mean = |co: usize| -> f64 {
            let platform = Platform::new(
                PlatformConfig::time_randomized().with_co_runners(co),
            ).expect("platform");
            let samples = platform.measure(&program, 10, &mut DetRng::new(seed)).expect("m");
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        // Not strictly monotone per-seed (randomised), but 0 vs 3
        // co-runners is a large effect that must survive any seed.
        prop_assert!(mean(3) > mean(0));
    }

    /// Model-derived traces only touch the defined address regions.
    #[test]
    fn model_trace_addresses_well_formed(seed in any::<u64>()) {
        use safex_nn::model::ModelBuilder;
        use safex_tensor::Shape;
        let mut rng = DetRng::new(seed);
        let model = ModelBuilder::new(Shape::chw(1, 8, 8))
            .conv2d(2, 3, 1, 1, &mut rng).expect("conv")
            .relu()
            .flatten()
            .dense(3, &mut rng).expect("dense")
            .softmax()
            .build().expect("build");
        let program = TraceProgram::from_model(&model, 128);
        for op in program.ops() {
            match op {
                TraceOp::Load(a) => prop_assert!(*a >= 0x1000_0000),
                TraceOp::Store(a) => prop_assert!(*a >= 0x2000_0000),
                TraceOp::Compute(c) => prop_assert!(*c > 0),
            }
        }
    }
}
